//! The data node: partitions, chain replication, Raft overwrites,
//! recovery.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use cfs_kvwal::{LsmEngine, LsmOptions};
use cfs_net::Network;
use cfs_obs::{Registry, RequestId, RpcRoute, Span};
use cfs_raft::hub::{RaftHost, RaftHub};
use cfs_raft::{
    KvRaftStorage, MultiRaft, PersistentRaftState, RaftConfig, RaftMetrics, RaftStorage,
    WireEnvelope,
};
use cfs_store::{SmallFileLocation, StoreMetrics};
use cfs_types::codec::{Decode, Encode};
use cfs_types::crc::crc32;
use cfs_types::{CfsError, ExtentId, NodeId, PartitionId, RaftGroupId, Result, VolumeId};

use crate::command::DataCommand;
use crate::metrics::{DataLatency, DataMetrics};
use crate::replica::{DataPartitionReplica, PartitionStats, ReplicaCf};

/// Size/CRC/watermark facts about one extent on one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentInfo {
    pub extent: ExtentId,
    pub size: u64,
    pub committed: u64,
    pub crc: u32,
}

/// RPCs a data node serves. Write requests carry the full replica array
/// (§2.7.1: the client got it from the resource manager and sends to index
/// 0); each node forwards to its downstream successor.
#[derive(Debug, Clone)]
pub enum DataRequest {
    /// Resource-manager task: host a replica of a new partition.
    CreatePartition {
        partition: PartitionId,
        volume: VolumeId,
        members: Vec<NodeId>,
        small_extent_rotate_at: u64,
        extent_limit: u64,
    },
    /// Allocate a fresh extent (large-file write path). Sent to the PB
    /// leader, which picks the id and chain-replicates the creation.
    CreateExtent { partition: PartitionId },
    /// Chain-internal: create an extent with a known id.
    CreateExtentAt {
        partition: PartitionId,
        extent: ExtentId,
        replicas: Vec<NodeId>,
    },
    /// Sequential-write packet (§2.7.1): append at the extent watermark.
    Append {
        partition: PartitionId,
        extent: ExtentId,
        offset: u64,
        data: Bytes,
        crc: u32,
        replicas: Vec<NodeId>,
        /// Causal request id for cross-stack tracing (0 = untraced).
        /// Propagated down the chain so one client op can be followed
        /// client → net → every chain hop.
        request_id: u64,
    },
    /// Small-file write: the PB leader packs it into the shared extent and
    /// chain-replicates the placement (§2.2.3).
    WriteSmall {
        partition: PartitionId,
        data: Bytes,
        replicas: Vec<NodeId>,
    },
    /// Batched small-file write (DESIGN §13): the PB leader packs every
    /// record into the shared extent(s) in one store call and
    /// chain-replicates each aggregated segment as a single append. A
    /// mid-batch chain failure commits a prefix of whole records; the
    /// reply's location vector is exactly that committed prefix.
    WriteSmallBatch {
        partition: PartitionId,
        records: Vec<Bytes>,
        replicas: Vec<NodeId>,
    },
    /// In-place overwrite, Raft-replicated (§2.2.4). Sent to the Raft
    /// leader.
    Overwrite {
        partition: PartitionId,
        extent: ExtentId,
        offset: u64,
        data: Bytes,
    },
    /// Read committed bytes (served at the Raft leader, §2.7.4).
    Read {
        partition: PartitionId,
        extent: ExtentId,
        offset: u64,
        len: u64,
        /// Clamp to the PB-committed watermark (true on the PB leader).
        enforce_committed: bool,
    },
    /// Extent facts (recovery, scrubbing).
    ExtentInfo {
        partition: PartitionId,
        extent: ExtentId,
    },
    /// Queue a whole-extent delete (large file), chain-replicated.
    QueueDeleteExtent {
        partition: PartitionId,
        extent: ExtentId,
        replicas: Vec<NodeId>,
    },
    /// Queue a punch-hole delete (small file), chain-replicated.
    QueuePunch {
        partition: PartitionId,
        extent: ExtentId,
        offset: u64,
        len: u64,
        replicas: Vec<NodeId>,
    },
    /// Run the background deletion pass on one partition.
    ProcessDeletes { partition: PartitionId },
    /// Resource-manager task: mark the partition read-only (§2.3.3).
    SetReadOnly { partition: PartitionId, ro: bool },
    /// Recovery-internal: truncate an extent to align replicas (§2.2.5).
    TruncateExtent {
        partition: PartitionId,
        extent: ExtentId,
        size: u64,
    },
    /// PB-leader recovery: align every extent across replicas, then Raft
    /// replay proceeds (§2.2.5).
    Recover { partition: PartitionId },
    /// Repair (§2.3.3): adopt a post-decommission replica array
    /// (survivors in chain order, replacement appended) and rebuild the
    /// partition's Raft group with the new membership.
    UpdateMembers {
        partition: PartitionId,
        members: Vec<NodeId>,
    },
    /// Repair: the (possibly newly promoted) chain head recomputes each
    /// extent's committed watermark as the minimum applied size across
    /// the `sync_from` survivors — the watermark map lived only on the
    /// old head (§2.2.5).
    PromoteHead {
        partition: PartitionId,
        sync_from: Vec<NodeId>,
    },
    /// Utilization report (heartbeat body).
    Report,
}

impl RpcRoute for DataRequest {
    fn route(&self) -> &'static str {
        match self {
            DataRequest::CreatePartition { .. } => "data.create_partition",
            DataRequest::CreateExtent { .. } => "data.create_extent",
            DataRequest::CreateExtentAt { .. } => "data.create_extent_at",
            DataRequest::Append { .. } => "data.append",
            DataRequest::WriteSmall { .. } => "data.write_small",
            DataRequest::WriteSmallBatch { .. } => "data.write_small_batch",
            DataRequest::Overwrite { .. } => "data.overwrite",
            DataRequest::Read { .. } => "data.read",
            DataRequest::ExtentInfo { .. } => "data.extent_info",
            DataRequest::QueueDeleteExtent { .. } => "data.queue_delete_extent",
            DataRequest::QueuePunch { .. } => "data.queue_punch",
            DataRequest::ProcessDeletes { .. } => "data.process_deletes",
            DataRequest::SetReadOnly { .. } => "data.set_read_only",
            DataRequest::TruncateExtent { .. } => "data.truncate_extent",
            DataRequest::Recover { .. } => "data.recover",
            DataRequest::UpdateMembers { .. } => "data.update_members",
            DataRequest::PromoteHead { .. } => "data.promote_head",
            DataRequest::Report => "data.report",
        }
    }

    fn request_id(&self) -> u64 {
        match self {
            DataRequest::Append { request_id, .. } => *request_id,
            _ => 0,
        }
    }
}

/// Replies to [`DataRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum DataResponse {
    Created,
    Extent(ExtentId),
    /// New committed watermark after an append.
    Watermark(u64),
    Small(SmallFileLocation),
    /// Where each record of a `WriteSmallBatch` landed, in order. Shorter
    /// than the request's record vector after a mid-batch chain failure:
    /// the committed prefix (§2.2.5 semantics per sub-record).
    SmallBatch(Vec<SmallFileLocation>),
    Data(Vec<u8>),
    Info(ExtentInfo),
    Report(Vec<PartitionStats>),
    /// Deletions executed by a background pass.
    Processed(usize),
    None,
}

/// What survives a data-node crash: the partition replicas (the extent
/// stores double as the on-disk image) plus each hosted Raft group's
/// durable state. Chain tickets, client sessions and the result cache
/// are volatile and deliberately absent.
#[derive(Debug)]
pub struct DataNodePersist {
    /// Replicas, sorted by partition id for deterministic restore.
    pub partitions: Vec<DataPartitionReplica>,
    /// Per-group `(group, members, durable raft state)`.
    pub raft: Vec<(RaftGroupId, Vec<NodeId>, PersistentRaftState)>,
}

/// A data node (§2.2): hosts data partition replicas, speaks both
/// replication protocols, and serves the client data path.
pub struct DataNode {
    id: NodeId,
    hub: RaftHub,
    net: Network<DataRequest, Result<DataResponse>>,
    partitions: Mutex<HashMap<PartitionId, DataPartitionReplica>>,
    /// Per-partition chain-pipelining state (see [`ChainState`]).
    chain_order: Mutex<HashMap<PartitionId, Arc<ChainState>>>,
    raft: Mutex<RaftState>,
    commit_timeout_ticks: u64,
    /// Bound when the node was created `with_registry`; used for trace
    /// spans of traced requests.
    registry: Option<Registry>,
    metrics: DataMetrics,
    latency: DataLatency,
    /// Shared byte accounting for every hosted partition's extent store.
    store_metrics: StoreMetrics,
    /// Engine-backed nodes (opened with [`DataNode::open`]) write every
    /// replica, extent and raft group through to this engine and restore
    /// from its directory alone after power loss.
    engine: Option<Arc<LsmEngine>>,
}

struct RaftState {
    multiraft: MultiRaft,
    results: HashMap<(RaftGroupId, u64), Result<()>>,
}

/// Per-partition chain-replication ordering at the PB leader (§2.7.1).
///
/// Appends from one client window arrive concurrently. The leader must
/// (a) apply them in offset order and (b) forward them downstream in the
/// same order — but it does *not* need to hold packet k+1's apply back
/// until packet k finished its whole downstream round-trip. Each packet
/// takes a *ticket* the moment its local apply lands (applies are strictly
/// ordered by the extent's offset==size check), then forwards when
/// `forward_turn` reaches its ticket: packet k+1 applies locally while
/// packet k is still in flight down the chain.
struct ChainState {
    seq: Mutex<ChainSeq>,
    cv: Condvar,
    /// Small-file packing keeps the coarse critical section: placement is
    /// chosen by the shared extent's cursor inside the call, so pack +
    /// forward must stay serial (§2.2.3).
    small: Mutex<()>,
}

struct ChainSeq {
    /// Next ticket to hand out (assigned in local-apply order).
    next_ticket: u64,
    /// Ticket currently allowed to forward downstream.
    forward_turn: u64,
}

/// How long the chain head waits for a predecessor packet to fill an
/// offset gap before failing the out-of-order packet.
const CHAIN_GAP_TIMEOUT: Duration = Duration::from_secs(1);

/// Advances the forward turn on drop, so a forwarding error (or panic)
/// can never wedge the successors' turn wait.
struct TurnGuard<'a> {
    state: &'a ChainState,
    ticket: u64,
}

impl Drop for TurnGuard<'_> {
    fn drop(&mut self) {
        let mut seq = self.state.seq.lock();
        seq.forward_turn = self.ticket + 1;
        drop(seq);
        self.state.cv.notify_all();
    }
}

impl DataNode {
    /// Create a data node and register it on the raft hub. The caller
    /// registers it on `net` (so tests can interpose).
    pub fn new(
        id: NodeId,
        hub: RaftHub,
        net: Network<DataRequest, Result<DataResponse>>,
        raft_config: RaftConfig,
        seed: u64,
    ) -> Arc<Self> {
        Self::with_registry(id, hub, net, raft_config, seed, None)
    }

    /// [`DataNode::new`] with metrics bound to `registry`: chain/raft/store
    /// counters (`data.*`, `raft.*`, `store.*`) plus trace spans for
    /// traced requests.
    pub fn with_registry(
        id: NodeId,
        hub: RaftHub,
        net: Network<DataRequest, Result<DataResponse>>,
        raft_config: RaftConfig,
        seed: u64,
        registry: Option<&Registry>,
    ) -> Arc<Self> {
        let mut multiraft = MultiRaft::new(id, raft_config, seed, true);
        if let Some(r) = registry {
            multiraft.set_metrics(RaftMetrics::bind(r));
        }
        let node = Arc::new(DataNode {
            id,
            hub: hub.clone(),
            net,
            partitions: Mutex::new(HashMap::new()),
            chain_order: Mutex::new(HashMap::new()),
            raft: Mutex::new(RaftState {
                multiraft,
                results: HashMap::new(),
            }),
            commit_timeout_ticks: 2_000,
            registry: registry.cloned(),
            metrics: registry.map(DataMetrics::bind).unwrap_or_default(),
            latency: registry.map(DataLatency::bind).unwrap_or_default(),
            store_metrics: registry.map(StoreMetrics::bind).unwrap_or_default(),
            engine: None,
        });
        hub.register(node.clone() as Arc<dyn RaftHost>);
        node
    }

    /// Open an engine-backed data node at `dir`, restoring every hosted
    /// partition (replica meta, extent bytes, raft group state) from the
    /// directory's LSM engine. A fresh directory yields an empty node;
    /// after power loss the node comes back with all acknowledged state.
    pub fn open(
        id: NodeId,
        hub: RaftHub,
        net: Network<DataRequest, Result<DataResponse>>,
        dir: &Path,
        raft_config: RaftConfig,
        seed: u64,
    ) -> Result<Arc<Self>> {
        Self::open_with_registry(id, hub, net, dir, raft_config, seed, None)
    }

    /// [`DataNode::open`] with metrics bound to `registry` (including the
    /// engine's `kvwal.*` counters).
    #[allow(clippy::too_many_arguments)]
    pub fn open_with_registry(
        id: NodeId,
        hub: RaftHub,
        net: Network<DataRequest, Result<DataResponse>>,
        dir: &Path,
        raft_config: RaftConfig,
        seed: u64,
        registry: Option<&Registry>,
    ) -> Result<Arc<Self>> {
        let engine = Arc::new(LsmEngine::open_with_registry(
            dir,
            LsmOptions::default(),
            registry,
        )?);
        let mut multiraft = MultiRaft::new(id, raft_config, seed, true);
        if let Some(r) = registry {
            multiraft.set_metrics(RaftMetrics::bind(r));
        }
        let storage = Arc::new(KvRaftStorage::new(engine.clone()));
        multiraft.set_storage(storage.clone())?;
        let store_metrics: StoreMetrics = registry.map(StoreMetrics::bind).unwrap_or_default();
        let mut partitions = HashMap::new();
        for (pid_raw, _) in engine.scan::<ReplicaCf>()? {
            let pid = PartitionId(pid_raw);
            let mut replica = DataPartitionReplica::restore(pid, engine.clone())?;
            replica.set_store_metrics(store_metrics.clone());
            let gid = Self::group_of(pid);
            match storage.load(gid)? {
                Some(state) => multiraft.restore_group(gid, replica.members().to_vec(), state)?,
                None => multiraft.create_group(gid, replica.members().to_vec())?,
            }
            partitions.insert(pid, replica);
        }
        let node = Arc::new(DataNode {
            id,
            hub: hub.clone(),
            net,
            partitions: Mutex::new(partitions),
            chain_order: Mutex::new(HashMap::new()),
            raft: Mutex::new(RaftState {
                multiraft,
                results: HashMap::new(),
            }),
            commit_timeout_ticks: 2_000,
            registry: registry.cloned(),
            metrics: registry.map(DataMetrics::bind).unwrap_or_default(),
            latency: registry.map(DataLatency::bind).unwrap_or_default(),
            store_metrics,
            engine: Some(engine),
        });
        hub.register(node.clone() as Arc<dyn RaftHost>);
        Ok(node)
    }

    /// Open a trace span for `req` if the node has a registry and the
    /// request carries a nonzero causal id.
    fn span_for(&self, req: &DataRequest) -> Option<Span> {
        let registry = self.registry.as_ref()?;
        let rid = RequestId(req.request_id());
        rid.is_traced()
            .then(|| registry.tracer().span(rid, "data", req.route()))
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    fn group_of(partition: PartitionId) -> RaftGroupId {
        RaftGroupId(partition.raw())
    }

    /// Downstream successor of this node in a replica chain.
    fn next_in_chain(&self, replicas: &[NodeId]) -> Option<NodeId> {
        replicas
            .iter()
            .position(|&n| n == self.id)
            .and_then(|i| replicas.get(i + 1))
            .copied()
    }

    /// Handle one RPC (the `cfs-net` service entry point).
    pub fn handle(&self, req: DataRequest) -> Result<DataResponse> {
        let _span = self.span_for(&req);
        match req {
            DataRequest::CreatePartition {
                partition,
                volume,
                members,
                small_extent_rotate_at,
                extent_limit,
            } => {
                self.create_partition(
                    partition,
                    volume,
                    members,
                    small_extent_rotate_at,
                    extent_limit,
                )?;
                Ok(DataResponse::Created)
            }
            DataRequest::CreateExtent { partition } => {
                let (extent, replicas) = {
                    let mut parts = self.partitions.lock();
                    let r = Self::part_mut(&mut parts, partition)?;
                    if r.pb_leader() != self.id {
                        return Err(CfsError::NotLeader {
                            partition,
                            hint: Some(r.pb_leader()),
                        });
                    }
                    (r.allocate_extent()?, r.members().to_vec())
                };
                self.forward_chain(
                    &replicas,
                    DataRequest::CreateExtentAt {
                        partition,
                        extent,
                        replicas: replicas.clone(),
                    },
                )?;
                Ok(DataResponse::Extent(extent))
            }
            DataRequest::CreateExtentAt {
                partition,
                extent,
                replicas,
            } => {
                {
                    let mut parts = self.partitions.lock();
                    let r = Self::part_mut(&mut parts, partition)?;
                    // Idempotent for chain retries.
                    if !r.has_extent(extent) {
                        r.create_extent(extent)?;
                    }
                }
                self.forward_chain(
                    &replicas,
                    DataRequest::CreateExtentAt {
                        partition,
                        extent,
                        replicas: replicas.clone(),
                    },
                )?;
                Ok(DataResponse::Created)
            }
            DataRequest::Append {
                partition,
                extent,
                offset,
                data,
                crc,
                replicas,
                request_id,
            } => self.handle_append(partition, extent, offset, data, crc, replicas, request_id),
            DataRequest::WriteSmall {
                partition,
                data,
                replicas,
            } => self.handle_write_small(partition, data, replicas),
            DataRequest::WriteSmallBatch {
                partition,
                records,
                replicas,
            } => self.handle_write_small_batch(partition, records, replicas),
            DataRequest::Overwrite {
                partition,
                extent,
                offset,
                data,
            } => {
                self.handle_overwrite(partition, extent, offset, &data)?;
                Ok(DataResponse::None)
            }
            DataRequest::Read {
                partition,
                extent,
                offset,
                len,
                enforce_committed,
            } => {
                let parts = self.partitions.lock();
                let r = Self::part(&parts, partition)?;
                let data = r.read(extent, offset, len as usize, enforce_committed)?;
                Ok(DataResponse::Data(data))
            }
            DataRequest::ExtentInfo { partition, extent } => {
                let mut parts = self.partitions.lock();
                let r = Self::part_mut(&mut parts, partition)?;
                let size = r.extent_size(extent)?;
                let committed = r.committed(extent);
                let crc = r.extent_crc(extent)?;
                Ok(DataResponse::Info(ExtentInfo {
                    extent,
                    size,
                    committed,
                    crc,
                }))
            }
            DataRequest::QueueDeleteExtent {
                partition,
                extent,
                replicas,
            } => {
                {
                    let mut parts = self.partitions.lock();
                    Self::part_mut(&mut parts, partition)?.queue_delete_extent(extent);
                }
                self.forward_chain(
                    &replicas,
                    DataRequest::QueueDeleteExtent {
                        partition,
                        extent,
                        replicas: replicas.clone(),
                    },
                )?;
                Ok(DataResponse::None)
            }
            DataRequest::QueuePunch {
                partition,
                extent,
                offset,
                len,
                replicas,
            } => {
                {
                    let mut parts = self.partitions.lock();
                    Self::part_mut(&mut parts, partition)?.queue_punch(extent, offset, len);
                }
                self.forward_chain(
                    &replicas,
                    DataRequest::QueuePunch {
                        partition,
                        extent,
                        offset,
                        len,
                        replicas: replicas.clone(),
                    },
                )?;
                Ok(DataResponse::None)
            }
            DataRequest::ProcessDeletes { partition } => {
                let mut parts = self.partitions.lock();
                let n = Self::part_mut(&mut parts, partition)?.process_delete_queue();
                Ok(DataResponse::Processed(n))
            }
            DataRequest::SetReadOnly { partition, ro } => {
                let mut parts = self.partitions.lock();
                Self::part_mut(&mut parts, partition)?.set_read_only(ro);
                Ok(DataResponse::None)
            }
            DataRequest::TruncateExtent {
                partition,
                extent,
                size,
            } => {
                let mut parts = self.partitions.lock();
                Self::part_mut(&mut parts, partition)?.truncate(extent, size)?;
                Ok(DataResponse::None)
            }
            DataRequest::Recover { partition } => {
                let repaired = self.recover_partition(partition)?;
                Ok(DataResponse::Processed(repaired))
            }
            DataRequest::UpdateMembers { partition, members } => {
                self.update_members(partition, members)?;
                Ok(DataResponse::None)
            }
            DataRequest::PromoteHead {
                partition,
                sync_from,
            } => {
                let updated = self.promote_head(partition, &sync_from)?;
                Ok(DataResponse::Processed(updated))
            }
            DataRequest::Report => {
                let parts = self.partitions.lock();
                let mut stats: Vec<PartitionStats> = parts.values().map(|r| r.stats()).collect();
                stats.sort_by_key(|s| s.partition_id);
                Ok(DataResponse::Report(stats))
            }
        }
    }

    fn part(
        parts: &HashMap<PartitionId, DataPartitionReplica>,
        pid: PartitionId,
    ) -> Result<&DataPartitionReplica> {
        parts
            .get(&pid)
            .ok_or_else(|| CfsError::NotFound(format!("{pid}")))
    }

    fn part_mut(
        parts: &mut HashMap<PartitionId, DataPartitionReplica>,
        pid: PartitionId,
    ) -> Result<&mut DataPartitionReplica> {
        parts
            .get_mut(&pid)
            .ok_or_else(|| CfsError::NotFound(format!("{pid}")))
    }

    /// Create a partition replica (idempotent for RM task retries).
    pub fn create_partition(
        &self,
        partition: PartitionId,
        volume: VolumeId,
        members: Vec<NodeId>,
        small_extent_rotate_at: u64,
        extent_limit: u64,
    ) -> Result<()> {
        let mut parts = self.partitions.lock();
        if let Some(existing) = parts.get(&partition) {
            if existing.members() == members.as_slice() {
                return Ok(());
            }
            return Err(CfsError::Exists(format!("{partition}")));
        }
        self.raft
            .lock()
            .multiraft
            .create_group(Self::group_of(partition), members.clone())?;
        let mut replica = match &self.engine {
            Some(engine) => DataPartitionReplica::new_persistent(
                partition,
                volume,
                members,
                small_extent_rotate_at,
                extent_limit,
                engine.clone(),
            )?,
            None => DataPartitionReplica::new(
                partition,
                volume,
                members,
                small_extent_rotate_at,
                extent_limit,
            ),
        };
        replica.set_store_metrics(self.store_metrics.clone());
        parts.insert(partition, replica);
        Ok(())
    }

    fn chain_state(&self, partition: PartitionId) -> Arc<ChainState> {
        self.chain_order
            .lock()
            .entry(partition)
            .or_insert_with(|| {
                Arc::new(ChainState {
                    seq: Mutex::new(ChainSeq {
                        next_ticket: 0,
                        forward_turn: 0,
                    }),
                    cv: Condvar::new(),
                    small: Mutex::new(()),
                })
            })
            .clone()
    }

    /// Forward a chain request to this node's successor, if any.
    fn forward_chain(&self, replicas: &[NodeId], req: DataRequest) -> Result<()> {
        if let Some(next) = self.next_in_chain(replicas) {
            self.metrics.chain_forwards.inc();
            self.net.call(self.id, next, req)??;
        }
        Ok(())
    }

    /// Primary-backup append (§2.7.1 steps 3–7): verify CRC, apply
    /// locally, forward down the chain; the PB leader advances the
    /// committed watermark only after the whole chain acked.
    #[allow(clippy::too_many_arguments)]
    fn handle_append(
        &self,
        partition: PartitionId,
        extent: ExtentId,
        offset: u64,
        data: Bytes,
        crc: u32,
        replicas: Vec<NodeId>,
        request_id: u64,
    ) -> Result<DataResponse> {
        if crc32(&data) != crc {
            return Err(CfsError::Corrupt("append packet crc mismatch".into()));
        }
        let am_chain_head = replicas.first() == Some(&self.id);
        if !am_chain_head {
            // Followers receive already-ordered traffic from the chain
            // head: validate, apply, forward — no ordering machinery.
            {
                let mut parts = self.partitions.lock();
                let r = Self::part_mut(&mut parts, partition)?;
                if r.pb_leader() == self.id {
                    return Err(CfsError::InvalidArgument(
                        "replica array does not start at the PB leader".into(),
                    ));
                }
                if !replicas.contains(&self.id) {
                    return Err(CfsError::InvalidArgument(format!(
                        "{}: not in replica chain",
                        self.id
                    )));
                }
                r.apply_append(extent, offset, &data)?;
                self.metrics.chain_applies.inc();
            }
            self.forward_chain(
                &replicas,
                DataRequest::Append {
                    partition,
                    extent,
                    offset,
                    data: data.clone(),
                    crc,
                    replicas: replicas.clone(),
                    request_id,
                },
            )?;
            return Ok(DataResponse::Watermark(offset + data.len() as u64));
        }

        // Chain head: pipelined apply + ordered forwarding. Packets of one
        // client window arrive on concurrent threads; apply order is
        // enforced by waiting (bounded) until our offset meets the
        // extent's applied size, and forward order by the ticket turn.
        // Lock order is always ChainState.seq → partitions.
        let state = self.chain_state(partition);
        let deadline = Instant::now() + CHAIN_GAP_TIMEOUT;
        // Set on the first gap wait; its elapsed time feeds the stall
        // histogram once our turn arrives.
        let mut gap_wait_started: Option<Instant> = None;
        let (ticket, is_pb_leader) = {
            let mut seq = state.seq.lock();
            loop {
                {
                    let mut parts = self.partitions.lock();
                    let r = Self::part_mut(&mut parts, partition)?;
                    let leader = r.pb_leader();
                    if leader != self.id && !replicas.contains(&self.id) {
                        return Err(CfsError::InvalidArgument(format!(
                            "{}: not in replica chain",
                            self.id
                        )));
                    }
                    if offset <= r.extent_size(extent).unwrap_or(0) {
                        // Our turn (or a misordered duplicate, which the
                        // strict offset==size append check rejects).
                        r.apply_append(extent, offset, &data)?;
                        self.metrics.chain_applies.inc();
                        let ticket = seq.next_ticket;
                        seq.next_ticket += 1;
                        break (ticket, leader == self.id);
                    }
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(CfsError::Timeout(format!(
                        "{partition}: chain gap before offset {offset} of {extent}"
                    )));
                }
                if gap_wait_started.is_none() {
                    gap_wait_started = Some(Instant::now());
                    self.metrics.gap_wait_stalls.inc();
                }
                state.cv.wait_for(&mut seq, remaining);
            }
        };
        if let Some(started) = gap_wait_started {
            self.latency.gap_wait_ns.record_duration(started.elapsed());
        }
        // Wake window peers blocked on the apply gap we just filled.
        state.cv.notify_all();
        let turn_guard = TurnGuard {
            state: &state,
            ticket,
        };

        // Forward in ticket order, outside every lock: packet k+1 applies
        // locally while we are still in flight down the chain. A
        // downstream failure leaves our local bytes as an uncommitted
        // stale tail (§2.2.5) and surfaces the error to the sender.
        let forward_res = {
            let mut seq = state.seq.lock();
            while seq.forward_turn != ticket {
                state.cv.wait(&mut seq);
            }
            drop(seq);
            self.forward_chain(
                &replicas,
                DataRequest::Append {
                    partition,
                    extent,
                    offset,
                    data: data.clone(),
                    crc,
                    replicas: replicas.clone(),
                    request_id,
                },
            )
        };
        drop(turn_guard); // advance the turn even if forwarding failed
        forward_res?;

        let new_watermark = offset + data.len() as u64;
        if is_pb_leader {
            let mut parts = self.partitions.lock();
            Self::part_mut(&mut parts, partition)?.commit(extent, new_watermark);
        }
        self.metrics.appends_served.inc();
        Ok(DataResponse::Watermark(new_watermark))
    }

    /// Small-file write at the PB leader: pack locally, chain-replicate
    /// the exact placement, commit (§2.2.3).
    fn handle_write_small(
        &self,
        partition: PartitionId,
        data: Bytes,
        replicas: Vec<NodeId>,
    ) -> Result<DataResponse> {
        // Serialize pack + forward per partition (see [`ChainState`]).
        let state = self.chain_state(partition);
        let _order_guard = state.small.lock();
        let (loc, members) = {
            let mut parts = self.partitions.lock();
            let r = Self::part_mut(&mut parts, partition)?;
            if r.pb_leader() != self.id {
                return Err(CfsError::NotLeader {
                    partition,
                    hint: Some(r.pb_leader()),
                });
            }
            (r.write_small(&data)?, r.members().to_vec())
        };
        let replicas = if replicas.is_empty() {
            members
        } else {
            replicas
        };
        self.forward_chain(
            &replicas,
            DataRequest::Append {
                partition,
                extent: loc.extent_id,
                offset: loc.offset,
                data: data.clone(),
                crc: crc32(&data),
                replicas: replicas.clone(),
                request_id: 0,
            },
        )?;
        {
            let mut parts = self.partitions.lock();
            Self::part_mut(&mut parts, partition)?.commit(loc.extent_id, loc.offset + loc.len);
        }
        self.metrics.small_writes_served.inc();
        Ok(DataResponse::Small(loc))
    }

    /// Batched small-file write at the PB leader (DESIGN §13): pack every
    /// record into the shared extent(s) with one store call, forward each
    /// aggregated segment down the chain as a single append, and advance
    /// the watermark segment by segment. On a mid-batch chain failure the
    /// already-forwarded segments stay committed and the reply carries
    /// exactly that prefix of locations; if nothing committed, the error
    /// surfaces so the client can retry the whole batch elsewhere.
    fn handle_write_small_batch(
        &self,
        partition: PartitionId,
        records: Vec<Bytes>,
        replicas: Vec<NodeId>,
    ) -> Result<DataResponse> {
        if records.is_empty() {
            return Ok(DataResponse::SmallBatch(Vec::new()));
        }
        // Serialize pack + forward per partition (see [`ChainState`]).
        let state = self.chain_state(partition);
        let _order_guard = state.small.lock();
        let (locs, members) = {
            let mut parts = self.partitions.lock();
            let r = Self::part_mut(&mut parts, partition)?;
            if r.pb_leader() != self.id {
                return Err(CfsError::NotLeader {
                    partition,
                    hint: Some(r.pb_leader()),
                });
            }
            let views: Vec<&[u8]> = records.iter().map(|b| b.as_ref()).collect();
            (r.write_small_batch(&views)?, r.members().to_vec())
        };
        let replicas = if replicas.is_empty() {
            members
        } else {
            replicas
        };
        // Locations are contiguous runs per extent by construction
        // (rotation starts a new run); each run is one chain forward +
        // one watermark commit.
        let mut committed_records = 0usize;
        let mut failure: Option<CfsError> = None;
        let mut i = 0usize;
        while i < locs.len() {
            let extent = locs[i].extent_id;
            let base = locs[i].offset;
            let mut seg_len = 0u64;
            let mut j = i;
            while j < locs.len() && locs[j].extent_id == extent && locs[j].offset == base + seg_len
            {
                seg_len += locs[j].len;
                j += 1;
            }
            let mut payload = Vec::with_capacity(seg_len as usize);
            for rec in &records[i..j] {
                payload.extend_from_slice(rec);
            }
            let payload = Bytes::from(payload);
            let crc = crc32(&payload);
            let forwarded = self.forward_chain(
                &replicas,
                DataRequest::Append {
                    partition,
                    extent,
                    offset: base,
                    data: payload,
                    crc,
                    replicas: replicas.clone(),
                    request_id: 0,
                },
            );
            match forwarded {
                Ok(()) => {
                    let mut parts = self.partitions.lock();
                    Self::part_mut(&mut parts, partition)?.commit(extent, base + seg_len);
                    committed_records = j;
                    self.metrics.small_batch_segments.inc();
                }
                Err(e) => {
                    // The failed segment is an uncommitted stale tail on
                    // this replica (§2.2.5); recovery truncates it.
                    failure = Some(e);
                    break;
                }
            }
            i = j;
        }
        if committed_records == 0 {
            if let Some(e) = failure {
                return Err(e);
            }
        }
        self.metrics.small_batch_writes_served.inc();
        self.metrics
            .small_batch_records
            .add(committed_records as u64);
        Ok(DataResponse::SmallBatch(locs[..committed_records].to_vec()))
    }

    /// Raft-replicated overwrite: propose and pump to commit (§2.2.4).
    fn handle_overwrite(
        &self,
        partition: PartitionId,
        extent: ExtentId,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        let group = Self::group_of(partition);
        let cmd = DataCommand::overwrite(extent, offset, data.to_vec());
        let index = {
            let mut raft = self.raft.lock();
            let node = raft
                .multiraft
                .group_mut(group)
                .ok_or_else(|| CfsError::NotFound(format!("{partition}")))?;
            node.propose(cmd.to_bytes())?
        };
        let committed = self.hub.pump_until(
            || self.raft.lock().results.contains_key(&(group, index)),
            self.commit_timeout_ticks,
        );
        if !committed {
            return Err(CfsError::Timeout(format!(
                "{partition}: overwrite commit at index {index}"
            )));
        }
        self.raft
            .lock()
            .results
            .remove(&(group, index))
            .expect("result present per pump predicate")
    }

    /// Recovery step 1 (§2.2.5): the PB leader aligns every extent across
    /// replicas — truncating stale tails above the committed watermark and
    /// re-shipping missing committed bytes. Raft replay (step 2) then
    /// proceeds through the normal MultiRaft machinery.
    fn recover_partition(&self, partition: PartitionId) -> Result<usize> {
        let (extents, members) = {
            let parts = self.partitions.lock();
            let r = Self::part(&parts, partition)?;
            if r.pb_leader() != self.id {
                return Err(CfsError::NotLeader {
                    partition,
                    hint: Some(r.pb_leader()),
                });
            }
            (r.extent_ids(), r.members().to_vec())
        };
        self.metrics.recoveries.inc();
        let mut repaired = 0;
        for extent in extents {
            let committed = {
                let mut parts = self.partitions.lock();
                let r = Self::part_mut(&mut parts, partition)?;
                let c = r.committed(extent);
                // Drop our own stale tail first.
                if r.extent_size(extent)? > c {
                    r.truncate(extent, c)?;
                    repaired += 1;
                }
                c
            };
            for &peer in members.iter().filter(|&&m| m != self.id) {
                let info = match self.net.call(
                    self.id,
                    peer,
                    DataRequest::ExtentInfo { partition, extent },
                ) {
                    Ok(Ok(DataResponse::Info(i))) => i,
                    Ok(Ok(_)) => return Err(CfsError::Internal("bad ExtentInfo reply".into())),
                    Ok(Err(CfsError::NotFound(_))) => ExtentInfo {
                        extent,
                        size: 0,
                        committed: 0,
                        crc: 0,
                    },
                    Ok(Err(e)) => return Err(e),
                    // Peer unreachable (down or partitioned): align the
                    // reachable survivors; the repair scheduler is what
                    // restores the replication factor.
                    Err(_) => continue,
                };
                if info.size > committed {
                    // Stale tail on the peer: align down.
                    self.net.call(
                        self.id,
                        peer,
                        DataRequest::TruncateExtent {
                            partition,
                            extent,
                            size: committed,
                        },
                    )??;
                    repaired += 1;
                } else if info.size < committed {
                    // Peer is missing committed bytes: re-ship them.
                    let missing = {
                        let parts = self.partitions.lock();
                        Self::part(&parts, partition)?.read(
                            extent,
                            info.size,
                            (committed - info.size) as usize,
                            true,
                        )?
                    };
                    let crc = crc32(&missing);
                    self.net.call(
                        self.id,
                        peer,
                        DataRequest::Append {
                            partition,
                            extent,
                            offset: info.size,
                            data: Bytes::from(missing),
                            crc,
                            // Point-to-point repair: no further forwarding.
                            replicas: vec![peer],
                            request_id: 0,
                        },
                    )??;
                    repaired += 1;
                }
            }
        }
        self.metrics.recovery_repairs.add(repaired as u64);
        Ok(repaired)
    }

    /// Adopt a repaired replica array (§2.3.3): update the chain order and
    /// rebuild the partition's Raft group around the durable log so the
    /// surviving consensus state carries into the new membership.
    /// Idempotent for task retries.
    pub fn update_members(&self, partition: PartitionId, members: Vec<NodeId>) -> Result<()> {
        {
            let mut parts = self.partitions.lock();
            let r = Self::part_mut(&mut parts, partition)?;
            if r.members() == members.as_slice() {
                return Ok(());
            }
            r.set_members(members.clone());
        }
        let gid = Self::group_of(partition);
        let mut raft = self.raft.lock();
        if let Some(state) = raft.multiraft.persist_group(gid) {
            raft.multiraft.remove_group(gid);
            raft.multiraft.restore_group(gid, members, state)?;
        } else {
            raft.multiraft.create_group(gid, members)?;
        }
        self.metrics.join_members_updates.inc();
        Ok(())
    }

    /// §2.2.5 head promotion: the committed-watermark map lived only on
    /// the old PB leader, so a newly promoted head recomputes each
    /// extent's watermark as the minimum applied size across the
    /// surviving replicas — every chain-acked byte is present on all of
    /// them, so the minimum can never cut committed data. `commit` never
    /// regresses, so re-running on a head that already has watermarks is
    /// harmless.
    fn promote_head(&self, partition: PartitionId, sync_from: &[NodeId]) -> Result<usize> {
        let extents = {
            let parts = self.partitions.lock();
            let r = Self::part(&parts, partition)?;
            if r.pb_leader() != self.id {
                return Err(CfsError::NotLeader {
                    partition,
                    hint: Some(r.pb_leader()),
                });
            }
            r.extent_ids()
        };
        let mut updated = 0;
        for extent in extents {
            let mut watermark = {
                let parts = self.partitions.lock();
                Self::part(&parts, partition)?
                    .extent_size(extent)
                    .unwrap_or(0)
            };
            for &peer in sync_from.iter().filter(|&&m| m != self.id) {
                let size = match self.net.call(
                    self.id,
                    peer,
                    DataRequest::ExtentInfo { partition, extent },
                )? {
                    Ok(DataResponse::Info(i)) => i.size,
                    Ok(_) => return Err(CfsError::Internal("bad ExtentInfo reply".into())),
                    Err(CfsError::NotFound(_)) => 0,
                    Err(e) => return Err(e),
                };
                watermark = watermark.min(size);
            }
            let mut parts = self.partitions.lock();
            let r = Self::part_mut(&mut parts, partition)?;
            if watermark > r.committed(extent) {
                r.commit(extent, watermark);
                updated += 1;
            }
        }
        self.metrics.join_promotions.inc();
        Ok(updated)
    }

    /// Utilization for placement (disk-bytes analog, §2.3.1).
    pub fn total_physical_bytes(&self) -> u64 {
        self.partitions
            .lock()
            .values()
            .map(|r| r.stats().store.physical_bytes)
            .sum()
    }

    /// Partitions hosted.
    pub fn partition_count(&self) -> usize {
        self.partitions.lock().len()
    }

    /// Is this node the Raft leader of the partition's group?
    pub fn is_raft_leader_for(&self, partition: PartitionId) -> bool {
        self.raft
            .lock()
            .multiraft
            .group(Self::group_of(partition))
            .map(|g| g.is_leader())
            .unwrap_or(false)
    }

    /// Raft leader hint for client caches.
    pub fn raft_leader_hint(&self, partition: PartitionId) -> Option<NodeId> {
        self.raft
            .lock()
            .multiraft
            .group(Self::group_of(partition))
            .and_then(|g| g.leader_hint())
    }

    // ------------------------------------------------------------------
    // Crash / restart (chaos harness entry points)
    // ------------------------------------------------------------------

    /// Extract the durable image of this node, consuming its partition
    /// state. Call at "crash" time, just before dropping the node: the
    /// extent stores *are* the on-disk state, so they move out rather
    /// than copy. Volatile state (chain tickets, result cache) is lost,
    /// exactly as a real crash would lose it.
    pub fn export_crash_image(&self) -> DataNodePersist {
        let parts = std::mem::take(&mut *self.partitions.lock());
        let mut partitions: Vec<DataPartitionReplica> = parts.into_values().collect();
        partitions.sort_by_key(|r| r.partition_id());
        let raft = self.raft.lock();
        let mut groups: Vec<(RaftGroupId, Vec<NodeId>, PersistentRaftState)> = partitions
            .iter()
            .filter_map(|r| {
                let gid = Self::group_of(r.partition_id());
                raft.multiraft
                    .persist_group(gid)
                    .map(|s| (gid, r.members().to_vec(), s))
            })
            .collect();
        groups.sort_by_key(|(gid, _, _)| gid.raw());
        DataNodePersist {
            partitions,
            raft: groups,
        }
    }

    /// Rebuild a data node from a crash image (§2.1.3-style restart for
    /// the data plane): replicas come back from their stores, each Raft
    /// group restores from its durable log + snapshot and rejoins as a
    /// follower. The caller re-registers the node on `net`.
    pub fn restore(
        id: NodeId,
        hub: RaftHub,
        net: Network<DataRequest, Result<DataResponse>>,
        raft_config: RaftConfig,
        seed: u64,
        image: DataNodePersist,
    ) -> Result<Arc<Self>> {
        Self::restore_with_registry(id, hub, net, raft_config, seed, image, None)
    }

    /// [`DataNode::restore`] with metrics re-bound to `registry` (counters
    /// continue across the crash; they are cluster-level, not per-boot).
    #[allow(clippy::too_many_arguments)]
    pub fn restore_with_registry(
        id: NodeId,
        hub: RaftHub,
        net: Network<DataRequest, Result<DataResponse>>,
        raft_config: RaftConfig,
        seed: u64,
        image: DataNodePersist,
        registry: Option<&Registry>,
    ) -> Result<Arc<Self>> {
        let mut multiraft = MultiRaft::new(id, raft_config, seed, true);
        if let Some(r) = registry {
            multiraft.set_metrics(RaftMetrics::bind(r));
        }
        let store_metrics: StoreMetrics = registry.map(StoreMetrics::bind).unwrap_or_default();
        let node = Arc::new(DataNode {
            id,
            hub: hub.clone(),
            net,
            partitions: Mutex::new(
                image
                    .partitions
                    .into_iter()
                    .map(|mut r| {
                        r.set_store_metrics(store_metrics.clone());
                        (r.partition_id(), r)
                    })
                    .collect(),
            ),
            chain_order: Mutex::new(HashMap::new()),
            raft: Mutex::new(RaftState {
                multiraft,
                results: HashMap::new(),
            }),
            commit_timeout_ticks: 2_000,
            registry: registry.cloned(),
            metrics: registry.map(DataMetrics::bind).unwrap_or_default(),
            latency: registry.map(DataLatency::bind).unwrap_or_default(),
            store_metrics,
            engine: None,
        });
        {
            let mut raft = node.raft.lock();
            for (gid, members, state) in image.raft {
                raft.multiraft.restore_group(gid, members, state)?;
            }
        }
        hub.register(node.clone() as Arc<dyn RaftHost>);
        Ok(node)
    }

    /// Partitions hosted here with their replica arrays (invariant
    /// checking), sorted by partition id.
    pub fn hosted_partitions(&self) -> Vec<(PartitionId, Vec<NodeId>)> {
        let parts = self.partitions.lock();
        let mut out: Vec<(PartitionId, Vec<NodeId>)> = parts
            .values()
            .map(|r| (r.partition_id(), r.members().to_vec()))
            .collect();
        out.sort_by_key(|(pid, _)| *pid);
        out
    }

    /// Size/CRC/watermark facts for every extent of one partition,
    /// sorted by extent id (replica-alignment invariant checking).
    pub fn extent_manifest(&self, partition: PartitionId) -> Option<Vec<ExtentInfo>> {
        let mut parts = self.partitions.lock();
        let r = parts.get_mut(&partition)?;
        let mut ids = r.extent_ids();
        ids.sort();
        Some(
            ids.into_iter()
                .map(|e| ExtentInfo {
                    extent: e,
                    size: r.extent_size(e).unwrap_or(0),
                    committed: r.committed(e),
                    crc: r.extent_crc(e).unwrap_or(0),
                })
                .collect(),
        )
    }

    /// Queued-but-unexecuted deletions on one partition (quiesce check).
    pub fn pending_deletes(&self, partition: PartitionId) -> Option<usize> {
        self.partitions
            .lock()
            .get(&partition)
            .map(|r| r.pending_deletes())
    }
}

impl RaftHost for DataNode {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn raft_tick(&self) {
        self.raft.lock().multiraft.tick_all();
    }

    fn raft_drain(&self) -> Vec<WireEnvelope> {
        let mut raft = self.raft.lock();
        let (msgs, readies) = raft.multiraft.drain();
        for (gid, ready) in readies {
            let pid = PartitionId(gid.raw());
            let is_leader = raft
                .multiraft
                .group(gid)
                .map(|g| g.is_leader())
                .unwrap_or(false);
            for entry in ready.committed {
                if entry.data.is_empty() {
                    continue;
                }
                let result = (|| -> Result<()> {
                    let cmd = DataCommand::from_bytes(&entry.data)?;
                    cmd.verify()?;
                    let DataCommand::Overwrite {
                        extent,
                        offset,
                        data,
                        ..
                    } = cmd;
                    let mut parts = self.partitions.lock();
                    Self::part_mut(&mut parts, pid)?.apply_overwrite(extent, offset, &data)
                })();
                if result.is_ok() {
                    self.metrics.overwrites_applied.inc();
                }
                if is_leader {
                    raft.results.insert((gid, entry.index), result);
                }
            }
        }
        if raft.results.len() > 65_536 {
            raft.results.clear();
        }
        msgs
    }

    fn raft_deliver(&self, env: WireEnvelope) {
        self.raft.lock().multiraft.receive(env.from, env.msg);
    }
}
