//! Data-plane metrics: chain replication, gap waits, raft overwrites.

use cfs_obs::{Counter, Histogram, Registry};

/// Registry-backed data-node counters (cloning shares the atomics, so one
/// instance serves every partition a node hosts).
#[derive(Debug, Clone, Default)]
pub struct DataMetrics {
    /// Appends served at the chain head (client-facing).
    pub appends_served: Counter,
    /// Small-file writes packed at the PB leader.
    pub small_writes_served: Counter,
    /// Batched small-file writes served (one per WriteSmallBatch RPC).
    pub small_batch_writes_served: Counter,
    /// Records committed through the batched small-file path.
    pub small_batch_records: Counter,
    /// Aggregated extent segments forwarded down the chain for batches
    /// (usually 1 per batch; >1 only across a shared-extent rotation).
    pub small_batch_segments: Counter,
    /// Local chain applies (head and followers).
    pub chain_applies: Counter,
    /// Downstream forwards actually sent (a chain hop existed).
    pub chain_forwards: Counter,
    /// Head-of-chain waits for a predecessor packet to fill an offset gap.
    pub gap_wait_stalls: Counter,
    /// Raft-replicated overwrites applied to the local store.
    pub overwrites_applied: Counter,
    /// PB-leader recovery passes run (§2.2.5 step 1).
    pub recoveries: Counter,
    /// Individual repairs (truncations + re-ships) those passes made.
    pub recovery_repairs: Counter,
    /// Repair membership adoptions (replica array + Raft group rebuilt).
    pub join_members_updates: Counter,
    /// Head promotions: committed watermarks recomputed from survivors.
    pub join_promotions: Counter,
}

/// Wait-time histogram, separate so `DataMetrics` stays `Copy`-cheap to
/// thread around.
#[derive(Debug, Clone, Default)]
pub struct DataLatency {
    /// Nanoseconds spent blocked on chain offset gaps.
    pub gap_wait_ns: Histogram,
}

impl DataMetrics {
    /// Metrics counted into private atomics (no registry attached).
    pub fn detached() -> DataMetrics {
        DataMetrics::default()
    }

    /// Metrics registered under `data.*` names.
    pub fn bind(registry: &Registry) -> DataMetrics {
        DataMetrics {
            appends_served: registry.counter("data.appends_served"),
            small_writes_served: registry.counter("data.small_writes_served"),
            small_batch_writes_served: registry.counter("data.small_batch.writes_served"),
            small_batch_records: registry.counter("data.small_batch.records"),
            small_batch_segments: registry.counter("data.small_batch.segments"),
            chain_applies: registry.counter("data.chain_applies"),
            chain_forwards: registry.counter("data.chain_forwards"),
            gap_wait_stalls: registry.counter("data.gap_wait_stalls"),
            overwrites_applied: registry.counter("data.overwrites_applied"),
            recoveries: registry.counter("data.recoveries"),
            recovery_repairs: registry.counter("data.recovery_repairs"),
            join_members_updates: registry.counter("data.join.members_updates"),
            join_promotions: registry.counter("data.join.promotions"),
        }
    }
}

impl DataLatency {
    pub fn detached() -> DataLatency {
        DataLatency::default()
    }

    pub fn bind(registry: &Registry) -> DataLatency {
        DataLatency {
            gap_wait_ns: registry.histogram("data.gap_wait_ns"),
        }
    }
}
