//! Raft-replicated commands of the overwrite path (§2.2.4).

use cfs_types::codec::{Decode, Decoder, Encode, Encoder};
use cfs_types::crc::crc32;
use cfs_types::{CfsError, ExtentId, Result};

/// A command proposed through a data partition's Raft group. Only
/// overwrites travel this path — appends use primary-backup (§2.2.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataCommand {
    Overwrite {
        extent: ExtentId,
        offset: u64,
        data: Vec<u8>,
        crc: u32,
    },
}

impl DataCommand {
    /// An overwrite command with its payload CRC computed.
    pub fn overwrite(extent: ExtentId, offset: u64, data: Vec<u8>) -> Self {
        let crc = crc32(&data);
        DataCommand::Overwrite {
            extent,
            offset,
            data,
            crc,
        }
    }

    /// Verify payload integrity.
    pub fn verify(&self) -> Result<()> {
        match self {
            DataCommand::Overwrite { data, crc, .. } => {
                if crc32(data) != *crc {
                    return Err(CfsError::Corrupt("overwrite payload crc mismatch".into()));
                }
                Ok(())
            }
        }
    }
}

impl Encode for DataCommand {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            DataCommand::Overwrite {
                extent,
                offset,
                data,
                crc,
            } => {
                enc.put_u8(0);
                extent.encode(enc);
                enc.put_u64(*offset);
                enc.put_bytes(data);
                enc.put_u32(*crc);
            }
        }
    }
}

impl Decode for DataCommand {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        match dec.get_u8()? {
            0 => Ok(DataCommand::Overwrite {
                extent: ExtentId::decode(dec)?,
                offset: dec.get_u64()?,
                data: dec.get_bytes()?.to_vec(),
                crc: dec.get_u32()?,
            }),
            b => Err(CfsError::Corrupt(format!("invalid data command tag {b}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_types::codec::roundtrip;

    #[test]
    fn codec_roundtrip() {
        let c = DataCommand::overwrite(ExtentId(3), 4096, vec![1, 2, 3]);
        assert_eq!(roundtrip(&c).unwrap(), c);
        assert!(c.verify().is_ok());
    }

    #[test]
    fn verify_detects_corruption() {
        let DataCommand::Overwrite {
            extent,
            offset,
            mut data,
            crc,
        } = DataCommand::overwrite(ExtentId(1), 0, vec![9; 64]);
        data[10] ^= 1;
        let c = DataCommand::Overwrite {
            extent,
            offset,
            data,
            crc,
        };
        assert!(c.verify().is_err());
    }

    #[test]
    fn invalid_tag_rejected() {
        assert!(DataCommand::from_bytes(&[42]).is_err());
    }
}
