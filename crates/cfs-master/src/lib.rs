//! The resource manager (§2.3): volumes, placement, splitting, liveness.
//!
//! The resource manager "manages the file system by processing different
//! types of tasks" — creating/deleting partitions, creating volumes,
//! adding/removing nodes — while tracking memory/disk utilization and
//! liveness of every meta and data node. It has multiple replicas kept
//! strongly consistent by Raft and persisted to a key-value store (§2).
//!
//! This crate follows that design literally:
//!
//! * [`MasterState`] is a deterministic state machine over
//!   [`MasterCommand`]s; every mutation is proposed through a single Raft
//!   group shared by the replicas and mirrored into a [`cfs_kvwal::KvStore`]
//!   for restart recovery.
//! * **Utilization-based placement** (§2.3.1): partition replicas go to the
//!   nodes with the lowest memory (meta) or disk (data) utilization,
//!   preferring nodes of one *Raft set* (§2.5.1) to bound heartbeat
//!   fan-out. No data ever moves when nodes are added — new capacity just
//!   attracts future placements (tested by `ablation_placement`).
//! * **Meta partition splitting** (Algorithm 1): when the newest partition
//!   of a volume approaches its item limit, its inode range is cut at
//!   `maxInodeID + Δ` and a successor partition `[end+1, ∞)` is placed on
//!   fresh nodes.
//! * Decisions are returned as [`Task`]s (create partition, mark
//!   read-only…) that the cluster driver delivers to meta/data nodes,
//!   keeping this crate free of dependencies on the other subsystems.

mod node;
mod placement;
mod state;

pub use node::{MasterMetrics, MasterNode, MasterRequest, MasterResponse};
pub use placement::{choose_replicas, NodeLoad};
pub use state::{
    DataPartitionMeta, MasterCommand, MasterState, MetaPartitionMeta, NodeKind, NodeStatus, Task,
    VolumeMeta,
};
