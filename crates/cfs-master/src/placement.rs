//! Utilization-based replica placement (§2.3.1) with Raft sets (§2.5.1).

use cfs_types::NodeId;

/// One candidate node's load as seen by the resource manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLoad {
    pub node: NodeId,
    /// Memory utilization for meta nodes (items held), disk utilization
    /// for data nodes (physical bytes). Unitless — only ordering matters.
    pub utilization: u64,
    /// Raft set this node belongs to (§2.5.1).
    pub raft_set: u32,
    /// Dead nodes are never chosen.
    pub alive: bool,
}

/// Choose `replica_count` replicas for a new partition.
///
/// Strategy per the paper: pick the nodes with the lowest utilization,
/// and prefer keeping all replicas inside one Raft set so heartbeat
/// traffic stays set-local. Concretely: among Raft sets that have at least
/// `replica_count` live members, pick the set whose least-loaded members
/// sum to the lowest utilization; fall back to a global lowest-utilization
/// pick if no single set is large enough.
///
/// Ties in utilization are rotated by `salt` (the allocation counter), so
/// a burst of placements over an idle cluster still spreads across nodes —
/// the uniform distribution the paper credits for performance stability
/// (§2.3.1).
///
/// Returns replicas ordered by utilization — index 0 (least loaded)
/// becomes the primary-backup leader of a data partition.
fn mix(node: u64, salt: u64) -> u64 {
    if salt == 0 {
        // Salt 0 keeps pure node-id order (deterministic unit tests).
        return node;
    }
    // splitmix64 of (node, salt): a real permutation per salt, so ties in
    // utilization land on different nodes for successive allocations.
    let mut z = node ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub fn choose_replicas(loads: &[NodeLoad], replica_count: usize, salt: u64) -> Option<Vec<NodeId>> {
    let mut live: Vec<&NodeLoad> = loads.iter().filter(|l| l.alive).collect();
    if live.len() < replica_count {
        return None;
    }
    live.sort_by_key(|l| (l.utilization, mix(l.node.raw(), salt), l.node));

    // Group by raft set, preserving the utilization order.
    let mut sets: std::collections::BTreeMap<u32, Vec<&NodeLoad>> = Default::default();
    for l in &live {
        sets.entry(l.raft_set).or_default().push(l);
    }

    // Best set = lowest sum of its `replica_count` least-loaded members.
    let best_set = sets
        .values()
        .filter(|members| members.len() >= replica_count)
        .min_by_key(|members| {
            members[..replica_count]
                .iter()
                .map(|l| l.utilization)
                .sum::<u64>()
        });

    let chosen: Vec<NodeId> = match best_set {
        Some(members) => members[..replica_count].iter().map(|l| l.node).collect(),
        // No set is big enough: cross-set placement by pure utilization.
        None => live[..replica_count].iter().map(|l| l.node).collect(),
    };
    Some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(node: u64, util: u64, set: u32) -> NodeLoad {
        NodeLoad {
            node: NodeId(node),
            utilization: util,
            raft_set: set,
            alive: true,
        }
    }

    #[test]
    fn picks_lowest_utilization_within_one_set() {
        let loads = vec![
            load(1, 50, 0),
            load(2, 10, 0),
            load(3, 30, 0),
            load(4, 5, 1),
            load(5, 90, 1),
            load(6, 95, 1),
        ];
        // Set 0's three cheapest sum to 90; set 1's to 190 → set 0 wins
        // even though node 4 is globally cheapest.
        let r = choose_replicas(&loads, 3, 0).unwrap();
        assert_eq!(r, vec![NodeId(2), NodeId(3), NodeId(1)]);
    }

    #[test]
    fn leader_is_least_loaded() {
        let loads = vec![load(1, 30, 0), load(2, 10, 0), load(3, 20, 0)];
        let r = choose_replicas(&loads, 3, 0).unwrap();
        assert_eq!(r[0], NodeId(2));
    }

    #[test]
    fn falls_back_across_sets_when_no_set_is_big_enough() {
        let loads = vec![load(1, 10, 0), load(2, 20, 1), load(3, 30, 2)];
        let r = choose_replicas(&loads, 3, 0).unwrap();
        assert_eq!(r, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn skips_dead_nodes() {
        let mut loads = vec![load(1, 1, 0), load(2, 2, 0), load(3, 3, 0), load(4, 99, 0)];
        loads[0].alive = false;
        let r = choose_replicas(&loads, 3, 0).unwrap();
        assert_eq!(r, vec![NodeId(2), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn returns_none_when_not_enough_nodes() {
        let loads = vec![load(1, 1, 0), load(2, 2, 0)];
        assert!(choose_replicas(&loads, 3, 0).is_none());
        assert!(choose_replicas(&[], 1, 0).is_none());
    }

    #[test]
    fn ties_break_deterministically_by_node_id() {
        let loads = vec![load(3, 10, 0), load(1, 10, 0), load(2, 10, 0)];
        let r = choose_replicas(&loads, 2, 0).unwrap();
        assert_eq!(r, vec![NodeId(1), NodeId(2)]);
    }
}
