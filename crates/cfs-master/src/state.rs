//! The resource manager's replicated state machine.

use std::collections::BTreeMap;

use cfs_types::codec::{Decode, Decoder, Encode, Encoder};
use cfs_types::{CfsError, ClusterConfig, InodeId, NodeId, PartitionId, Result, VolumeId};

use crate::placement::{choose_replicas, NodeLoad};

/// Heartbeat rounds a meta partition may stay unreported before the
/// maintenance sweep re-emits its create task (split reconciliation).
const UNREPORTED_ROUNDS: u64 = 3;

/// What kind of storage node registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    Meta,
    Data,
}

impl Encode for NodeKind {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            NodeKind::Meta => 0,
            NodeKind::Data => 1,
        });
    }
}

impl Decode for NodeKind {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        match dec.get_u8()? {
            0 => Ok(NodeKind::Meta),
            1 => Ok(NodeKind::Data),
            b => Err(CfsError::Corrupt(format!("invalid node kind {b}"))),
        }
    }
}

/// Liveness + utilization of one registered node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    pub node: NodeId,
    pub kind: NodeKind,
    /// Memory items (meta) or physical bytes (data) — the placement
    /// signal (§2.3.1).
    pub utilization: u64,
    /// Raft set membership (§2.5.1).
    pub raft_set: u32,
    pub alive: bool,
    /// Consecutive heartbeat rounds this node failed to report in.
    /// `>= suspect_after_missed` makes the node a non-target for
    /// placement; `>= dead_after_missed` triggers repair (§2.3.3).
    pub missed_heartbeats: u32,
}

impl NodeStatus {
    /// Detection state relative to `config` thresholds: a node the
    /// scheduler must re-replicate away from.
    pub fn is_dead(&self, config: &ClusterConfig) -> bool {
        self.missed_heartbeats >= config.dead_after_missed
    }

    /// Suspect or worse: excluded from new placements but not yet
    /// repaired around.
    pub fn is_suspect(&self, config: &ClusterConfig) -> bool {
        self.missed_heartbeats >= config.suspect_after_missed
    }
}

impl Encode for NodeStatus {
    fn encode(&self, enc: &mut Encoder) {
        self.node.encode(enc);
        self.kind.encode(enc);
        enc.put_u64(self.utilization);
        enc.put_u32(self.raft_set);
        self.alive.encode(enc);
        enc.put_u32(self.missed_heartbeats);
    }
}

impl Decode for NodeStatus {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(NodeStatus {
            node: NodeId::decode(dec)?,
            kind: NodeKind::decode(dec)?,
            utilization: dec.get_u64()?,
            raft_set: dec.get_u32()?,
            alive: bool::decode(dec)?,
            missed_heartbeats: dec.get_u32()?,
        })
    }
}

/// Resource-manager view of a meta partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaPartitionMeta {
    pub partition: PartitionId,
    pub volume: VolumeId,
    pub start: InodeId,
    pub end: InodeId,
    pub members: Vec<NodeId>,
    pub item_count: u64,
    pub max_inode: InodeId,
    /// Raft applied index as of the last heartbeat report. The delta
    /// between two reports is the partition's write rate, the QPS signal
    /// for the load-triggered split (§2.3.2).
    pub applied: u64,
    /// Applied-index delta observed between the two most recent reports.
    pub write_load: u64,
    /// The range end the reporting replica actually serves. While it lags
    /// `end` the split's cut task has not landed, and the maintenance
    /// sweep re-emits `UpdateMetaPartitionEnd` until it does.
    pub reported_end: InodeId,
    /// Heartbeat round of the last stats report. A partition that stays
    /// unreported for `UNREPORTED_ROUNDS` rounds gets its create task
    /// re-emitted (a split whose successor was never materialised, e.g.
    /// the master crashed before task delivery).
    pub last_reported_round: u64,
}

impl Encode for MetaPartitionMeta {
    fn encode(&self, enc: &mut Encoder) {
        self.partition.encode(enc);
        self.volume.encode(enc);
        self.start.encode(enc);
        self.end.encode(enc);
        self.members.encode(enc);
        enc.put_u64(self.item_count);
        self.max_inode.encode(enc);
        enc.put_u64(self.applied);
        enc.put_u64(self.write_load);
        self.reported_end.encode(enc);
        enc.put_u64(self.last_reported_round);
    }
}

impl Decode for MetaPartitionMeta {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(MetaPartitionMeta {
            partition: PartitionId::decode(dec)?,
            volume: VolumeId::decode(dec)?,
            start: InodeId::decode(dec)?,
            end: InodeId::decode(dec)?,
            members: Vec::<NodeId>::decode(dec)?,
            item_count: dec.get_u64()?,
            max_inode: InodeId::decode(dec)?,
            applied: dec.get_u64()?,
            write_load: dec.get_u64()?,
            reported_end: InodeId::decode(dec)?,
            last_reported_round: dec.get_u64()?,
        })
    }
}

/// Resource-manager view of a data partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPartitionMeta {
    pub partition: PartitionId,
    pub volume: VolumeId,
    /// Replica order; index 0 is the PB leader (§2.7.1).
    pub members: Vec<NodeId>,
    pub read_only: bool,
    pub full: bool,
}

impl Encode for DataPartitionMeta {
    fn encode(&self, enc: &mut Encoder) {
        self.partition.encode(enc);
        self.volume.encode(enc);
        self.members.encode(enc);
        self.read_only.encode(enc);
        self.full.encode(enc);
    }
}

impl Decode for DataPartitionMeta {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(DataPartitionMeta {
            partition: PartitionId::decode(dec)?,
            volume: VolumeId::decode(dec)?,
            members: Vec::<NodeId>::decode(dec)?,
            read_only: bool::decode(dec)?,
            full: bool::decode(dec)?,
        })
    }
}

/// A volume (§2): the file-system instance a container mounts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeMeta {
    pub volume: VolumeId,
    pub name: String,
    pub meta_partitions: Vec<PartitionId>,
    pub data_partitions: Vec<PartitionId>,
}

impl Encode for VolumeMeta {
    fn encode(&self, enc: &mut Encoder) {
        self.volume.encode(enc);
        self.name.encode(enc);
        self.meta_partitions.encode(enc);
        self.data_partitions.encode(enc);
    }
}

impl Decode for VolumeMeta {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(VolumeMeta {
            volume: VolumeId::decode(dec)?,
            name: String::decode(dec)?,
            meta_partitions: Vec::<PartitionId>::decode(dec)?,
            data_partitions: Vec::<PartitionId>::decode(dec)?,
        })
    }
}

/// A side effect the cluster driver must deliver to storage nodes: the
/// paper's "tasks" (§2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Task {
    CreateMetaPartition {
        partition: PartitionId,
        volume: VolumeId,
        start: InodeId,
        end: InodeId,
        members: Vec<NodeId>,
    },
    CreateDataPartition {
        partition: PartitionId,
        volume: VolumeId,
        members: Vec<NodeId>,
    },
    /// Algorithm 1: tell the meta partition to cut its inode range.
    UpdateMetaPartitionEnd {
        partition: PartitionId,
        end: InodeId,
        members: Vec<NodeId>,
    },
    /// Exception handling (§2.3.3): mark replicas read-only.
    SetDataPartitionReadOnly {
        partition: PartitionId,
        members: Vec<NodeId>,
        read_only: bool,
    },
    /// Repair (§2.3.3): tell the surviving replicas of a partition that a
    /// dead member was removed — `members` is the post-decommission array
    /// (survivors in chain order, replacement appended).
    DecommissionReplica {
        partition: PartitionId,
        kind: NodeKind,
        node: NodeId,
        members: Vec<NodeId>,
    },
    /// Repair: host a replacement replica of a data partition on
    /// `new_node` and run the §2.2.5 join (extent alignment from the chain
    /// head + raft log replay). `members` is the new replica array; index
    /// 0 is the (possibly newly promoted) PB leader.
    AddDataReplica {
        partition: PartitionId,
        volume: VolumeId,
        members: Vec<NodeId>,
        new_node: NodeId,
    },
    /// Repair: host a replacement replica of a meta partition on
    /// `new_node` (snapshot install + log replay catch-up).
    AddMetaReplica {
        partition: PartitionId,
        volume: VolumeId,
        start: InodeId,
        end: InodeId,
        members: Vec<NodeId>,
        new_node: NodeId,
    },
}

/// Commands replicated across resource-manager replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MasterCommand {
    RegisterNode {
        node: NodeId,
        kind: NodeKind,
    },
    SetNodeAlive {
        node: NodeId,
        alive: bool,
    },
    /// Heartbeat body: node-level utilization.
    UpdateNodeStats {
        node: NodeId,
        utilization: u64,
    },
    /// Heartbeat body: per-meta-partition counters (feeds Algorithm 1).
    /// `end` is the range end the replica serves (split reconciliation
    /// compares it against the planned cut) and `applied` its Raft
    /// applied index (successive deltas give the write-rate trigger).
    UpdateMetaPartitionStats {
        partition: PartitionId,
        item_count: u64,
        max_inode: InodeId,
        end: InodeId,
        applied: u64,
    },
    /// Heartbeat body: data partition reached its extent cap (§2.3.1).
    SetDataPartitionFull {
        partition: PartitionId,
        full: bool,
    },
    /// Timeout reported on a data partition (§2.3.3).
    ReportPartitionTimeout {
        partition: PartitionId,
    },
    CreateVolume {
        name: String,
        meta_partition_count: u64,
        data_partition_count: u64,
    },
    /// Add data partitions to a volume (refill, §2.3.1).
    ExpandVolume {
        volume: VolumeId,
        count: u64,
    },
    /// Algorithm 1 on one partition.
    SplitMetaPartition {
        partition: PartitionId,
    },
    /// Periodic maintenance sweep: auto-split near-full meta partitions
    /// and refill volumes short on writable data partitions.
    Maintenance,
    /// One heartbeat round: `reporting` nodes answered this tick; every
    /// registered node absent from the list missed it. Replicated so the
    /// miss counters (and thus failure detection) survive master churn.
    RecordHeartbeats {
        reporting: Vec<NodeId>,
    },
    /// One repair-scheduler sweep (§2.3.3): replan up to
    /// `max_repairs_per_tick` degraded partitions, emitting
    /// decommission/add-replica task pairs.
    RepairTick,
    /// The driver confirms `node` finished joining `partition` (aligned +
    /// caught up); the partition leaves the pending-join set and data
    /// partitions return to read-write.
    ConfirmReplicaJoined {
        partition: PartitionId,
        node: NodeId,
    },
    /// One heartbeat-driven orphan sweep executed `fixups` compensation
    /// fixups fetched from the meta nodes' journals (DESIGN §12).
    /// Replicated so the running total survives master churn and shows
    /// up identically on every replica's report.
    RecordOrphanSweep {
        fixups: u64,
    },
}

impl Encode for MasterCommand {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            MasterCommand::RegisterNode { node, kind } => {
                enc.put_u8(0);
                node.encode(enc);
                kind.encode(enc);
            }
            MasterCommand::SetNodeAlive { node, alive } => {
                enc.put_u8(1);
                node.encode(enc);
                alive.encode(enc);
            }
            MasterCommand::UpdateNodeStats { node, utilization } => {
                enc.put_u8(2);
                node.encode(enc);
                enc.put_u64(*utilization);
            }
            MasterCommand::UpdateMetaPartitionStats {
                partition,
                item_count,
                max_inode,
                end,
                applied,
            } => {
                enc.put_u8(3);
                partition.encode(enc);
                enc.put_u64(*item_count);
                max_inode.encode(enc);
                end.encode(enc);
                enc.put_u64(*applied);
            }
            MasterCommand::SetDataPartitionFull { partition, full } => {
                enc.put_u8(4);
                partition.encode(enc);
                full.encode(enc);
            }
            MasterCommand::ReportPartitionTimeout { partition } => {
                enc.put_u8(5);
                partition.encode(enc);
            }
            MasterCommand::CreateVolume {
                name,
                meta_partition_count,
                data_partition_count,
            } => {
                enc.put_u8(6);
                name.encode(enc);
                enc.put_u64(*meta_partition_count);
                enc.put_u64(*data_partition_count);
            }
            MasterCommand::ExpandVolume { volume, count } => {
                enc.put_u8(7);
                volume.encode(enc);
                enc.put_u64(*count);
            }
            MasterCommand::SplitMetaPartition { partition } => {
                enc.put_u8(8);
                partition.encode(enc);
            }
            MasterCommand::Maintenance => enc.put_u8(9),
            MasterCommand::RecordHeartbeats { reporting } => {
                enc.put_u8(10);
                reporting.encode(enc);
            }
            MasterCommand::RepairTick => enc.put_u8(11),
            MasterCommand::ConfirmReplicaJoined { partition, node } => {
                enc.put_u8(12);
                partition.encode(enc);
                node.encode(enc);
            }
            MasterCommand::RecordOrphanSweep { fixups } => {
                enc.put_u8(13);
                enc.put_u64(*fixups);
            }
        }
    }
}

impl Decode for MasterCommand {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.get_u8()? {
            0 => MasterCommand::RegisterNode {
                node: NodeId::decode(dec)?,
                kind: NodeKind::decode(dec)?,
            },
            1 => MasterCommand::SetNodeAlive {
                node: NodeId::decode(dec)?,
                alive: bool::decode(dec)?,
            },
            2 => MasterCommand::UpdateNodeStats {
                node: NodeId::decode(dec)?,
                utilization: dec.get_u64()?,
            },
            3 => MasterCommand::UpdateMetaPartitionStats {
                partition: PartitionId::decode(dec)?,
                item_count: dec.get_u64()?,
                max_inode: InodeId::decode(dec)?,
                end: InodeId::decode(dec)?,
                applied: dec.get_u64()?,
            },
            4 => MasterCommand::SetDataPartitionFull {
                partition: PartitionId::decode(dec)?,
                full: bool::decode(dec)?,
            },
            5 => MasterCommand::ReportPartitionTimeout {
                partition: PartitionId::decode(dec)?,
            },
            6 => MasterCommand::CreateVolume {
                name: String::decode(dec)?,
                meta_partition_count: dec.get_u64()?,
                data_partition_count: dec.get_u64()?,
            },
            7 => MasterCommand::ExpandVolume {
                volume: VolumeId::decode(dec)?,
                count: dec.get_u64()?,
            },
            8 => MasterCommand::SplitMetaPartition {
                partition: PartitionId::decode(dec)?,
            },
            9 => MasterCommand::Maintenance,
            10 => MasterCommand::RecordHeartbeats {
                reporting: Vec::<NodeId>::decode(dec)?,
            },
            11 => MasterCommand::RepairTick,
            12 => MasterCommand::ConfirmReplicaJoined {
                partition: PartitionId::decode(dec)?,
                node: NodeId::decode(dec)?,
            },
            13 => MasterCommand::RecordOrphanSweep {
                fixups: dec.get_u64()?,
            },
            b => return Err(CfsError::Corrupt(format!("invalid master command tag {b}"))),
        })
    }
}

/// What a command application produced: new cluster tasks plus an
/// optional created-volume id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    pub tasks: Vec<Task>,
    pub volume: Option<VolumeId>,
}

/// The deterministic resource-manager state.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterState {
    config: ClusterConfig,
    nodes: BTreeMap<NodeId, NodeStatus>,
    volumes: BTreeMap<VolumeId, VolumeMeta>,
    volume_names: BTreeMap<String, VolumeId>,
    meta_partitions: BTreeMap<PartitionId, MetaPartitionMeta>,
    data_partitions: BTreeMap<PartitionId, DataPartitionMeta>,
    next_partition: u64,
    next_volume: u64,
    /// Heartbeat rounds recorded so far (replicated tick counter).
    heartbeat_round: u64,
    /// Partitions with an in-flight replacement join: partition → the
    /// joining node. The repair scheduler skips these until the driver
    /// confirms the join, so one degraded partition is repaired once.
    pending_joins: BTreeMap<PartitionId, NodeId>,
    /// Running total of compensation fixups executed by the heartbeat
    /// orphan sweep (DESIGN §12), replicated across master replicas.
    orphan_fixups: u64,
}

impl MasterState {
    /// Fresh state. Partition ids start at 1 and are shared between meta
    /// and data partitions (they double as Raft group ids, which must be
    /// cluster-unique).
    pub fn new(config: ClusterConfig) -> Self {
        MasterState {
            config,
            nodes: BTreeMap::new(),
            volumes: BTreeMap::new(),
            volume_names: BTreeMap::new(),
            meta_partitions: BTreeMap::new(),
            data_partitions: BTreeMap::new(),
            next_partition: 1,
            next_volume: 1,
            heartbeat_round: 0,
            pending_joins: BTreeMap::new(),
            orphan_fixups: 0,
        }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn node(&self, id: NodeId) -> Option<&NodeStatus> {
        self.nodes.get(&id)
    }

    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<&NodeStatus> {
        self.nodes.values().filter(|n| n.kind == kind).collect()
    }

    pub fn volume_by_name(&self, name: &str) -> Option<&VolumeMeta> {
        self.volume_names
            .get(name)
            .and_then(|id| self.volumes.get(id))
    }

    pub fn volume(&self, id: VolumeId) -> Option<&VolumeMeta> {
        self.volumes.get(&id)
    }

    pub fn meta_partition(&self, id: PartitionId) -> Option<&MetaPartitionMeta> {
        self.meta_partitions.get(&id)
    }

    pub fn data_partition(&self, id: PartitionId) -> Option<&DataPartitionMeta> {
        self.data_partitions.get(&id)
    }

    /// Heartbeat rounds recorded so far.
    pub fn heartbeat_round(&self) -> u64 {
        self.heartbeat_round
    }

    /// Partitions with an in-flight replacement join (partition → joiner).
    pub fn pending_joins(&self) -> &BTreeMap<PartitionId, NodeId> {
        &self.pending_joins
    }

    /// Compensation fixups executed by the orphan sweep so far.
    pub fn orphan_fixups(&self) -> u64 {
        self.orphan_fixups
    }

    /// Do all of `members` live in one Raft set (§2.5.1)? Used to count
    /// in-set placements vs cross-set fallbacks.
    pub fn members_in_one_set(&self, members: &[NodeId]) -> bool {
        let mut sets = members
            .iter()
            .filter_map(|m| self.nodes.get(m))
            .map(|n| n.raft_set);
        let Some(first) = sets.next() else {
            return false;
        };
        sets.all(|s| s == first)
    }

    /// Meta partitions of a volume, id-ordered.
    pub fn volume_meta_partitions(&self, vol: VolumeId) -> Vec<&MetaPartitionMeta> {
        self.volumes
            .get(&vol)
            .map(|v| {
                v.meta_partitions
                    .iter()
                    .filter_map(|p| self.meta_partitions.get(p))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Data partitions of a volume, id-ordered.
    pub fn volume_data_partitions(&self, vol: VolumeId) -> Vec<&DataPartitionMeta> {
        self.volumes
            .get(&vol)
            .map(|v| {
                v.data_partitions
                    .iter()
                    .filter_map(|p| self.data_partitions.get(p))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn loads(&self, kind: NodeKind) -> Vec<NodeLoad> {
        self.nodes
            .values()
            .filter(|n| n.kind == kind)
            .map(|n| NodeLoad {
                node: n.node,
                utilization: n.utilization,
                raft_set: n.raft_set,
                // Suspects are excluded from new placements before they
                // are declared dead (§2.3.3).
                alive: n.alive && !n.is_suspect(&self.config),
            })
            .collect()
    }

    fn alloc_partition_id(&mut self) -> PartitionId {
        let id = PartitionId(self.next_partition);
        self.next_partition += 1;
        id
    }

    fn place(&self, kind: NodeKind) -> Result<Vec<NodeId>> {
        // Salt ties with the allocation counter so placements rotate.
        choose_replicas(
            &self.loads(kind),
            self.config.replica_count,
            self.next_partition,
        )
        .ok_or_else(|| {
            CfsError::Unavailable(format!(
                "not enough live {kind:?} nodes for {} replicas",
                self.config.replica_count
            ))
        })
    }

    fn new_meta_partition(
        &mut self,
        volume: VolumeId,
        start: InodeId,
        end: InodeId,
    ) -> Result<(PartitionId, Task)> {
        let members = self.place(NodeKind::Meta)?;
        let pid = self.alloc_partition_id();
        self.meta_partitions.insert(
            pid,
            MetaPartitionMeta {
                partition: pid,
                volume,
                start,
                end,
                members: members.clone(),
                item_count: 0,
                max_inode: InodeId(start.raw().saturating_sub(1)),
                applied: 0,
                write_load: 0,
                // Treat the plan as reported until the first heartbeat
                // arrives, so a freshly created partition is not
                // immediately "lost" to reconciliation.
                reported_end: end,
                last_reported_round: self.heartbeat_round,
            },
        );
        self.volumes
            .get_mut(&volume)
            .expect("volume exists")
            .meta_partitions
            .push(pid);
        Ok((
            pid,
            Task::CreateMetaPartition {
                partition: pid,
                volume,
                start,
                end,
                members,
            },
        ))
    }

    fn new_data_partition(&mut self, volume: VolumeId) -> Result<(PartitionId, Task)> {
        let members = self.place(NodeKind::Data)?;
        let pid = self.alloc_partition_id();
        self.data_partitions.insert(
            pid,
            DataPartitionMeta {
                partition: pid,
                volume,
                members: members.clone(),
                read_only: false,
                full: false,
            },
        );
        self.volumes
            .get_mut(&volume)
            .expect("volume exists")
            .data_partitions
            .push(pid);
        Ok((
            pid,
            Task::CreateDataPartition {
                partition: pid,
                volume,
                members,
            },
        ))
    }

    /// Algorithm 1. Only the newest partition of a volume (the one with
    /// the unbounded range) is split; older ones are already cut.
    fn split_meta_partition(&mut self, pid: PartitionId) -> Result<ApplyOutcome> {
        let (volume, max_inode, members) = {
            let mp = self
                .meta_partitions
                .get(&pid)
                .ok_or_else(|| CfsError::NotFound(format!("{pid}")))?;
            (mp.volume, mp.max_inode, mp.members.clone())
        };
        let vol = self
            .volumes
            .get(&volume)
            .ok_or_else(|| CfsError::NotFound(format!("{volume}")))?;
        // Line 6: if metaPartition.ID < maxPartitionID then return.
        let max_partition_id = vol
            .meta_partitions
            .iter()
            .copied()
            .max()
            .expect("volume has meta partitions");
        if pid < max_partition_id {
            return Ok(ApplyOutcome::default());
        }
        // Line 7: only an unbounded partition needs cutting.
        let mp = self.meta_partitions.get_mut(&pid).expect("checked above");
        if mp.end != InodeId::MAX {
            return Ok(ApplyOutcome::default());
        }
        // Line 8: end ← maxInodeID + Δ.
        let end = InodeId(max_inode.raw() + self.config.split_delta);
        mp.end = end;
        let mut tasks = vec![Task::UpdateMetaPartitionEnd {
            partition: pid,
            end,
            members,
        }];
        // Create the successor partition [end+1, ∞).
        let (_, task) = self.new_meta_partition(volume, end.next(), InodeId::MAX)?;
        tasks.push(task);
        Ok(ApplyOutcome {
            tasks,
            volume: Some(volume),
        })
    }

    /// Pick a replacement host for a degraded partition: the least-loaded
    /// live non-suspect node of `kind` that is not already a member.
    fn place_replacement(&self, kind: NodeKind, members: &[NodeId]) -> Option<NodeId> {
        let mut loads = self.loads(kind);
        for l in &mut loads {
            if members.contains(&l.node) {
                l.alive = false; // never re-pick an existing member
            }
        }
        choose_replicas(&loads, 1, self.next_partition).map(|r| r[0])
    }

    /// One reconciliation sweep of the repair scheduler (§2.3.3): for up
    /// to `max_repairs_per_tick` partitions with a dead member, pick a
    /// replacement with the placement policy, rewrite the membership
    /// (survivors keep their chain order; a dead head promotes the next
    /// survivor), and emit a decommission + add-replica task pair. The
    /// partition is parked in `pending_joins` (data partitions also go
    /// read-only in the routing table) until the driver confirms the
    /// replacement is aligned and caught up.
    fn repair_tick(&mut self) -> Result<ApplyOutcome> {
        let dead: Vec<NodeId> = self
            .nodes
            .values()
            .filter(|n| n.is_dead(&self.config))
            .map(|n| n.node)
            .collect();
        let mut outcome = ApplyOutcome::default();
        if dead.is_empty() {
            return Ok(outcome);
        }
        let mut budget = self.config.max_repairs_per_tick;

        let meta_pids: Vec<PartitionId> = self.meta_partitions.keys().copied().collect();
        for pid in meta_pids {
            if budget == 0 {
                break;
            }
            if self.pending_joins.contains_key(&pid) {
                continue;
            }
            let (volume, start, end, members) = {
                let mp = self.meta_partitions.get(&pid).expect("listed above");
                (mp.volume, mp.start, mp.end, mp.members.clone())
            };
            let Some(&dead_member) = members.iter().find(|m| dead.contains(m)) else {
                continue;
            };
            let Some(new_node) = self.place_replacement(NodeKind::Meta, &members) else {
                continue; // no spare node yet; retried next sweep
            };
            let mut new_members: Vec<NodeId> = members
                .iter()
                .copied()
                .filter(|&m| m != dead_member)
                .collect();
            new_members.push(new_node);
            self.meta_partitions
                .get_mut(&pid)
                .expect("listed above")
                .members = new_members.clone();
            self.pending_joins.insert(pid, new_node);
            outcome.tasks.push(Task::DecommissionReplica {
                partition: pid,
                kind: NodeKind::Meta,
                node: dead_member,
                members: new_members.clone(),
            });
            outcome.tasks.push(Task::AddMetaReplica {
                partition: pid,
                volume,
                start,
                end,
                members: new_members,
                new_node,
            });
            budget -= 1;
        }

        let data_pids: Vec<PartitionId> = self.data_partitions.keys().copied().collect();
        for pid in data_pids {
            if budget == 0 {
                break;
            }
            if self.pending_joins.contains_key(&pid) {
                continue;
            }
            let (volume, members) = {
                let dp = self.data_partitions.get(&pid).expect("listed above");
                (dp.volume, dp.members.clone())
            };
            let Some(&dead_member) = members.iter().find(|m| dead.contains(m)) else {
                continue;
            };
            let Some(new_node) = self.place_replacement(NodeKind::Data, &members) else {
                continue;
            };
            let mut new_members: Vec<NodeId> = members
                .iter()
                .copied()
                .filter(|&m| m != dead_member)
                .collect();
            new_members.push(new_node);
            {
                let dp = self.data_partitions.get_mut(&pid).expect("listed above");
                dp.members = new_members.clone();
                // Routed read-only while the join is in flight: clients
                // place new extents elsewhere, but the survivors stay
                // replica-writable so §2.2.5 alignment can re-ship bytes.
                dp.read_only = true;
            }
            self.pending_joins.insert(pid, new_node);
            outcome.tasks.push(Task::DecommissionReplica {
                partition: pid,
                kind: NodeKind::Data,
                node: dead_member,
                members: new_members.clone(),
            });
            outcome.tasks.push(Task::AddDataReplica {
                partition: pid,
                volume,
                members: new_members,
                new_node,
            });
            budget -= 1;
        }
        Ok(outcome)
    }

    /// Apply one command. Deterministic; errors are deterministic too.
    pub fn apply(&mut self, cmd: &MasterCommand) -> Result<ApplyOutcome> {
        match cmd {
            MasterCommand::RegisterNode { node, kind } => {
                if self.nodes.contains_key(node) {
                    return Ok(ApplyOutcome::default()); // idempotent re-register
                }
                let set_size = self.config.raft_set_size.max(1) as u32;
                let peers = self.nodes_of_kind(*kind).len() as u32;
                let raft_set = peers / set_size;
                self.nodes.insert(
                    *node,
                    NodeStatus {
                        node: *node,
                        kind: *kind,
                        utilization: 0,
                        raft_set,
                        alive: true,
                        missed_heartbeats: 0,
                    },
                );
                Ok(ApplyOutcome::default())
            }
            MasterCommand::SetNodeAlive { node, alive } => {
                let n = self
                    .nodes
                    .get_mut(node)
                    .ok_or_else(|| CfsError::NotFound(format!("{node}")))?;
                n.alive = *alive;
                Ok(ApplyOutcome::default())
            }
            MasterCommand::UpdateNodeStats { node, utilization } => {
                if let Some(n) = self.nodes.get_mut(node) {
                    n.utilization = *utilization;
                }
                Ok(ApplyOutcome::default())
            }
            MasterCommand::UpdateMetaPartitionStats {
                partition,
                item_count,
                max_inode,
                end,
                applied,
            } => {
                let round = self.heartbeat_round;
                if let Some(p) = self.meta_partitions.get_mut(partition) {
                    p.item_count = *item_count;
                    p.max_inode = (*max_inode).max(p.max_inode);
                    p.write_load = applied.saturating_sub(p.applied);
                    p.applied = *applied;
                    p.reported_end = *end;
                    p.last_reported_round = round;
                }
                Ok(ApplyOutcome::default())
            }
            MasterCommand::SetDataPartitionFull { partition, full } => {
                if let Some(p) = self.data_partitions.get_mut(partition) {
                    p.full = *full;
                }
                Ok(ApplyOutcome::default())
            }
            MasterCommand::ReportPartitionTimeout { partition } => {
                // §2.3.3: the remaining replicas go read-only.
                let p = self
                    .data_partitions
                    .get_mut(partition)
                    .ok_or_else(|| CfsError::NotFound(format!("{partition}")))?;
                p.read_only = true;
                Ok(ApplyOutcome {
                    tasks: vec![Task::SetDataPartitionReadOnly {
                        partition: *partition,
                        members: p.members.clone(),
                        read_only: true,
                    }],
                    volume: None,
                })
            }
            MasterCommand::CreateVolume {
                name,
                meta_partition_count,
                data_partition_count,
            } => {
                if self.volume_names.contains_key(name) {
                    return Err(CfsError::Exists(format!("volume {name}")));
                }
                let vid = VolumeId(self.next_volume);
                self.next_volume += 1;
                self.volumes.insert(
                    vid,
                    VolumeMeta {
                        volume: vid,
                        name: name.clone(),
                        meta_partitions: Vec::new(),
                        data_partitions: Vec::new(),
                    },
                );
                self.volume_names.insert(name.clone(), vid);
                let mut tasks = Vec::new();
                // First meta partition owns [1, ∞); later ones come from
                // splits. Additional requested meta partitions share the
                // keyspace by successive pre-splits of the id range? No —
                // the paper allocates several partitions up front; we give
                // each a disjoint slice of the id space, with the last one
                // unbounded.
                let n = (*meta_partition_count).max(1);
                let slice = 1u64 << 32; // generous per-partition id slice
                for i in 0..n {
                    let start = InodeId(1 + i * slice);
                    let end = if i == n - 1 {
                        InodeId::MAX
                    } else {
                        InodeId((i + 1) * slice)
                    };
                    let (_, t) = self.new_meta_partition(vid, start, end)?;
                    tasks.push(t);
                }
                for _ in 0..*data_partition_count {
                    let (_, t) = self.new_data_partition(vid)?;
                    tasks.push(t);
                }
                Ok(ApplyOutcome {
                    tasks,
                    volume: Some(vid),
                })
            }
            MasterCommand::ExpandVolume { volume, count } => {
                if !self.volumes.contains_key(volume) {
                    return Err(CfsError::NotFound(format!("{volume}")));
                }
                let mut tasks = Vec::new();
                for _ in 0..*count {
                    let (_, t) = self.new_data_partition(*volume)?;
                    tasks.push(t);
                }
                Ok(ApplyOutcome {
                    tasks,
                    volume: Some(*volume),
                })
            }
            MasterCommand::SplitMetaPartition { partition } => {
                self.split_meta_partition(*partition)
            }
            MasterCommand::Maintenance => {
                let mut outcome = ApplyOutcome::default();
                // Split reconciliation first (so a split planned later in
                // this same sweep is not immediately re-emitted): a cut
                // the replicas have not acknowledged yet is re-sent, and
                // a partition that never reported in (its create task was
                // lost with a crashed master) is re-created. Both tasks
                // are idempotent at the meta nodes.
                for p in self.meta_partitions.values() {
                    if p.reported_end != p.end {
                        outcome.tasks.push(Task::UpdateMetaPartitionEnd {
                            partition: p.partition,
                            end: p.end,
                            members: p.members.clone(),
                        });
                    }
                    if self.heartbeat_round
                        >= p.last_reported_round.saturating_add(UNREPORTED_ROUNDS)
                    {
                        outcome.tasks.push(Task::CreateMetaPartition {
                            partition: p.partition,
                            volume: p.volume,
                            start: p.start,
                            end: p.end,
                            members: p.members.clone(),
                        });
                    }
                }
                // Auto-split meta partitions near their item limit or
                // running hot (§2.3.2: size *or* write-rate trigger).
                let near_full: Vec<PartitionId> = self
                    .meta_partitions
                    .values()
                    .filter(|p| {
                        p.end == InodeId::MAX
                            && (p.item_count >= self.config.meta_partition_item_limit
                                || p.write_load >= self.config.meta_partition_write_load_limit)
                    })
                    .map(|p| p.partition)
                    .collect();
                for pid in near_full {
                    let o = self.split_meta_partition(pid)?;
                    outcome.tasks.extend(o.tasks);
                }
                // Refill volumes short on writable data partitions.
                let vols: Vec<VolumeId> = self.volumes.keys().copied().collect();
                for vid in vols {
                    let parts = self.volume_data_partitions(vid);
                    if parts.is_empty() {
                        continue;
                    }
                    let writable = parts.iter().filter(|p| !p.full && !p.read_only).count();
                    let ratio = writable as f64 / parts.len() as f64;
                    if ratio < self.config.volume_refill_watermark {
                        for _ in 0..self.config.partitions_per_allocation {
                            let (_, t) = self.new_data_partition(vid)?;
                            outcome.tasks.push(t);
                        }
                    }
                }
                Ok(outcome)
            }
            MasterCommand::RecordHeartbeats { reporting } => {
                self.heartbeat_round += 1;
                let dead_after = self.config.dead_after_missed;
                for n in self.nodes.values_mut() {
                    if reporting.contains(&n.node) {
                        n.missed_heartbeats = 0;
                        n.alive = true;
                    } else {
                        n.missed_heartbeats = n.missed_heartbeats.saturating_add(1);
                        if n.missed_heartbeats >= dead_after {
                            n.alive = false;
                        }
                    }
                }
                Ok(ApplyOutcome::default())
            }
            MasterCommand::RepairTick => self.repair_tick(),
            MasterCommand::ConfirmReplicaJoined { partition, node } => {
                // Idempotent: a stale confirm (wrong node, or already
                // confirmed) is a no-op so task retries are safe.
                if self.pending_joins.get(partition) == Some(node) {
                    self.pending_joins.remove(partition);
                    if let Some(dp) = self.data_partitions.get_mut(partition) {
                        dp.read_only = false;
                    }
                }
                Ok(ApplyOutcome::default())
            }
            MasterCommand::RecordOrphanSweep { fixups } => {
                self.orphan_fixups += fixups;
                Ok(ApplyOutcome::default())
            }
        }
    }

    /// Serialize the whole state (for kv persistence and Raft snapshots).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u64(self.next_partition);
        enc.put_u64(self.next_volume);
        let nodes: Vec<NodeStatus> = self.nodes.values().cloned().collect();
        enc.put_u32(nodes.len() as u32);
        for n in &nodes {
            n.encode(&mut enc);
        }
        let vols: Vec<VolumeMeta> = self.volumes.values().cloned().collect();
        enc.put_u32(vols.len() as u32);
        for v in &vols {
            v.encode(&mut enc);
        }
        let mps: Vec<MetaPartitionMeta> = self.meta_partitions.values().cloned().collect();
        enc.put_u32(mps.len() as u32);
        for p in &mps {
            p.encode(&mut enc);
        }
        let dps: Vec<DataPartitionMeta> = self.data_partitions.values().cloned().collect();
        enc.put_u32(dps.len() as u32);
        for p in &dps {
            p.encode(&mut enc);
        }
        enc.put_u64(self.heartbeat_round);
        enc.put_u32(self.pending_joins.len() as u32);
        for (pid, node) in &self.pending_joins {
            pid.encode(&mut enc);
            node.encode(&mut enc);
        }
        enc.put_u64(self.orphan_fixups);
        enc.finish()
    }

    /// Restore from [`MasterState::snapshot_bytes`].
    pub fn from_snapshot(config: ClusterConfig, data: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(data);
        let mut st = MasterState::new(config);
        st.next_partition = dec.get_u64()?;
        st.next_volume = dec.get_u64()?;
        for _ in 0..dec.get_u32()? {
            let n = NodeStatus::decode(&mut dec)?;
            st.nodes.insert(n.node, n);
        }
        for _ in 0..dec.get_u32()? {
            let v = VolumeMeta::decode(&mut dec)?;
            st.volume_names.insert(v.name.clone(), v.volume);
            st.volumes.insert(v.volume, v);
        }
        for _ in 0..dec.get_u32()? {
            let p = MetaPartitionMeta::decode(&mut dec)?;
            st.meta_partitions.insert(p.partition, p);
        }
        for _ in 0..dec.get_u32()? {
            let p = DataPartitionMeta::decode(&mut dec)?;
            st.data_partitions.insert(p.partition, p);
        }
        st.heartbeat_round = dec.get_u64()?;
        for _ in 0..dec.get_u32()? {
            let pid = PartitionId::decode(&mut dec)?;
            let node = NodeId::decode(&mut dec)?;
            st.pending_joins.insert(pid, node);
        }
        st.orphan_fixups = dec.get_u64()?;
        if !dec.is_exhausted() {
            return Err(CfsError::Corrupt("master snapshot trailing bytes".into()));
        }
        Ok(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with_nodes(meta: u64, data: u64) -> MasterState {
        let mut st = MasterState::new(ClusterConfig::default());
        for i in 1..=meta {
            st.apply(&MasterCommand::RegisterNode {
                node: NodeId(i),
                kind: NodeKind::Meta,
            })
            .unwrap();
        }
        for i in 1..=data {
            st.apply(&MasterCommand::RegisterNode {
                node: NodeId(100 + i),
                kind: NodeKind::Data,
            })
            .unwrap();
        }
        st
    }

    #[test]
    fn register_assigns_raft_sets() {
        let st = state_with_nodes(12, 0);
        // raft_set_size = 5: nodes 1–5 → set 0, 6–10 → set 1, 11–12 → set 2.
        assert_eq!(st.node(NodeId(1)).unwrap().raft_set, 0);
        assert_eq!(st.node(NodeId(5)).unwrap().raft_set, 0);
        assert_eq!(st.node(NodeId(6)).unwrap().raft_set, 1);
        assert_eq!(st.node(NodeId(11)).unwrap().raft_set, 2);
    }

    #[test]
    fn create_volume_emits_tasks_for_all_partitions() {
        let mut st = state_with_nodes(4, 4);
        let out = st
            .apply(&MasterCommand::CreateVolume {
                name: "vol1".into(),
                meta_partition_count: 2,
                data_partition_count: 3,
            })
            .unwrap();
        assert_eq!(out.tasks.len(), 5);
        let vid = out.volume.unwrap();
        let v = st.volume(vid).unwrap();
        assert_eq!(v.meta_partitions.len(), 2);
        assert_eq!(v.data_partitions.len(), 3);
        // Last meta partition is unbounded; earlier ones are cut.
        let mps = st.volume_meta_partitions(vid);
        assert_eq!(mps[0].start, InodeId(1));
        assert_ne!(mps[0].end, InodeId::MAX);
        assert_eq!(mps[1].end, InodeId::MAX);
        assert_eq!(mps[1].start, mps[0].end.next());
        // Duplicate name rejected.
        assert!(st
            .apply(&MasterCommand::CreateVolume {
                name: "vol1".into(),
                meta_partition_count: 1,
                data_partition_count: 1,
            })
            .is_err());
    }

    #[test]
    fn placement_prefers_low_utilization() {
        let mut st = state_with_nodes(5, 5);
        // Load up nodes 1–2 heavily.
        st.apply(&MasterCommand::UpdateNodeStats {
            node: NodeId(1),
            utilization: 1_000,
        })
        .unwrap();
        st.apply(&MasterCommand::UpdateNodeStats {
            node: NodeId(2),
            utilization: 900,
        })
        .unwrap();
        let out = st
            .apply(&MasterCommand::CreateVolume {
                name: "v".into(),
                meta_partition_count: 1,
                data_partition_count: 0,
            })
            .unwrap();
        match &out.tasks[0] {
            Task::CreateMetaPartition { members, .. } => {
                assert!(!members.contains(&NodeId(1)));
                assert!(!members.contains(&NodeId(2)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn split_follows_algorithm_1() {
        let mut st = state_with_nodes(4, 0);
        let out = st
            .apply(&MasterCommand::CreateVolume {
                name: "v".into(),
                meta_partition_count: 1,
                data_partition_count: 0,
            })
            .unwrap();
        let vid = out.volume.unwrap();
        let pid = st.volume(vid).unwrap().meta_partitions[0];

        // Report usage: maxInodeID = 500.
        st.apply(&MasterCommand::UpdateMetaPartitionStats {
            partition: pid,
            item_count: 800,
            max_inode: InodeId(500),
            end: InodeId::MAX,
            applied: 800,
        })
        .unwrap();

        let out = st
            .apply(&MasterCommand::SplitMetaPartition { partition: pid })
            .unwrap();
        assert_eq!(out.tasks.len(), 2);
        let delta = st.config().split_delta;
        match &out.tasks[0] {
            Task::UpdateMetaPartitionEnd { end, .. } => {
                assert_eq!(*end, InodeId(500 + delta), "end = maxInodeID + Δ");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &out.tasks[1] {
            Task::CreateMetaPartition { start, end, .. } => {
                assert_eq!(*start, InodeId(501 + delta));
                assert_eq!(*end, InodeId::MAX);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Original is now bounded; splitting it again is a no-op (line 6).
        let out = st
            .apply(&MasterCommand::SplitMetaPartition { partition: pid })
            .unwrap();
        assert!(out.tasks.is_empty());
    }

    #[test]
    fn maintenance_auto_splits_and_refills() {
        let mut st = state_with_nodes(4, 4);
        let out = st
            .apply(&MasterCommand::CreateVolume {
                name: "v".into(),
                meta_partition_count: 1,
                data_partition_count: 2,
            })
            .unwrap();
        let vid = out.volume.unwrap();
        let mpid = st.volume(vid).unwrap().meta_partitions[0];
        let dpids = st.volume(vid).unwrap().data_partitions.clone();

        // Nothing to do yet.
        assert!(st
            .apply(&MasterCommand::Maintenance)
            .unwrap()
            .tasks
            .is_empty());

        // Meta partition hits the item limit → auto-split.
        st.apply(&MasterCommand::UpdateMetaPartitionStats {
            partition: mpid,
            item_count: st.config().meta_partition_item_limit,
            max_inode: InodeId(42),
            end: InodeId::MAX,
            applied: 0,
        })
        .unwrap();
        // All data partitions full → refill.
        for d in &dpids {
            st.apply(&MasterCommand::SetDataPartitionFull {
                partition: *d,
                full: true,
            })
            .unwrap();
        }
        let out = st.apply(&MasterCommand::Maintenance).unwrap();
        let splits = out
            .tasks
            .iter()
            .filter(|t| matches!(t, Task::UpdateMetaPartitionEnd { .. }))
            .count();
        let new_data = out
            .tasks
            .iter()
            .filter(|t| matches!(t, Task::CreateDataPartition { .. }))
            .count();
        assert_eq!(splits, 1);
        assert_eq!(new_data, st.config().partitions_per_allocation);
        assert_eq!(
            st.volume(vid).unwrap().data_partitions.len(),
            2 + st.config().partitions_per_allocation
        );
    }

    #[test]
    fn write_load_triggers_maintenance_split() {
        let mut st = MasterState::new(ClusterConfig {
            meta_partition_write_load_limit: 50,
            ..ClusterConfig::default()
        });
        for i in 1..=4u64 {
            st.apply(&MasterCommand::RegisterNode {
                node: NodeId(i),
                kind: NodeKind::Meta,
            })
            .unwrap();
        }
        let out = st
            .apply(&MasterCommand::CreateVolume {
                name: "v".into(),
                meta_partition_count: 1,
                data_partition_count: 0,
            })
            .unwrap();
        let pid = st.volume(out.volume.unwrap()).unwrap().meta_partitions[0];

        // Far below the item limit but applying entries fast: the delta
        // between successive reports crosses the write-load limit.
        st.apply(&MasterCommand::UpdateMetaPartitionStats {
            partition: pid,
            item_count: 10,
            max_inode: InodeId(10),
            end: InodeId::MAX,
            applied: 30,
        })
        .unwrap();
        assert_eq!(st.meta_partition(pid).unwrap().write_load, 30);
        assert!(st
            .apply(&MasterCommand::Maintenance)
            .unwrap()
            .tasks
            .is_empty());
        st.apply(&MasterCommand::UpdateMetaPartitionStats {
            partition: pid,
            item_count: 12,
            max_inode: InodeId(12),
            end: InodeId::MAX,
            applied: 100,
        })
        .unwrap();
        assert_eq!(st.meta_partition(pid).unwrap().write_load, 70);
        let out = st.apply(&MasterCommand::Maintenance).unwrap();
        assert!(out
            .tasks
            .iter()
            .any(|t| matches!(t, Task::UpdateMetaPartitionEnd { .. })));
        assert!(out
            .tasks
            .iter()
            .any(|t| matches!(t, Task::CreateMetaPartition { .. })));
    }

    #[test]
    fn maintenance_reemits_unacknowledged_cut_and_lost_create() {
        let mut st = state_with_nodes(4, 0);
        let out = st
            .apply(&MasterCommand::CreateVolume {
                name: "v".into(),
                meta_partition_count: 1,
                data_partition_count: 0,
            })
            .unwrap();
        let vid = out.volume.unwrap();
        let pid = st.volume(vid).unwrap().meta_partitions[0];
        let all: Vec<NodeId> = st.nodes.keys().copied().collect();

        st.apply(&MasterCommand::UpdateMetaPartitionStats {
            partition: pid,
            item_count: 5,
            max_inode: InodeId(5),
            end: InodeId::MAX,
            applied: 5,
        })
        .unwrap();
        st.apply(&MasterCommand::SplitMetaPartition { partition: pid })
            .unwrap();
        let cut = st.meta_partition(pid).unwrap().end;
        let succ = st.volume(vid).unwrap().meta_partitions[1];
        assert_ne!(cut, InodeId::MAX);

        // The replicas never saw the cut (reported_end still MAX): every
        // sweep re-emits the UpdateMetaPartitionEnd task until they do.
        let out = st.apply(&MasterCommand::Maintenance).unwrap();
        assert!(out.tasks.iter().any(|t| matches!(
            t,
            Task::UpdateMetaPartitionEnd { partition, end, .. }
                if *partition == pid && *end == cut
        )));

        // Acknowledge the cut: reconciliation goes quiet for it.
        st.apply(&MasterCommand::UpdateMetaPartitionStats {
            partition: pid,
            item_count: 5,
            max_inode: InodeId(5),
            end: cut,
            applied: 6,
        })
        .unwrap();
        let out = st.apply(&MasterCommand::Maintenance).unwrap();
        assert!(!out
            .tasks
            .iter()
            .any(|t| matches!(t, Task::UpdateMetaPartitionEnd { .. })));

        // The successor's create task was lost (master crash before task
        // delivery): it never reports, and after UNREPORTED_ROUNDS
        // heartbeat rounds the sweep re-creates it.
        for _ in 0..UNREPORTED_ROUNDS {
            st.apply(&MasterCommand::RecordHeartbeats {
                reporting: all.clone(),
            })
            .unwrap();
            // The predecessor keeps reporting; the successor stays silent.
            st.apply(&MasterCommand::UpdateMetaPartitionStats {
                partition: pid,
                item_count: 5,
                max_inode: InodeId(5),
                end: cut,
                applied: 6,
            })
            .unwrap();
        }
        let out = st.apply(&MasterCommand::Maintenance).unwrap();
        let recreates: Vec<_> = out
            .tasks
            .iter()
            .filter(|t| matches!(t, Task::CreateMetaPartition { .. }))
            .collect();
        assert_eq!(recreates.len(), 1);
        match recreates[0] {
            Task::CreateMetaPartition {
                partition,
                start,
                end,
                ..
            } => {
                assert_eq!(*partition, succ);
                assert_eq!(*start, cut.next());
                assert_eq!(*end, InodeId::MAX);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn members_in_one_set_classifies_placements() {
        let st = state_with_nodes(12, 0);
        // raft_set_size = 5: 1–5 → set 0, 6–10 → set 1.
        assert!(st.members_in_one_set(&[NodeId(1), NodeId(2), NodeId(5)]));
        assert!(!st.members_in_one_set(&[NodeId(1), NodeId(6)]));
        assert!(!st.members_in_one_set(&[]));
    }

    #[test]
    fn timeout_marks_read_only_with_task() {
        let mut st = state_with_nodes(0, 4);
        let out = st.apply(&MasterCommand::CreateVolume {
            name: "v".into(),
            meta_partition_count: 1,
            data_partition_count: 1,
        });
        // No meta nodes: volume creation fails deterministically.
        assert!(out.is_err());

        let mut st = state_with_nodes(3, 4);
        let out = st
            .apply(&MasterCommand::CreateVolume {
                name: "v".into(),
                meta_partition_count: 1,
                data_partition_count: 1,
            })
            .unwrap();
        let dpid = st.volume(out.volume.unwrap()).unwrap().data_partitions[0];
        let out = st
            .apply(&MasterCommand::ReportPartitionTimeout { partition: dpid })
            .unwrap();
        assert!(matches!(
            out.tasks[0],
            Task::SetDataPartitionReadOnly {
                read_only: true,
                ..
            }
        ));
        assert!(st.data_partition(dpid).unwrap().read_only);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut st = state_with_nodes(5, 5);
        st.apply(&MasterCommand::CreateVolume {
            name: "v1".into(),
            meta_partition_count: 2,
            data_partition_count: 3,
        })
        .unwrap();
        st.apply(&MasterCommand::UpdateNodeStats {
            node: NodeId(3),
            utilization: 777,
        })
        .unwrap();
        // Exercise the self-healing fields too: a heartbeat round with a
        // miss, and an in-flight join.
        st.apply(&MasterCommand::RecordHeartbeats {
            reporting: st
                .nodes_of_kind(NodeKind::Meta)
                .iter()
                .map(|n| n.node)
                .collect(),
        })
        .unwrap();
        st.pending_joins.insert(PartitionId(2), NodeId(105));
        st.apply(&MasterCommand::RecordOrphanSweep { fixups: 7 })
            .unwrap();
        let bytes = st.snapshot_bytes();
        let back = MasterState::from_snapshot(ClusterConfig::default(), &bytes).unwrap();
        assert_eq!(back, st);
    }

    #[test]
    fn orphan_sweeps_accumulate() {
        let mut st = MasterState::new(ClusterConfig::default());
        assert_eq!(st.orphan_fixups(), 0);
        st.apply(&MasterCommand::RecordOrphanSweep { fixups: 3 })
            .unwrap();
        st.apply(&MasterCommand::RecordOrphanSweep { fixups: 0 })
            .unwrap();
        st.apply(&MasterCommand::RecordOrphanSweep { fixups: 4 })
            .unwrap();
        assert_eq!(st.orphan_fixups(), 7);
    }

    #[test]
    fn commands_roundtrip_codec() {
        use cfs_types::codec::roundtrip;
        let cmds = vec![
            MasterCommand::RegisterNode {
                node: NodeId(1),
                kind: NodeKind::Data,
            },
            MasterCommand::SetNodeAlive {
                node: NodeId(1),
                alive: false,
            },
            MasterCommand::UpdateNodeStats {
                node: NodeId(1),
                utilization: 42,
            },
            MasterCommand::UpdateMetaPartitionStats {
                partition: PartitionId(1),
                item_count: 10,
                max_inode: InodeId(5),
                end: InodeId(7),
                applied: 99,
            },
            MasterCommand::SetDataPartitionFull {
                partition: PartitionId(2),
                full: true,
            },
            MasterCommand::ReportPartitionTimeout {
                partition: PartitionId(2),
            },
            MasterCommand::CreateVolume {
                name: "v".into(),
                meta_partition_count: 1,
                data_partition_count: 2,
            },
            MasterCommand::ExpandVolume {
                volume: VolumeId(1),
                count: 3,
            },
            MasterCommand::SplitMetaPartition {
                partition: PartitionId(1),
            },
            MasterCommand::Maintenance,
            MasterCommand::RecordHeartbeats {
                reporting: vec![NodeId(1), NodeId(101)],
            },
            MasterCommand::RepairTick,
            MasterCommand::ConfirmReplicaJoined {
                partition: PartitionId(3),
                node: NodeId(104),
            },
            MasterCommand::RecordOrphanSweep { fixups: 12 },
        ];
        for c in cmds {
            assert_eq!(roundtrip(&c).unwrap(), c);
        }
        assert!(MasterCommand::from_bytes(&[99]).is_err());
    }

    #[test]
    fn registration_is_idempotent() {
        let mut st = MasterState::new(ClusterConfig::default());
        for _ in 0..3 {
            st.apply(&MasterCommand::RegisterNode {
                node: NodeId(1),
                kind: NodeKind::Meta,
            })
            .unwrap();
        }
        assert_eq!(st.nodes_of_kind(NodeKind::Meta).len(), 1);
        assert_eq!(st.node(NodeId(1)).unwrap().raft_set, 0);
    }

    /// One heartbeat round in which every registered node except `absent`
    /// reports.
    fn miss_round(st: &mut MasterState, absent: NodeId) {
        let reporting: Vec<NodeId> = st.nodes.keys().copied().filter(|&n| n != absent).collect();
        st.apply(&MasterCommand::RecordHeartbeats { reporting })
            .unwrap();
    }

    #[test]
    fn missed_heartbeats_drive_suspect_then_dead() {
        let mut st = state_with_nodes(3, 4);
        let all: Vec<NodeId> = st.nodes.keys().copied().collect();
        st.apply(&MasterCommand::RecordHeartbeats {
            reporting: all.clone(),
        })
        .unwrap();
        assert_eq!(st.heartbeat_round(), 1);
        let victim = NodeId(101);
        assert_eq!(st.node(victim).unwrap().missed_heartbeats, 0);

        // Default thresholds: suspect at 2 misses, dead at 3.
        miss_round(&mut st, victim);
        let n = st.node(victim).unwrap();
        assert!(!n.is_suspect(&st.config) && n.alive);

        miss_round(&mut st, victim);
        let n = st.node(victim).unwrap();
        assert!(n.is_suspect(&st.config) && !n.is_dead(&st.config));
        assert!(n.alive, "suspect is not yet dead");
        // Suspects are no longer placement targets.
        assert!(st
            .loads(NodeKind::Data)
            .iter()
            .all(|l| l.node != victim || !l.alive));

        miss_round(&mut st, victim);
        let n = st.node(victim).unwrap();
        assert!(n.is_dead(&st.config) && !n.alive);

        // A node that comes back fully recovers.
        st.apply(&MasterCommand::RecordHeartbeats { reporting: all })
            .unwrap();
        let n = st.node(victim).unwrap();
        assert!(n.alive && n.missed_heartbeats == 0 && !n.is_suspect(&st.config));
    }

    #[test]
    fn repair_replaces_dead_data_member_and_confirm_restores() {
        let mut st = state_with_nodes(3, 4);
        let out = st
            .apply(&MasterCommand::CreateVolume {
                name: "v".into(),
                meta_partition_count: 1,
                data_partition_count: 1,
            })
            .unwrap();
        let vid = out.volume.unwrap();
        let dpid = st.volume(vid).unwrap().data_partitions[0];
        let members = st.data_partition(dpid).unwrap().members.clone();
        let victim = members[2]; // a non-head member
        let spare = (101..=104)
            .map(NodeId)
            .find(|n| !members.contains(n))
            .unwrap();

        for _ in 0..st.config.dead_after_missed {
            miss_round(&mut st, victim);
        }
        let out = st.apply(&MasterCommand::RepairTick).unwrap();
        let decomms: Vec<_> = out
            .tasks
            .iter()
            .filter(|t| matches!(t, Task::DecommissionReplica { .. }))
            .collect();
        assert_eq!(decomms.len(), 1);
        match &out.tasks[1] {
            Task::AddDataReplica {
                partition,
                members: new_members,
                new_node,
                ..
            } => {
                assert_eq!(*partition, dpid);
                assert_eq!(*new_node, spare);
                assert!(!new_members.contains(&victim));
                assert_eq!(new_members[0], members[0], "head unchanged");
                assert_eq!(*new_members.last().unwrap(), spare);
            }
            other => panic!("unexpected {other:?}"),
        }
        let dp = st.data_partition(dpid).unwrap();
        assert!(dp.read_only, "routed read-only while the join is in flight");
        assert!(!dp.members.contains(&victim));
        assert_eq!(st.pending_joins().get(&dpid), Some(&spare));

        // A second sweep must not replan the pending partition.
        let out = st.apply(&MasterCommand::RepairTick).unwrap();
        assert!(out.tasks.is_empty());

        // A stale confirm (wrong node) is a no-op; the real one restores.
        st.apply(&MasterCommand::ConfirmReplicaJoined {
            partition: dpid,
            node: victim,
        })
        .unwrap();
        assert!(st.data_partition(dpid).unwrap().read_only);
        st.apply(&MasterCommand::ConfirmReplicaJoined {
            partition: dpid,
            node: spare,
        })
        .unwrap();
        assert!(!st.data_partition(dpid).unwrap().read_only);
        assert!(st.pending_joins().is_empty());
    }

    #[test]
    fn repair_promotes_survivor_when_chain_head_dies() {
        let mut st = state_with_nodes(3, 4);
        let out = st
            .apply(&MasterCommand::CreateVolume {
                name: "v".into(),
                meta_partition_count: 1,
                data_partition_count: 1,
            })
            .unwrap();
        let dpid = st.volume(out.volume.unwrap()).unwrap().data_partitions[0];
        let members = st.data_partition(dpid).unwrap().members.clone();
        let head = members[0];
        for _ in 0..st.config.dead_after_missed {
            miss_round(&mut st, head);
        }
        st.apply(&MasterCommand::RepairTick).unwrap();
        let dp = st.data_partition(dpid).unwrap();
        assert_eq!(dp.members[0], members[1], "next survivor promoted to head");
        assert!(!dp.members.contains(&head));
        assert_eq!(dp.members.len(), members.len());
    }

    #[test]
    fn repair_handles_meta_partitions_and_respects_budget() {
        let mut st = MasterState::new(ClusterConfig {
            max_repairs_per_tick: 1,
            ..ClusterConfig::default()
        });
        for i in 1..=4u64 {
            st.apply(&MasterCommand::RegisterNode {
                node: NodeId(i),
                kind: NodeKind::Meta,
            })
            .unwrap();
        }
        let out = st
            .apply(&MasterCommand::CreateVolume {
                name: "v".into(),
                meta_partition_count: 2,
                data_partition_count: 0,
            })
            .unwrap();
        let vid = out.volume.unwrap();
        // Find a node serving both meta partitions, if any; otherwise any
        // member of the first.
        let mps = st.volume_meta_partitions(vid);
        assert_eq!(mps.len(), 2);
        let victim = mps[0].members[0];
        let degraded_before: Vec<PartitionId> = mps
            .iter()
            .filter(|p| p.members.contains(&victim))
            .map(|p| p.partition)
            .collect();
        for _ in 0..st.config.dead_after_missed {
            miss_round(&mut st, victim);
        }
        let out = st.apply(&MasterCommand::RepairTick).unwrap();
        // Budget of 1: exactly one decommission+add pair per sweep.
        assert_eq!(out.tasks.len(), 2);
        match &out.tasks[1] {
            Task::AddMetaReplica {
                partition,
                start,
                end,
                members,
                new_node,
                ..
            } => {
                let mp = st.meta_partition(*partition).unwrap();
                assert_eq!((mp.start, mp.end), (*start, *end));
                assert_eq!(&mp.members, members);
                assert!(!members.contains(&victim));
                assert_eq!(members.last(), Some(new_node));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Remaining degraded partitions are picked up by later sweeps.
        if degraded_before.len() > 1 {
            let out = st.apply(&MasterCommand::RepairTick).unwrap();
            assert_eq!(out.tasks.len(), 2);
        }
    }

    #[test]
    fn repair_waits_when_no_spare_node_exists() {
        let mut st = state_with_nodes(3, 3);
        let out = st
            .apply(&MasterCommand::CreateVolume {
                name: "v".into(),
                meta_partition_count: 1,
                data_partition_count: 1,
            })
            .unwrap();
        let dpid = st.volume(out.volume.unwrap()).unwrap().data_partitions[0];
        let members = st.data_partition(dpid).unwrap().members.clone();
        for _ in 0..st.config.dead_after_missed {
            miss_round(&mut st, members[1]);
        }
        let out = st.apply(&MasterCommand::RepairTick).unwrap();
        assert!(out.tasks.is_empty(), "no replacement host available");
        assert_eq!(st.data_partition(dpid).unwrap().members, members);
        assert!(st.pending_joins().is_empty());

        // Register a spare and the next sweep repairs.
        st.apply(&MasterCommand::RegisterNode {
            node: NodeId(104),
            kind: NodeKind::Data,
        })
        .unwrap();
        let out = st.apply(&MasterCommand::RepairTick).unwrap();
        assert_eq!(out.tasks.len(), 2);
        assert_eq!(st.pending_joins().get(&dpid), Some(&NodeId(104)));
    }
}
