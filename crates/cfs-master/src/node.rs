//! Resource-manager replicas: one Raft group + key-value persistence.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use cfs_kvwal::{LsmEngine, LsmOptions, TypedCf, WriteBatch};
use cfs_obs::{Counter, Registry, RpcRoute};
use cfs_raft::hub::{RaftHost, RaftHub};
use cfs_raft::{
    KvRaftStorage, MultiRaft, RaftConfig, RaftMetrics, RaftStorage, SnapshotPayload, WireEnvelope,
};
use cfs_types::codec::{Decode, Encode};
use cfs_types::{CfsError, ClusterConfig, NodeId, PartitionId, RaftGroupId, Result, VolumeId};

use crate::state::{
    ApplyOutcome, DataPartitionMeta, MasterCommand, MasterState, MetaPartitionMeta, NodeStatus,
    VolumeMeta,
};

/// The master replicas' Raft group id — far above any partition id, which
/// double as group ids.
pub const MASTER_GROUP: RaftGroupId = RaftGroupId(u64::MAX);

/// Snapshot the engine-persisted state every this many applied commands.
const PERSIST_SNAPSHOT_EVERY: u64 = 256;

/// Durable state-machine snapshot column family: key `0` →
/// `(applied_index, snapshot bytes)`.
struct SnapCf;
impl TypedCf for SnapCf {
    const NAME: &'static str = "master_snap";
    type Key = u64;
    type Value = (u64, Vec<u8>);
}

/// Applied commands newer than the snapshot: raft index → encoded command.
struct CmdCf;
impl TypedCf for CmdCf {
    const NAME: &'static str = "master_cmd";
    type Key = u64;
    type Value = Vec<u8>;
}

/// Persist a state-machine snapshot and prune the commands it covers, as
/// one atomic engine commit.
fn persist_snapshot(engine: &LsmEngine, idx: u64, snap: &[u8]) {
    let mut b = WriteBatch::new();
    b.put::<SnapCf>(&0, &(idx, snap.to_vec()));
    if let Ok(cmds) = engine.scan::<CmdCf>() {
        for (i, _) in cmds {
            if i <= idx {
                b.delete::<CmdCf>(&i);
            }
        }
    }
    let _ = engine.write(b);
}

/// RPCs the resource manager serves. Clients use *non-persistent
/// connections* (§2.5.2) — every request here is independent.
#[derive(Debug, Clone)]
pub enum MasterRequest {
    /// Replicated mutation.
    Command(MasterCommand),
    /// Full partition table of a volume (the client caches this, §2.4).
    GetVolume { name: String },
    /// Same, by id.
    GetVolumeById { volume: VolumeId },
    /// All registered nodes.
    ListNodes,
}

impl RpcRoute for MasterRequest {
    fn route(&self) -> &'static str {
        match self {
            MasterRequest::Command(_) => "master.command",
            MasterRequest::GetVolume { .. } => "master.get_volume",
            MasterRequest::GetVolumeById { .. } => "master.get_volume_by_id",
            MasterRequest::ListNodes => "master.list_nodes",
        }
    }
}

/// Resource-manager churn counters.
#[derive(Debug, Clone, Default)]
pub struct MasterMetrics {
    /// Master-group leadership changes (election churn).
    pub leader_changes: Counter,
    /// Replicated commands applied to the state machine.
    pub commands_applied: Counter,
    /// Volumes created.
    pub volumes_created: Counter,
    /// Repair-scheduler sweeps proposed (`RepairTick`).
    pub repair_ticks: Counter,
    /// Dead replicas scheduled for decommission by the repair sweep.
    pub repair_decommissions: Counter,
    /// Replacement replicas scheduled (`AddDataReplica`/`AddMetaReplica`).
    pub repair_replacements: Counter,
    /// Joins confirmed complete (`ConfirmReplicaJoined` accepted).
    pub repair_confirms: Counter,
    /// Meta partition range cuts planned (Algorithm 1 splits, including
    /// reconciliation re-emissions of an unacknowledged cut).
    pub splits_planned: Counter,
    /// Partition placements whose replicas all landed in one Raft set
    /// (§2.5.1).
    pub raftset_placements: Counter,
    /// Placements that had to fall back across Raft sets (no single set
    /// had enough live capacity).
    pub raftset_fallbacks: Counter,
}

impl MasterMetrics {
    /// Metrics counted into private atomics (no registry attached).
    pub fn detached() -> MasterMetrics {
        MasterMetrics::default()
    }

    /// Metrics registered under `master.*` names.
    pub fn bind(registry: &Registry) -> MasterMetrics {
        MasterMetrics {
            leader_changes: registry.counter("master.leader_changes"),
            commands_applied: registry.counter("master.commands_applied"),
            volumes_created: registry.counter("master.volumes_created"),
            repair_ticks: registry.counter("master.repair.ticks"),
            repair_decommissions: registry.counter("master.repair.decommissions"),
            repair_replacements: registry.counter("master.repair.replacements"),
            repair_confirms: registry.counter("master.repair.confirms"),
            splits_planned: registry.counter("master.splits.planned"),
            raftset_placements: registry.counter("master.raftset.placements"),
            raftset_fallbacks: registry.counter("master.raftset.fallbacks"),
        }
    }
}

/// Replies to [`MasterRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum MasterResponse {
    Applied(ApplyOutcome),
    Volume {
        volume: VolumeMeta,
        meta_partitions: Vec<MetaPartitionMeta>,
        data_partitions: Vec<DataPartitionMeta>,
    },
    Nodes(Vec<NodeStatus>),
}

struct Inner {
    multiraft: MultiRaft,
    state: MasterState,
    engine: Arc<LsmEngine>,
    results: HashMap<u64, Result<ApplyOutcome>>,
    applied_since_snapshot: u64,
    applied_index: u64,
}

/// One resource-manager replica (§2.3). The replicas form a single Raft
/// group; state is mirrored into an [`LsmEngine`] — snapshot + newer
/// commands on typed column families, plus the group's raft log and hard
/// state via [`KvRaftStorage`] — so a restarted replica recovers entirely
/// from local disk (the paper's RocksDB role).
pub struct MasterNode {
    id: NodeId,
    hub: RaftHub,
    inner: Mutex<Inner>,
    commit_timeout_ticks: u64,
    metrics: MasterMetrics,
}

impl MasterNode {
    /// Open (or create) a replica persisting under `dir`, and register it
    /// on the raft hub. `members` are all master replica node ids.
    pub fn open(
        id: NodeId,
        hub: RaftHub,
        dir: &Path,
        members: Vec<NodeId>,
        cluster_config: ClusterConfig,
        raft_config: RaftConfig,
        seed: u64,
    ) -> Result<Arc<Self>> {
        Self::open_with_registry(
            id,
            hub,
            dir,
            members,
            cluster_config,
            raft_config,
            seed,
            None,
        )
    }

    /// [`MasterNode::open`] with metrics bound to `registry` (`master.*`
    /// churn counters plus the group's `raft.*` consensus counters).
    #[allow(clippy::too_many_arguments)]
    pub fn open_with_registry(
        id: NodeId,
        hub: RaftHub,
        dir: &Path,
        members: Vec<NodeId>,
        cluster_config: ClusterConfig,
        raft_config: RaftConfig,
        seed: u64,
        registry: Option<&Registry>,
    ) -> Result<Arc<Self>> {
        let engine = Arc::new(LsmEngine::open_with_registry(
            dir,
            LsmOptions::default(),
            registry,
        )?);

        // Recover the state machine: snapshot + newer command replay.
        let (mut state, mut applied_index) = match engine.get::<SnapCf>(&0)? {
            Some((idx, bytes)) => (
                MasterState::from_snapshot(cluster_config.clone(), &bytes)?,
                idx,
            ),
            None => (MasterState::new(cluster_config.clone()), 0),
        };
        for (idx, bytes) in engine.scan::<CmdCf>()? {
            if idx > applied_index {
                let cmd = MasterCommand::from_bytes(&bytes)?;
                let _ = state.apply(&cmd); // deterministic errors are fine
                applied_index = idx;
            }
        }

        let mut multiraft = MultiRaft::new(id, raft_config, seed, true);
        if let Some(r) = registry {
            multiraft.set_metrics(RaftMetrics::bind(r));
        }
        // The master group's raft log, hard state and snapshot live on the
        // same engine, so every ack the group sent is on disk.
        let storage = Arc::new(KvRaftStorage::new(engine.clone()));
        multiraft.set_storage(storage.clone())?;
        match storage.load(MASTER_GROUP)? {
            Some(persisted) => {
                // If the durable raft image is ahead of the state machine
                // (e.g. an InstallSnapshot landed right before the crash),
                // jump the state machine to the snapshot.
                if let Some(snap) = &persisted.snapshot {
                    if snap.last_index > applied_index {
                        state = MasterState::from_snapshot(cluster_config.clone(), &snap.data)?;
                        applied_index = snap.last_index;
                    }
                }
                multiraft.restore_group(MASTER_GROUP, members, persisted)?;
            }
            None => multiraft.create_group(MASTER_GROUP, members)?,
        }

        let node = Arc::new(MasterNode {
            id,
            hub: hub.clone(),
            inner: Mutex::new(Inner {
                multiraft,
                state,
                engine,
                results: HashMap::new(),
                applied_since_snapshot: 0,
                applied_index,
            }),
            commit_timeout_ticks: 2_000,
            metrics: registry.map(MasterMetrics::bind).unwrap_or_default(),
        });
        hub.register(node.clone() as Arc<dyn RaftHost>);
        Ok(node)
    }

    /// This replica's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Is this replica the group leader?
    pub fn is_leader(&self) -> bool {
        self.inner
            .lock()
            .multiraft
            .group(MASTER_GROUP)
            .map(|g| g.is_leader())
            .unwrap_or(false)
    }

    /// Leader hint for client redirects.
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.inner
            .lock()
            .multiraft
            .group(MASTER_GROUP)
            .and_then(|g| g.leader_hint())
    }

    /// Handle one RPC.
    pub fn handle(&self, req: MasterRequest) -> Result<MasterResponse> {
        match req {
            MasterRequest::Command(cmd) => self.propose(&cmd).map(MasterResponse::Applied),
            MasterRequest::GetVolume { name } => {
                let inner = self.inner.lock();
                self.require_leader(&inner)?;
                let vol = inner
                    .state
                    .volume_by_name(&name)
                    .ok_or_else(|| CfsError::NotFound(format!("volume {name}")))?
                    .clone();
                Ok(Self::volume_view(&inner.state, vol))
            }
            MasterRequest::GetVolumeById { volume } => {
                let inner = self.inner.lock();
                self.require_leader(&inner)?;
                let vol = inner
                    .state
                    .volume(volume)
                    .ok_or_else(|| CfsError::NotFound(format!("{volume}")))?
                    .clone();
                Ok(Self::volume_view(&inner.state, vol))
            }
            MasterRequest::ListNodes => {
                let inner = self.inner.lock();
                self.require_leader(&inner)?;
                let mut nodes: Vec<NodeStatus> = Vec::new();
                for kind in [crate::state::NodeKind::Meta, crate::state::NodeKind::Data] {
                    nodes.extend(inner.state.nodes_of_kind(kind).into_iter().cloned());
                }
                Ok(MasterResponse::Nodes(nodes))
            }
        }
    }

    fn require_leader(&self, inner: &Inner) -> Result<()> {
        let g = inner
            .multiraft
            .group(MASTER_GROUP)
            .ok_or_else(|| CfsError::Internal("master group missing".into()))?;
        if !g.is_leader() {
            return Err(CfsError::NotLeader {
                partition: PartitionId(MASTER_GROUP.raw()),
                hint: g.leader_hint(),
            });
        }
        Ok(())
    }

    fn volume_view(state: &MasterState, vol: VolumeMeta) -> MasterResponse {
        let meta_partitions = state
            .volume_meta_partitions(vol.volume)
            .into_iter()
            .cloned()
            .collect();
        let data_partitions = state
            .volume_data_partitions(vol.volume)
            .into_iter()
            .cloned()
            .collect();
        MasterResponse::Volume {
            volume: vol,
            meta_partitions,
            data_partitions,
        }
    }

    /// Propose a command through the replicas' Raft group and wait for the
    /// apply outcome.
    pub fn propose(&self, cmd: &MasterCommand) -> Result<ApplyOutcome> {
        let index = {
            let mut inner = self.inner.lock();
            let node = inner
                .multiraft
                .group_mut(MASTER_GROUP)
                .ok_or_else(|| CfsError::Internal("master group missing".into()))?;
            node.propose(cmd.to_bytes())?
        };
        let committed = self.hub.pump_until(
            || self.inner.lock().results.contains_key(&index),
            self.commit_timeout_ticks,
        );
        if !committed {
            return Err(CfsError::Timeout(format!("master commit of index {index}")));
        }
        let result = self
            .inner
            .lock()
            .results
            .remove(&index)
            .expect("result present per pump predicate");
        // Repair counters are proposal-side (leader-only) so they count
        // each scheduling decision once, not once per replica apply.
        if let Ok(outcome) = &result {
            match cmd {
                MasterCommand::RepairTick => {
                    self.metrics.repair_ticks.inc();
                    for t in &outcome.tasks {
                        match t {
                            crate::state::Task::DecommissionReplica { .. } => {
                                self.metrics.repair_decommissions.inc()
                            }
                            crate::state::Task::AddDataReplica { .. }
                            | crate::state::Task::AddMetaReplica { .. } => {
                                self.metrics.repair_replacements.inc()
                            }
                            _ => {}
                        }
                    }
                }
                MasterCommand::ConfirmReplicaJoined { .. } => self.metrics.repair_confirms.inc(),
                _ => {}
            }
            // Split + Raft-set placement counters, also proposal-side:
            // every planned cut, and each new partition classified by
            // whether its replicas landed in one Raft set (§2.5.1).
            let counts = outcome.tasks.iter().any(|t| {
                matches!(
                    t,
                    crate::state::Task::UpdateMetaPartitionEnd { .. }
                        | crate::state::Task::CreateMetaPartition { .. }
                        | crate::state::Task::CreateDataPartition { .. }
                )
            });
            if counts {
                let inner = self.inner.lock();
                for t in &outcome.tasks {
                    match t {
                        crate::state::Task::UpdateMetaPartitionEnd { .. } => {
                            self.metrics.splits_planned.inc()
                        }
                        crate::state::Task::CreateMetaPartition { members, .. }
                        | crate::state::Task::CreateDataPartition { members, .. } => {
                            if inner.state.members_in_one_set(members) {
                                self.metrics.raftset_placements.inc()
                            } else {
                                self.metrics.raftset_fallbacks.inc()
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        result
    }

    /// Read-only view accessor for tests and the cluster driver.
    pub fn with_state<R>(&self, f: impl FnOnce(&MasterState) -> R) -> R {
        f(&self.inner.lock().state)
    }
}

impl RaftHost for MasterNode {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn raft_tick(&self) {
        self.inner.lock().multiraft.tick_all();
    }

    fn raft_drain(&self) -> Vec<WireEnvelope> {
        let mut inner = self.inner.lock();
        let (msgs, readies) = inner.multiraft.drain();
        for (gid, ready) in readies {
            debug_assert_eq!(gid, MASTER_GROUP);
            if ready.became_leader {
                self.metrics.leader_changes.inc();
            }

            if let Some(snap) = ready.snapshot {
                if let Ok(st) = MasterState::from_snapshot(inner.state.config().clone(), &snap.data)
                {
                    inner.state = st;
                    persist_snapshot(&inner.engine, snap.last_index, &snap.data);
                    inner.applied_index = snap.last_index;
                }
            }

            let is_leader = inner
                .multiraft
                .group(gid)
                .map(|g| g.is_leader())
                .unwrap_or(false);
            for entry in ready.committed {
                if entry.data.is_empty() {
                    continue;
                }
                // After a restore, raft re-delivers entries the recovered
                // state machine already applied; skip them.
                if entry.index <= inner.applied_index {
                    continue;
                }
                let result = match MasterCommand::from_bytes(&entry.data) {
                    Ok(cmd) => {
                        let r = inner.state.apply(&cmd);
                        if r.is_ok() {
                            self.metrics.commands_applied.inc();
                            if matches!(cmd, MasterCommand::CreateVolume { .. }) {
                                self.metrics.volumes_created.inc();
                            }
                        }
                        // Persist the command for restart recovery.
                        let _ = inner.engine.put::<CmdCf>(&entry.index, &entry.data);
                        inner.applied_index = entry.index;
                        inner.applied_since_snapshot += 1;
                        r
                    }
                    Err(e) => Err(e),
                };
                if is_leader {
                    inner.results.insert(entry.index, result);
                }
            }

            // Periodic durable snapshot + command pruning, mirroring the
            // Raft-level compaction.
            if inner.applied_since_snapshot >= PERSIST_SNAPSHOT_EVERY {
                let snap = inner.state.snapshot_bytes();
                let idx = inner.applied_index;
                persist_snapshot(&inner.engine, idx, &snap);
                let _ = inner.engine.flush();
                inner.applied_since_snapshot = 0;

                // Raft log compaction with the same snapshot.
                if let Some(g) = inner.multiraft.group_mut(gid) {
                    if g.wants_compaction() {
                        let (last_index, last_term) = g.compaction_point();
                        g.compact(SnapshotPayload {
                            last_index,
                            last_term,
                            data: snap,
                        });
                    }
                }
            }
        }
        if inner.results.len() > 65_536 {
            inner.results.clear();
        }
        msgs
    }

    fn raft_deliver(&self, env: WireEnvelope) {
        self.inner.lock().multiraft.receive(env.from, env.msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NodeKind;
    use cfs_types::testutil::TempDir;

    fn replica_set(dir: &TempDir, hub: &RaftHub, n: u64) -> Vec<Arc<MasterNode>> {
        let members: Vec<NodeId> = (1001..1001 + n).map(NodeId).collect();
        members
            .iter()
            .map(|&id| {
                MasterNode::open(
                    id,
                    hub.clone(),
                    &dir.path().join(format!("m{id}")),
                    members.clone(),
                    ClusterConfig::default(),
                    RaftConfig::default(),
                    3,
                )
                .unwrap()
            })
            .collect()
    }

    fn elect(hub: &RaftHub, masters: &[Arc<MasterNode>]) -> Arc<MasterNode> {
        assert!(hub.pump_until(|| masters.iter().any(|m| m.is_leader()), 5_000));
        masters.iter().find(|m| m.is_leader()).unwrap().clone()
    }

    #[test]
    fn replicated_volume_creation_with_tasks() {
        let dir = TempDir::new("master").unwrap();
        let hub = RaftHub::new();
        let masters = replica_set(&dir, &hub, 3);
        let leader = elect(&hub, &masters);

        for i in 1..=4u64 {
            leader
                .propose(&MasterCommand::RegisterNode {
                    node: NodeId(i),
                    kind: NodeKind::Meta,
                })
                .unwrap();
            leader
                .propose(&MasterCommand::RegisterNode {
                    node: NodeId(10 + i),
                    kind: NodeKind::Data,
                })
                .unwrap();
        }
        let out = leader
            .propose(&MasterCommand::CreateVolume {
                name: "shared".into(),
                meta_partition_count: 1,
                data_partition_count: 2,
            })
            .unwrap();
        assert_eq!(out.tasks.len(), 3);

        // Query through the RPC surface.
        match leader
            .handle(MasterRequest::GetVolume {
                name: "shared".into(),
            })
            .unwrap()
        {
            MasterResponse::Volume {
                meta_partitions,
                data_partitions,
                ..
            } => {
                assert_eq!(meta_partitions.len(), 1);
                assert_eq!(data_partitions.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Followers converge (heartbeats propagate the commit).
        for _ in 0..200 {
            hub.tick_and_pump();
        }
        for m in &masters {
            m.with_state(|s| {
                assert!(s.volume_by_name("shared").is_some(), "{}", m.id());
            });
        }
    }

    #[test]
    fn follower_queries_redirect() {
        let dir = TempDir::new("master").unwrap();
        let hub = RaftHub::new();
        let masters = replica_set(&dir, &hub, 3);
        let leader = elect(&hub, &masters);
        let follower = masters.iter().find(|m| !m.is_leader()).unwrap();
        let err = follower.handle(MasterRequest::ListNodes).unwrap_err();
        match err {
            CfsError::NotLeader { hint, .. } => assert_eq!(hint, Some(leader.id())),
            other => panic!("expected NotLeader, got {other}"),
        }
    }

    #[test]
    fn single_replica_recovers_from_kv_after_restart() {
        let dir = TempDir::new("master").unwrap();
        let members = vec![NodeId(1001)];
        {
            let hub = RaftHub::new();
            let m = MasterNode::open(
                NodeId(1001),
                hub.clone(),
                dir.path(),
                members.clone(),
                ClusterConfig::default(),
                RaftConfig::default(),
                3,
            )
            .unwrap();
            assert!(hub.pump_until(|| m.is_leader(), 5_000));
            for i in 1..=3u64 {
                m.propose(&MasterCommand::RegisterNode {
                    node: NodeId(i),
                    kind: NodeKind::Meta,
                })
                .unwrap();
            }
            m.propose(&MasterCommand::CreateVolume {
                name: "persisted".into(),
                meta_partition_count: 1,
                data_partition_count: 0,
            })
            .unwrap();
        }
        // Reopen from the same directory: state recovered from the kv
        // store (snapshot + command replay).
        let hub = RaftHub::new();
        let m = MasterNode::open(
            NodeId(1001),
            hub.clone(),
            dir.path(),
            members,
            ClusterConfig::default(),
            RaftConfig::default(),
            3,
        )
        .unwrap();
        m.with_state(|s| {
            assert!(s.volume_by_name("persisted").is_some());
            assert_eq!(s.nodes_of_kind(NodeKind::Meta).len(), 3);
        });
    }

    #[test]
    fn leader_failover_preserves_state() {
        let dir = TempDir::new("master").unwrap();
        let hub = RaftHub::new();
        let faults = cfs_types::FaultState::new();
        hub.set_faults(faults.clone());
        let masters = replica_set(&dir, &hub, 3);
        let leader = elect(&hub, &masters);
        for i in 1..=3u64 {
            leader
                .propose(&MasterCommand::RegisterNode {
                    node: NodeId(i),
                    kind: NodeKind::Data,
                })
                .unwrap();
        }
        faults.set_down(leader.id(), true);
        assert!(hub.pump_until(
            || masters
                .iter()
                .any(|m| m.id() != leader.id() && m.is_leader()),
            10_000
        ));
        let new_leader = masters
            .iter()
            .find(|m| m.id() != leader.id() && m.is_leader())
            .unwrap();
        new_leader.with_state(|s| {
            assert_eq!(s.nodes_of_kind(NodeKind::Data).len(), 3);
        });
        // And it accepts new commands.
        new_leader
            .propose(&MasterCommand::RegisterNode {
                node: NodeId(4),
                kind: NodeKind::Data,
            })
            .unwrap();
    }
}
