//! The CFS protocol model for the simulated evaluation cluster.
//!
//! Mirrors the real stack's message/disk pattern op by op:
//!
//! * metadata mutations run **two phases** (inode partition, dentry
//!   partition — §2.6's relaxed atomicity means two independent Raft
//!   commits), each committing on a majority with a log write;
//! * metadata reads are served from the partition leader's memory — never
//!   a disk (§4.3 reason 1) — or from the client cache (§2.4);
//! * `readdir` is one scan plus **batched** inode fetches per partition
//!   (§4.2 `batchInodeGet`), and the results warm the client cache;
//! * sequential writes chain 128 KB packets through the replica array
//!   (§2.7.1) with a periodic extent sync to the meta node;
//! * random writes are in-place Raft overwrites with log write
//!   amplification and **no metadata update** (§4.3 reason 2);
//! * small-file writes skip extent allocation entirely (§4.4 reason 2).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ceph_baseline::ApproxLru;
use cfs_sim::plan::{control_hop, disk_read_ns, disk_write_ns, hop};
use cfs_sim::{HardwareModel, Sim, SimTime, StationId, Step};

use crate::workload::SimOp;

/// Parameters of the CFS model (defaults per §4.1: 10 machines hosting
/// meta + data nodes together, 10 meta partitions and 1500 data partitions
/// per machine, 3 replicas).
#[derive(Debug, Clone)]
pub struct CfsSimConfig {
    pub nodes: usize,
    pub client_nodes: usize,
    pub meta_partitions_per_node: usize,
    pub replicas: usize,
    /// CPU per metadata RPC at the serving node.
    pub meta_op_ns: u64,
    /// Serialized apply time of one Raft group (per meta partition).
    pub raft_apply_ns: u64,
    /// Non-pipelined group-commit window: one Raft group admits the next
    /// command only after the previous one committed, so ops on the same
    /// partition serialize at roughly the commit latency. This is what
    /// collapses shared-directory workloads (mdtest tree phase) for CFS,
    /// mirroring how the MDS journal collapses them for Ceph.
    pub raft_group_serial_ns: u64,
    /// Raft log append written per commit (batched, no fsync).
    pub raft_log_write_ns: u64,
    /// Client-side per-op cost (FUSE crossing).
    pub client_op_ns: u64,
    /// Client-cache-hit service time (still crosses FUSE).
    pub client_cached_op_ns: u64,
    /// Client inode/dentry cache entries per client node (§2.4).
    pub client_cache_entries: usize,
    /// Extent size (1 GB): maps file offsets to data partitions.
    pub extent_size: u64,
    /// Sync extent keys to the meta node every N sequential packets.
    pub meta_sync_every: u64,
    pub hw: HardwareModel,
}

impl Default for CfsSimConfig {
    fn default() -> Self {
        CfsSimConfig {
            nodes: 10,
            client_nodes: 8,
            meta_partitions_per_node: 10,
            replicas: 3,
            meta_op_ns: 10_000,
            raft_apply_ns: 15_000,
            raft_group_serial_ns: 250_000,
            raft_log_write_ns: 30_000,
            client_op_ns: 80_000,
            client_cached_op_ns: 8_000,
            client_cache_entries: 100_000,
            extent_size: 1 << 30,
            meta_sync_every: 8,
            hw: HardwareModel::default(),
        }
    }
}

impl CfsSimConfig {
    /// Total meta partitions in the cluster.
    pub fn total_meta_partitions(&self) -> usize {
        self.nodes * self.meta_partitions_per_node
    }
}

/// Stations + client-cache state of the CFS model.
pub struct CfsSim {
    cfg: CfsSimConfig,
    node_cpu: Vec<StationId>,
    node_disk: Vec<StationId>,
    node_nic: Vec<StationId>,
    /// Per-meta-partition Raft apply lane (1 server): commands of one
    /// group apply serially.
    mp_lane: Vec<StationId>,
    client_nic: Vec<StationId>,
    client_cpu: Vec<StationId>,
    /// Per-client-node inode/dentry cache (§2.4).
    client_cache: Vec<ApproxLru>,
    /// Per-client sequential-packet counter (meta sync cadence).
    seq_counter: Vec<u64>,
    #[allow(dead_code)] // reserved for jittered variants of the models
    rng: SmallRng,
}

impl CfsSim {
    /// Build stations on `sim`.
    pub fn new(sim: &mut Sim, cfg: CfsSimConfig, seed: u64) -> Self {
        let node_cpu = (0..cfg.nodes)
            .map(|n| sim.add_station(&format!("cfs-cpu-{n}"), cfg.hw.cores_per_node))
            .collect();
        let node_disk = (0..cfg.nodes)
            .map(|n| sim.add_station(&format!("cfs-disk-{n}"), cfg.hw.ssds_per_node))
            .collect();
        let node_nic = (0..cfg.nodes)
            .map(|n| sim.add_station(&format!("cfs-nic-{n}"), 1))
            .collect();
        let mp_lane = (0..cfg.total_meta_partitions())
            .map(|p| sim.add_station(&format!("cfs-mp-{p}"), 1))
            .collect();
        let client_nic = (0..cfg.client_nodes)
            .map(|n| sim.add_station(&format!("cfs-cnic-{n}"), 1))
            .collect();
        let client_cpu = (0..cfg.client_nodes)
            .map(|n| sim.add_station(&format!("cfs-ccpu-{n}"), cfg.hw.cores_per_node))
            .collect();
        let client_cache = (0..cfg.client_nodes)
            .map(|_| ApproxLru::new(cfg.client_cache_entries))
            .collect();
        CfsSim {
            node_cpu,
            node_disk,
            node_nic,
            mp_lane,
            client_nic,
            client_cpu,
            client_cache,
            seq_counter: vec![0; cfg.client_nodes],
            rng: SmallRng::seed_from_u64(seed),
            cfg,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &CfsSimConfig {
        &self.cfg
    }

    fn hash(x: u64, salt: u64) -> u64 {
        let mut z = x ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Meta partition owning an id (utilization placement spreads ids
    /// uniformly; routing is by the inode-range table — a hash here).
    fn meta_partition_of(&self, key: u64) -> usize {
        (Self::hash(key, 11) % self.cfg.total_meta_partitions() as u64) as usize
    }

    fn mp_leader_node(&self, mp: usize) -> usize {
        mp % self.cfg.nodes
    }

    fn mp_followers(&self, mp: usize) -> Vec<usize> {
        let l = self.mp_leader_node(mp);
        (1..self.cfg.replicas)
            .map(|i| (l + i) % self.cfg.nodes)
            .collect()
    }

    /// Data partition replica set for a (file, offset) extent.
    fn data_nodes_of(&self, file: u64, offset: u64) -> (usize, Vec<usize>) {
        let extent = Self::hash(file, 13) ^ (offset / self.cfg.extent_size);
        let leader = (Self::hash(extent, 17) % self.cfg.nodes as u64) as usize;
        let followers = (1..self.cfg.replicas)
            .map(|i| (leader + i * 3 + 1) % self.cfg.nodes)
            .collect();
        (leader, followers)
    }

    /// One replicated metadata phase: RPC to the partition leader, apply
    /// through the group's serial lane, majority commit (leader log write
    /// in parallel with follower round trips), reply.
    fn meta_phase(&self, client: usize, route_key: u64) -> Vec<Step> {
        let hw = &self.cfg.hw;
        let mp = self.meta_partition_of(route_key);
        let ln = self.mp_leader_node(mp);
        let followers = self.mp_followers(mp);

        let mut steps = Vec::new();
        steps.extend(control_hop(hw, self.client_nic[client], self.node_nic[ln]));
        steps.push(Step::svc(self.node_cpu[ln], self.cfg.meta_op_ns));
        steps.push(Step::svc(
            self.mp_lane[mp],
            self.cfg.raft_apply_ns + self.cfg.raft_group_serial_ns,
        ));

        // Majority commit: the leader's log write plus ANY ONE follower
        // round trip (quorum = 2 of 3 including the leader).
        let leader_log = vec![Step::svc(self.node_disk[ln], self.cfg.raft_log_write_ns)];
        let follower_branches: Vec<Vec<Step>> = followers
            .iter()
            .map(|&f| {
                let mut b = control_hop(hw, self.node_nic[ln], self.node_nic[f]);
                b.push(Step::svc(self.node_cpu[f], self.cfg.meta_op_ns / 2));
                b.push(Step::svc(self.node_disk[f], self.cfg.raft_log_write_ns));
                b.extend(control_hop(hw, self.node_nic[f], self.node_nic[ln]));
                b
            })
            .collect();
        steps.push(Step::All(vec![
            leader_log,
            vec![Step::Quorum {
                quorum: 1,
                branches: follower_branches,
            }],
        ]));
        steps.extend(control_hop(hw, self.node_nic[ln], self.client_nic[client]));
        steps
    }

    /// Leader-local metadata read (in memory, no disk — §4.3).
    fn meta_read(&self, client: usize, route_key: u64) -> Vec<Step> {
        let hw = &self.cfg.hw;
        let mp = self.meta_partition_of(route_key);
        let ln = self.mp_leader_node(mp);
        let mut steps = Vec::new();
        steps.extend(control_hop(hw, self.client_nic[client], self.node_nic[ln]));
        steps.push(Step::svc(self.node_cpu[ln], self.cfg.meta_op_ns));
        steps.extend(control_hop(hw, self.node_nic[ln], self.client_nic[client]));
        steps
    }

    fn fuse(&self, client: usize) -> Step {
        Step::svc(self.client_cpu[client], self.cfg.client_op_ns)
    }

    /// Compile one workload op into a plan.
    pub fn plan(&mut self, _now: SimTime, client: usize, op: &SimOp) -> Vec<Step> {
        let hw = self.cfg.hw.clone();
        match *op {
            SimOp::Create { dir, key } => {
                // Fig. 3a: inode on a random partition, dentry on the
                // parent's partition — two Raft commits.
                self.client_cache[client].touch(key);
                let mut steps = vec![self.fuse(client)];
                steps.extend(self.meta_phase(client, key));
                steps.extend(self.meta_phase(client, dir));
                steps
            }
            SimOp::Remove { dir, key } => {
                // Fig. 3c: dentry delete then nlink--, two commits.
                let mut steps = vec![self.fuse(client)];
                steps.extend(self.meta_phase(client, dir));
                steps.extend(self.meta_phase(client, key));
                steps
            }
            SimOp::Stat { key, .. } => {
                let hit = self.client_cache[client].touch(key);
                if hit {
                    // Served from the client cache (§2.4/§4.2).
                    vec![Step::svc(
                        self.client_cpu[client],
                        self.cfg.client_cached_op_ns,
                    )]
                } else {
                    let mut steps = vec![self.fuse(client)];
                    steps.extend(self.meta_read(client, key));
                    steps
                }
            }
            SimOp::Readdir {
                dir,
                first_key,
                entries,
            } => {
                // One scan + batchInodeGet per touched partition, all in
                // parallel; results warm the client cache (§4.2).
                let mut partitions: Vec<usize> = (0..entries)
                    .map(|i| self.meta_partition_of(first_key + i))
                    .collect();
                partitions.sort_unstable();
                partitions.dedup();
                for i in 0..entries {
                    self.client_cache[client].touch(first_key + i);
                }
                let mut steps = vec![self.fuse(client)];
                // The listing itself (dentry tree range scan).
                let dp = self.meta_partition_of(dir);
                let dn = self.mp_leader_node(dp);
                steps.extend(control_hop(&hw, self.client_nic[client], self.node_nic[dn]));
                steps.push(Step::svc(
                    self.node_cpu[dn],
                    self.cfg.meta_op_ns + entries * 200,
                ));
                steps.extend(hop(
                    &hw,
                    self.node_nic[dn],
                    self.client_nic[client],
                    entries * 64,
                ));
                // Batched inode fetches, one RPC per touched partition.
                let branches: Vec<Vec<Step>> = partitions
                    .iter()
                    .map(|&mp| {
                        let ln = self.mp_leader_node(mp);
                        let mut b = control_hop(&hw, self.client_nic[client], self.node_nic[ln]);
                        b.push(Step::svc(
                            self.node_cpu[ln],
                            self.cfg.meta_op_ns + (entries / partitions.len().max(1) as u64) * 300,
                        ));
                        b.extend(hop(
                            &hw,
                            self.node_nic[ln],
                            self.client_nic[client],
                            (entries / partitions.len().max(1) as u64) * 128,
                        ));
                        b
                    })
                    .collect();
                steps.push(Step::All(branches));
                steps
            }
            SimOp::TreeCreate {
                dir,
                first_key,
                width,
                depth,
            } => {
                // Sequential subtree build: each item resolves its parent
                // path (one uncached dentry lookup) then creates — the
                // dentry phase lands on the SHARED root's partition.
                let mut steps = vec![self.fuse(client)];
                for i in 0..width {
                    for _ in 0..depth.saturating_sub(1) {
                        steps.push(Step::svc(
                            self.client_cpu[client],
                            self.cfg.client_cached_op_ns,
                        ));
                    }
                    steps.extend(self.meta_read(client, dir)); // tail lookup
                    steps.extend(self.meta_phase(client, first_key + i));
                    steps.extend(self.meta_phase(client, dir));
                }
                steps
            }
            SimOp::TreeRemove {
                dir,
                first_key,
                width,
                depth,
            } => {
                let mut steps = vec![self.fuse(client)];
                for i in 0..width {
                    for _ in 0..depth.saturating_sub(1) {
                        steps.push(Step::svc(
                            self.client_cpu[client],
                            self.cfg.client_cached_op_ns,
                        ));
                    }
                    // Emptiness check is one leader read (range scan).
                    steps.extend(self.meta_read(client, first_key + i));
                    steps.extend(self.meta_phase(client, dir));
                    steps.extend(self.meta_phase(client, first_key + i));
                }
                steps
            }
            SimOp::SeqWrite { file, offset, len } => {
                // §2.7.1: packet to the PB leader, chain through the
                // replicas, acks back; extent sync to meta every Nth
                // packet.
                let (leader, followers) = self.data_nodes_of(file, offset);
                let mut steps = vec![self.fuse(client)];
                steps.extend(hop(
                    &hw,
                    self.client_nic[client],
                    self.node_nic[leader],
                    len,
                ));
                steps.push(Step::svc(self.node_disk[leader], disk_write_ns(&hw, len)));
                let mut prev = leader;
                for &f in &followers {
                    steps.extend(hop(&hw, self.node_nic[prev], self.node_nic[f], len));
                    steps.push(Step::svc(self.node_disk[f], disk_write_ns(&hw, len)));
                    prev = f;
                }
                // Acks ripple back up the chain.
                for _ in 0..followers.len() {
                    steps.push(Step::Delay(hw.net_oneway_ns));
                }
                steps.extend(control_hop(
                    &hw,
                    self.node_nic[leader],
                    self.client_nic[client],
                ));
                self.seq_counter[client] += 1;
                if self.seq_counter[client].is_multiple_of(self.cfg.meta_sync_every) {
                    steps.extend(self.meta_phase(client, file));
                }
                steps
            }
            SimOp::SeqRead { file, offset, len } => {
                let (leader, _) = self.data_nodes_of(file, offset);
                let mut steps = vec![self.fuse(client)];
                steps.extend(control_hop(
                    &hw,
                    self.client_nic[client],
                    self.node_nic[leader],
                ));
                steps.push(Step::svc(self.node_cpu[leader], 5_000));
                steps.push(Step::svc(self.node_disk[leader], disk_read_ns(&hw, len)));
                steps.extend(hop(
                    &hw,
                    self.node_nic[leader],
                    self.client_nic[client],
                    len,
                ));
                steps
            }
            SimOp::RandWrite { file, offset, len } => {
                // §2.2.4: Raft overwrite — in place, log-amplified, no
                // metadata update (§4.3 reason 2).
                let (leader, followers) = self.data_nodes_of(file, offset);
                let mut steps = vec![self.fuse(client)];
                steps.extend(hop(
                    &hw,
                    self.client_nic[client],
                    self.node_nic[leader],
                    len,
                ));
                steps.push(Step::svc(self.node_cpu[leader], 5_000));
                let leader_commit = vec![
                    Step::svc(self.node_disk[leader], self.cfg.raft_log_write_ns),
                    Step::svc(self.node_disk[leader], disk_write_ns(&hw, len)),
                ];
                let follower_branches: Vec<Vec<Step>> = followers
                    .iter()
                    .map(|&f| {
                        let mut b = hop(&hw, self.node_nic[leader], self.node_nic[f], len);
                        b.push(Step::svc(self.node_disk[f], self.cfg.raft_log_write_ns));
                        b.push(Step::svc(self.node_disk[f], disk_write_ns(&hw, len)));
                        b.extend(control_hop(&hw, self.node_nic[f], self.node_nic[leader]));
                        b
                    })
                    .collect();
                steps.push(Step::All(vec![
                    leader_commit,
                    vec![Step::Quorum {
                        quorum: 1,
                        branches: follower_branches,
                    }],
                ]));
                steps.extend(control_hop(
                    &hw,
                    self.node_nic[leader],
                    self.client_nic[client],
                ));
                steps
            }
            SimOp::RandRead { file, offset, len } => {
                // Client cache has the extent map; meta is in memory; the
                // data node reads exactly one block (CRCs cached, §2.2.1).
                let (leader, _) = self.data_nodes_of(file, offset);
                let mut steps = vec![self.fuse(client)];
                steps.extend(control_hop(
                    &hw,
                    self.client_nic[client],
                    self.node_nic[leader],
                ));
                steps.push(Step::svc(self.node_cpu[leader], 5_000));
                steps.push(Step::svc(self.node_disk[leader], disk_read_ns(&hw, len)));
                steps.extend(hop(
                    &hw,
                    self.node_nic[leader],
                    self.client_nic[client],
                    len,
                ));
                steps
            }
            SimOp::SmallWrite { dir, key, len } => {
                // create (2 phases) + single data RPC (no extent
                // allocation round trip, §4.4) + extent record (1 phase).
                self.client_cache[client].touch(key);
                let mut steps = vec![self.fuse(client)];
                steps.extend(self.meta_phase(client, key));
                steps.extend(self.meta_phase(client, dir));
                let (leader, followers) = self.data_nodes_of(key, 0);
                steps.extend(hop(
                    &hw,
                    self.client_nic[client],
                    self.node_nic[leader],
                    len,
                ));
                steps.push(Step::svc(self.node_disk[leader], disk_write_ns(&hw, len)));
                let mut prev = leader;
                for &f in &followers {
                    steps.extend(hop(&hw, self.node_nic[prev], self.node_nic[f], len));
                    steps.push(Step::svc(self.node_disk[f], disk_write_ns(&hw, len)));
                    prev = f;
                }
                steps.extend(control_hop(
                    &hw,
                    self.node_nic[leader],
                    self.client_nic[client],
                ));
                steps.extend(self.meta_phase(client, key));
                steps
            }
            SimOp::SmallRead { key, len, .. } => {
                // Metadata from memory (maybe client-cached), then one
                // data read at the recorded physical offset.
                let hit = self.client_cache[client].touch(key);
                let mut steps = vec![self.fuse(client)];
                if !hit {
                    steps.extend(self.meta_read(client, key));
                }
                let (leader, _) = self.data_nodes_of(key, 0);
                steps.extend(control_hop(
                    &hw,
                    self.client_nic[client],
                    self.node_nic[leader],
                ));
                steps.push(Step::svc(self.node_cpu[leader], 5_000));
                steps.push(Step::svc(self.node_disk[leader], disk_read_ns(&hw, len)));
                steps.extend(hop(
                    &hw,
                    self.node_nic[leader],
                    self.client_nic[client],
                    len,
                ));
                steps
            }
            SimOp::SmallRemove { dir, key } => {
                // Two metadata phases; the punch-hole happens off the
                // critical path (§2.2.3, §2.7.3).
                let mut steps = vec![self.fuse(client)];
                steps.extend(self.meta_phase(client, dir));
                steps.extend(self.meta_phase(client, key));
                steps
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_sim::run_plan;
    use std::cell::Cell;
    use std::rc::Rc;

    fn run_one(sim: &mut Sim, steps: Vec<Step>) -> SimTime {
        let at = Rc::new(Cell::new(0));
        let a2 = Rc::clone(&at);
        let start = sim.now();
        run_plan(sim, steps, move |s| a2.set(s.now()));
        sim.run(10_000_000);
        at.get() - start
    }

    #[test]
    fn create_costs_two_phases() {
        let mut sim = Sim::new(1);
        let mut m = CfsSim::new(&mut sim, CfsSimConfig::default(), 3);
        let create = run_one(&mut sim, m.plan(0, 0, &SimOp::Create { dir: 1, key: 2 }));
        let read = run_one(&mut sim, m.plan(0, 0, &SimOp::Stat { dir: 1, key: 999 }));
        assert!(
            create > read,
            "two replicated phases beat one read: {create} vs {read}"
        );
        // Create needs at least 4 one-way trips (two round trips).
        assert!(create >= 4 * m.cfg.hw.net_oneway_ns);
    }

    #[test]
    fn cached_stat_is_local() {
        let mut sim = Sim::new(1);
        let mut m = CfsSim::new(&mut sim, CfsSimConfig::default(), 3);
        let miss = run_one(&mut sim, m.plan(0, 0, &SimOp::Stat { dir: 1, key: 5 }));
        let hit = run_one(&mut sim, m.plan(0, 0, &SimOp::Stat { dir: 1, key: 5 }));
        assert!(hit < miss, "{hit} < {miss}");
        assert!(hit < m.cfg.hw.net_oneway_ns, "no network on a cache hit");
    }

    #[test]
    fn readdir_warms_client_cache() {
        let mut sim = Sim::new(1);
        let mut m = CfsSim::new(&mut sim, CfsSimConfig::default(), 3);
        let _ = run_one(
            &mut sim,
            m.plan(
                0,
                0,
                &SimOp::Readdir {
                    dir: 1,
                    first_key: 100,
                    entries: 50,
                },
            ),
        );
        let hit = run_one(&mut sim, m.plan(0, 0, &SimOp::Stat { dir: 1, key: 120 }));
        assert!(hit < m.cfg.hw.net_oneway_ns, "stat after readdir is local");
    }

    #[test]
    fn rand_write_has_log_amplification_but_no_meta_update() {
        let mut sim = Sim::new(1);
        let mut m = CfsSim::new(&mut sim, CfsSimConfig::default(), 3);
        let t = run_one(
            &mut sim,
            m.plan(
                0,
                0,
                &SimOp::RandWrite {
                    file: 9,
                    offset: 0,
                    len: 4096,
                },
            ),
        );
        let r = run_one(
            &mut sim,
            m.plan(
                0,
                0,
                &SimOp::RandRead {
                    file: 9,
                    offset: 0,
                    len: 4096,
                },
            ),
        );
        assert!(t > r, "write slower than read: {t} vs {r}");
    }

    #[test]
    fn seq_write_syncs_meta_periodically() {
        let mut sim = Sim::new(1);
        let mut m = CfsSim::new(&mut sim, CfsSimConfig::default(), 3);
        let mut latencies = Vec::new();
        for i in 0..(m.cfg.meta_sync_every * 2) {
            let t = run_one(
                &mut sim,
                m.plan(
                    0,
                    0,
                    &SimOp::SeqWrite {
                        file: 1,
                        offset: i * 131072,
                        len: 131072,
                    },
                ),
            );
            latencies.push(t);
        }
        let max = *latencies.iter().max().unwrap();
        let min = *latencies.iter().min().unwrap();
        assert!(max > min, "sync packets cost more: {latencies:?}");
    }

    #[test]
    fn plans_have_bounded_size() {
        let mut sim = Sim::new(1);
        let mut m = CfsSim::new(&mut sim, CfsSimConfig::default(), 3);
        let tree = m.plan(
            0,
            0,
            &SimOp::TreeCreate {
                dir: 7,
                first_key: 1,
                width: 64,
                depth: 3,
            },
        );
        assert!(tree.len() < 3_000, "tree plan size {}", tree.len());
    }
}
