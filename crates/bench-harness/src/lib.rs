//! Workload generators and experiment drivers for the paper's evaluation.
//!
//! Everything in §4 of the paper is regenerated here on the simulated
//! Table-1 cluster:
//!
//! * [`CfsSim`]: the CFS protocol model (metadata over MultiRaft
//!   partitions, chain-replicated appends, Raft overwrites, client
//!   caches) compiled to [`cfs_sim::Step`] plans;
//! * [`ceph_baseline::CephCluster`], adapted through the same
//!   [`SystemSim`] interface;
//! * [`workload`]: the mdtest seven-test metadata suite (Table 2), the
//!   fio-like large-file patterns, and the small-file suite;
//! * [`driver`]: closed-loop processes over virtual time, reporting IOPS;
//! * [`experiments`]: one function per paper table/figure, returning the
//!   rows the `bench` crate prints.

pub mod cfs_model;
pub mod driver;
pub mod experiments;
pub mod workload;

pub use cfs_model::{CfsSim, CfsSimConfig};
pub use driver::{run_closed_loop, SystemSim};
pub use workload::{SimOp, Workload};
