//! Closed-loop workload driver over virtual time.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use ceph_baseline::CephCluster;
use cfs_sim::{run_plan, Sim, SimTime, Step};

use crate::cfs_model::CfsSim;
use crate::workload::{SimOp, Workload};

/// A system under test: compiles ops to plans.
pub trait SystemSim {
    /// Plan one op issued by `client` at virtual time `now`.
    fn plan_op(&mut self, now: SimTime, client: usize, op: &SimOp) -> Vec<Step>;
}

impl SystemSim for CfsSim {
    fn plan_op(&mut self, now: SimTime, client: usize, op: &SimOp) -> Vec<Step> {
        self.plan(now, client, op)
    }
}

impl SystemSim for CephCluster {
    fn plan_op(&mut self, now: SimTime, client: usize, op: &SimOp) -> Vec<Step> {
        match *op {
            SimOp::Create { dir, key } => self.plan_create(now, client, dir, key),
            SimOp::Stat { dir, key } => self.plan_stat(now, client, dir, key),
            SimOp::Readdir { dir, entries, .. } => self.plan_readdir(now, client, dir, entries),
            SimOp::Remove { dir, key } => self.plan_remove(now, client, dir, key),
            SimOp::TreeCreate {
                dir,
                first_key,
                width,
                depth,
            } => {
                // Directory locality: path components live on the same
                // MDS, so resolution is a cheap cached stat; creates all
                // hit that one MDS (and its journal).
                let mut steps = Vec::new();
                for i in 0..width {
                    for _ in 0..depth.saturating_sub(1) {
                        steps.extend(self.plan_stat(now, client, dir, dir));
                    }
                    steps.extend(self.plan_create(now, client, dir, first_key + i));
                }
                steps
            }
            SimOp::TreeRemove {
                dir,
                first_key,
                width,
                depth,
            } => {
                // Readdir + per-inode gets + removals, queued at the
                // subtree's MDS (§4.2: deletions queue at a single MDS).
                let mut steps = self.plan_readdir(now, client, dir, width);
                for i in 0..width {
                    for _ in 0..depth.saturating_sub(1) {
                        steps.extend(self.plan_stat(now, client, dir, dir));
                    }
                    steps.extend(self.plan_stat(now, client, dir, first_key + i));
                    steps.extend(self.plan_remove(now, client, dir, first_key + i));
                }
                steps
            }
            SimOp::SeqWrite { file, offset, len } | SimOp::RandWrite { file, offset, len } => {
                self.plan_write(client, file, offset, len)
            }
            SimOp::SeqRead { file, offset, len } | SimOp::RandRead { file, offset, len } => {
                self.plan_read(client, file, offset, len)
            }
            SimOp::SmallWrite { dir, key, len } => {
                // MDS create + object write (each small file is an object).
                let mut steps = self.plan_create(now, client, dir, key);
                steps.extend(self.plan_write(client, key, 0, len));
                steps
            }
            SimOp::SmallRead { dir, key, len } => {
                // MDS lookup (inodeGet) + object read.
                let mut steps = self.plan_stat(now, client, dir, key);
                steps.extend(self.plan_read(client, key, 0, len));
                steps
            }
            SimOp::SmallRemove { dir, key } => {
                // MDS journal + synchronous object deletion commit.
                let mut steps = self.plan_remove(now, client, dir, key);
                steps.extend(self.plan_write(client, key, 0, 0));
                steps
            }
        }
    }
}

/// Run `clients × procs` closed-loop processes for `duration_ns` of
/// virtual time (after `warmup_ns`); returns items/sec (IOPS).
///
/// Every process draws ops from its own [`Workload`] stream and issues the
/// next op the moment the previous completes — exactly mdtest/fio
/// semantics with one outstanding op per process.
pub fn run_closed_loop<S, W, MkS, MkW>(
    make_system: MkS,
    make_workload: MkW,
    clients: usize,
    procs_per_client: usize,
    warmup_ns: SimTime,
    duration_ns: SimTime,
    seed: u64,
) -> f64
where
    S: SystemSim + 'static,
    W: Workload + 'static,
    MkS: FnOnce(&mut Sim) -> S,
    MkW: Fn(usize, usize) -> W,
{
    let mut sim = Sim::new(seed);
    let system = Rc::new(RefCell::new(make_system(&mut sim)));
    let completed_items = Rc::new(Cell::new(0u64));
    let deadline = warmup_ns + duration_ns;

    for client in 0..clients {
        for proc_idx in 0..procs_per_client {
            let workload = Rc::new(RefCell::new(make_workload(client, proc_idx)));
            issue_next(
                &mut sim,
                Rc::clone(&system),
                workload,
                client,
                warmup_ns,
                deadline,
                Rc::clone(&completed_items),
            );
        }
    }
    sim.run_until(deadline);
    completed_items.get() as f64 * 1e9 / duration_ns as f64
}

fn issue_next<S: SystemSim + 'static>(
    sim: &mut Sim,
    system: Rc<RefCell<S>>,
    workload: Rc<RefCell<dyn Workload>>,
    client: usize,
    warmup_ns: SimTime,
    deadline: SimTime,
    completed: Rc<Cell<u64>>,
) {
    let op = workload.borrow_mut().next_op();
    let items = op.items();
    let plan = system.borrow_mut().plan_op(sim.now(), client, &op);
    run_plan(sim, plan, move |s| {
        if s.now() >= warmup_ns && s.now() < deadline {
            completed.set(completed.get() + items);
        }
        if s.now() < deadline {
            issue_next(s, system, workload, client, warmup_ns, deadline, completed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfs_model::CfsSimConfig;
    use crate::workload::{MdTest, MdTestWorkload};
    use ceph_baseline::CephConfig;

    fn cfs_iops(test: MdTest, clients: usize, procs: usize) -> f64 {
        run_closed_loop(
            |sim| CfsSim::new(sim, CfsSimConfig::default(), 1),
            move |c, p| MdTestWorkload::new(test, c, p, 100),
            clients,
            procs,
            20_000_000,
            200_000_000,
            7,
        )
    }

    #[test]
    fn closed_loop_reports_positive_iops() {
        let iops = cfs_iops(MdTest::FileCreation, 1, 1);
        assert!(iops > 100.0, "{iops}");
        assert!(iops < 10_000_000.0, "{iops}");
    }

    #[test]
    fn more_processes_scale_until_saturation() {
        let one = cfs_iops(MdTest::FileCreation, 1, 1);
        let many = cfs_iops(MdTest::FileCreation, 1, 16);
        assert!(many > one * 4.0, "16 procs ≥ 4x of 1 proc: {one} -> {many}");
    }

    #[test]
    fn ceph_adapter_runs_all_op_kinds() {
        let mut sim = Sim::new(3);
        let mut ceph = CephCluster::new(&mut sim, CephConfig::default(), 3);
        let ops = [
            SimOp::Create { dir: 1, key: 2 },
            SimOp::Stat { dir: 1, key: 2 },
            SimOp::Readdir {
                dir: 1,
                first_key: 2,
                entries: 10,
            },
            SimOp::Remove { dir: 1, key: 2 },
            SimOp::TreeCreate {
                dir: 1,
                first_key: 10,
                width: 4,
                depth: 2,
            },
            SimOp::TreeRemove {
                dir: 1,
                first_key: 10,
                width: 4,
                depth: 2,
            },
            SimOp::SeqWrite {
                file: 1,
                offset: 0,
                len: 131072,
            },
            SimOp::SeqRead {
                file: 1,
                offset: 0,
                len: 131072,
            },
            SimOp::RandWrite {
                file: 1,
                offset: 4096,
                len: 4096,
            },
            SimOp::RandRead {
                file: 1,
                offset: 4096,
                len: 4096,
            },
            SimOp::SmallWrite {
                dir: 1,
                key: 3,
                len: 1024,
            },
            SimOp::SmallRead {
                dir: 1,
                key: 3,
                len: 1024,
            },
            SimOp::SmallRemove { dir: 1, key: 3 },
        ];
        for op in &ops {
            let plan = ceph.plan_op(0, 0, op);
            assert!(!plan.is_empty(), "{op:?}");
            run_plan(&mut sim, plan, |_| {});
            sim.run(1_000_000);
        }
    }
}
