//! Workload generators: mdtest (Table 2), fio-like, and small files.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One simulated file-system operation issued by a workload process.
#[derive(Debug, Clone)]
pub enum SimOp {
    /// Create a file or directory `key` under `dir`.
    Create { dir: u64, key: u64 },
    /// Stat `key` (a file under `dir`).
    Stat { dir: u64, key: u64 },
    /// List `dir` with `entries` entries (keys `first_key..first_key+entries`).
    Readdir {
        dir: u64,
        first_key: u64,
        entries: u64,
    },
    /// Remove `key` under `dir`.
    Remove { dir: u64, key: u64 },
    /// Create a whole subtree of `width` directories, each create
    /// resolving a path of `depth` components (mdtest tree tests).
    TreeCreate {
        dir: u64,
        first_key: u64,
        width: u64,
        depth: u64,
    },
    /// Remove a subtree (listing + removals).
    TreeRemove {
        dir: u64,
        first_key: u64,
        width: u64,
        depth: u64,
    },
    /// Sequential write of `len` at `offset` of `file`.
    SeqWrite { file: u64, offset: u64, len: u64 },
    /// Sequential read.
    SeqRead { file: u64, offset: u64, len: u64 },
    /// Random in-place write.
    RandWrite { file: u64, offset: u64, len: u64 },
    /// Random read.
    RandRead { file: u64, offset: u64, len: u64 },
    /// Small-file write: create + single-RPC data write (§4.4).
    SmallWrite { dir: u64, key: u64, len: u64 },
    /// Small-file read: lookup + data read.
    SmallRead { dir: u64, key: u64, len: u64 },
    /// Small-file removal.
    SmallRemove { dir: u64, key: u64 },
}

impl SimOp {
    /// How many workload items this op counts as (mdtest counts per-item
    /// IOPS; a tree op covers `width` items).
    pub fn items(&self) -> u64 {
        match self {
            SimOp::TreeCreate { width, .. } | SimOp::TreeRemove { width, .. } => *width,
            _ => 1,
        }
    }
}

/// A per-process operation stream.
pub trait Workload: Send {
    /// The next operation for this process.
    fn next_op(&mut self) -> SimOp;
}

/// Unique-per-process key space so the streams never collide.
fn proc_base(client: usize, proc_idx: usize) -> u64 {
    1_000_000u64 + (client as u64) * 10_000_000 + (proc_idx as u64) * 50_000
}

/// The fio file id used by process `(client, proc_idx)` — exposed so
/// experiments can pre-warm caches for exactly these files.
pub fn proc_file_id(client: usize, proc_idx: usize) -> u64 {
    proc_base(client, proc_idx)
}

/// The seven mdtest metadata tests (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdTest {
    DirCreation,
    DirStat,
    DirRemoval,
    FileCreation,
    FileRemoval,
    TreeCreation,
    TreeRemoval,
}

impl MdTest {
    /// All seven, in the paper's order.
    pub const ALL: [MdTest; 7] = [
        MdTest::DirCreation,
        MdTest::DirStat,
        MdTest::DirRemoval,
        MdTest::FileCreation,
        MdTest::FileRemoval,
        MdTest::TreeCreation,
        MdTest::TreeRemoval,
    ];

    /// Table-2 test name.
    pub fn name(&self) -> &'static str {
        match self {
            MdTest::DirCreation => "DirCreation",
            MdTest::DirStat => "DirStat",
            MdTest::DirRemoval => "DirRemoval",
            MdTest::FileCreation => "FileCreation",
            MdTest::FileRemoval => "FileRemoval",
            MdTest::TreeCreation => "TreeCreation",
            MdTest::TreeRemoval => "TreeRemoval",
        }
    }
}

/// mdtest stream for one process: each process owns a working directory
/// with `files_per_dir` entries (the multi-client setup binds different
/// directories to different servers, §4.2/§4.4).
pub struct MdTestWorkload {
    test: MdTest,
    dir: u64,
    base: u64,
    files_per_dir: u64,
    cursor: u64,
    /// DirStat interleaves one readdir per pass over the files.
    stat_phase: u64,
}

impl MdTestWorkload {
    /// Stream for `(client, proc_idx)`.
    pub fn new(test: MdTest, client: usize, proc_idx: usize, files_per_dir: u64) -> Self {
        let base = proc_base(client, proc_idx);
        MdTestWorkload {
            test,
            dir: base, // the process's working directory id
            base: base + 1,
            files_per_dir,
            cursor: 0,
            stat_phase: 0,
        }
    }
}

impl Workload for MdTestWorkload {
    fn next_op(&mut self) -> SimOp {
        let i = self.cursor;
        self.cursor += 1;
        match self.test {
            // Unique directory per op under the proc's working dir.
            MdTest::DirCreation => SimOp::Create {
                dir: self.dir,
                key: self.base + i,
            },
            MdTest::DirRemoval => SimOp::Remove {
                dir: self.dir,
                key: self.base + i,
            },
            MdTest::FileCreation => SimOp::Create {
                dir: self.dir,
                key: self.base + i,
            },
            MdTest::FileRemoval => SimOp::Remove {
                dir: self.dir,
                key: self.base + i,
            },
            // List all files, then stat each one; repeat.
            MdTest::DirStat => {
                let phase = self.stat_phase;
                self.stat_phase = (self.stat_phase + 1) % (self.files_per_dir + 1);
                if phase == 0 {
                    SimOp::Readdir {
                        dir: self.dir,
                        first_key: self.base,
                        entries: self.files_per_dir,
                    }
                } else {
                    SimOp::Stat {
                        dir: self.dir,
                        key: self.base + (phase - 1),
                    }
                }
            }
            // Tree phase: every process works under the SAME tree root
            // (mdtest stresses directories as non-leaf nodes), which
            // concentrates load on one MDS / one dentry partition. One op
            // = one directory of the tree, with depth-3 path resolution.
            MdTest::TreeCreation => SimOp::TreeCreate {
                dir: 777, // shared tree root
                first_key: self.base + i,
                width: 1,
                depth: 3,
            },
            MdTest::TreeRemoval => SimOp::TreeRemove {
                dir: 777,
                first_key: self.base + i,
                width: 1,
                depth: 3,
            },
        }
    }
}

/// fio-like access pattern for one process over its own 40 GB file (§4.3).
pub struct FioWorkload {
    file: u64,
    file_size: u64,
    block: u64,
    pattern: FioPattern,
    offset: u64,
    rng: SmallRng,
}

/// The four fio patterns of Figures 8–9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FioPattern {
    SeqWrite,
    SeqRead,
    RandWrite,
    RandRead,
}

impl FioPattern {
    /// Figure label.
    pub fn name(&self) -> &'static str {
        match self {
            FioPattern::SeqWrite => "Sequential Write",
            FioPattern::SeqRead => "Sequential Read",
            FioPattern::RandWrite => "Random Write",
            FioPattern::RandRead => "Random Read",
        }
    }
}

impl FioWorkload {
    /// Stream for `(client, proc_idx)`: a separate 40 GB file each, 128 KB
    /// blocks for sequential access (packet-aligned) and 4 KB for random.
    pub fn new(pattern: FioPattern, client: usize, proc_idx: usize) -> Self {
        let block = match pattern {
            FioPattern::SeqWrite | FioPattern::SeqRead => 128 * 1024,
            FioPattern::RandWrite | FioPattern::RandRead => 4 * 1024,
        };
        FioWorkload {
            file: proc_base(client, proc_idx),
            file_size: 40 * 1024 * 1024 * 1024,
            block,
            pattern,
            offset: 0,
            rng: SmallRng::seed_from_u64(proc_base(client, proc_idx)),
        }
    }
}

impl Workload for FioWorkload {
    fn next_op(&mut self) -> SimOp {
        match self.pattern {
            FioPattern::SeqWrite | FioPattern::SeqRead => {
                let off = self.offset;
                self.offset = (self.offset + self.block) % self.file_size;
                match self.pattern {
                    FioPattern::SeqWrite => SimOp::SeqWrite {
                        file: self.file,
                        offset: off,
                        len: self.block,
                    },
                    _ => SimOp::SeqRead {
                        file: self.file,
                        offset: off,
                        len: self.block,
                    },
                }
            }
            FioPattern::RandWrite | FioPattern::RandRead => {
                let blocks = self.file_size / self.block;
                let off = self.rng.gen_range(0..blocks) * self.block;
                match self.pattern {
                    FioPattern::RandWrite => SimOp::RandWrite {
                        file: self.file,
                        offset: off,
                        len: self.block,
                    },
                    _ => SimOp::RandRead {
                        file: self.file,
                        offset: off,
                        len: self.block,
                    },
                }
            }
        }
    }
}

/// Small-file suite (Figure 10): write / read / removal of `size`-byte
/// files, the product-image use case (write-once, read-many).
pub struct SmallFileWorkload {
    mode: SmallMode,
    dir: u64,
    base: u64,
    size: u64,
    population: u64,
    cursor: u64,
    rng: SmallRng,
}

/// Which small-file figure panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmallMode {
    Write,
    Read,
    Removal,
}

impl SmallFileWorkload {
    /// Stream for `(client, proc_idx)` at one file size.
    pub fn new(mode: SmallMode, client: usize, proc_idx: usize, size: u64) -> Self {
        let base = proc_base(client, proc_idx);
        SmallFileWorkload {
            mode,
            dir: base,
            base: base + 1,
            size,
            population: 10_000,
            cursor: 0,
            rng: SmallRng::seed_from_u64(base ^ size),
        }
    }
}

impl Workload for SmallFileWorkload {
    fn next_op(&mut self) -> SimOp {
        let i = self.cursor;
        self.cursor += 1;
        match self.mode {
            SmallMode::Write => SimOp::SmallWrite {
                dir: self.dir,
                key: self.base + i,
                len: self.size,
            },
            SmallMode::Read => SimOp::SmallRead {
                dir: self.dir,
                key: self.base + self.rng.gen_range(0..self.population),
                len: self.size,
            },
            SmallMode::Removal => SimOp::SmallRemove {
                dir: self.dir,
                key: self.base + i,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mdtest_streams_are_disjoint_across_procs() {
        let mut a = MdTestWorkload::new(MdTest::FileCreation, 0, 0, 100);
        let mut b = MdTestWorkload::new(MdTest::FileCreation, 0, 1, 100);
        let ka = match a.next_op() {
            SimOp::Create { key, .. } => key,
            _ => panic!(),
        };
        let kb = match b.next_op() {
            SimOp::Create { key, .. } => key,
            _ => panic!(),
        };
        assert_ne!(ka, kb);
    }

    #[test]
    fn dirstat_interleaves_readdir_then_stats() {
        let mut w = MdTestWorkload::new(MdTest::DirStat, 0, 0, 3);
        assert!(matches!(w.next_op(), SimOp::Readdir { entries: 3, .. }));
        for _ in 0..3 {
            assert!(matches!(w.next_op(), SimOp::Stat { .. }));
        }
        assert!(matches!(w.next_op(), SimOp::Readdir { .. }), "next pass");
    }

    #[test]
    fn tree_ops_share_one_root() {
        let mut w = MdTestWorkload::new(MdTest::TreeCreation, 0, 0, 100);
        let op = w.next_op();
        assert_eq!(op.items(), 1);
        assert!(
            matches!(op, SimOp::TreeCreate { dir: 777, .. }),
            "shared root"
        );
        let mut w2 = MdTestWorkload::new(MdTest::TreeCreation, 1, 0, 100);
        assert!(matches!(w2.next_op(), SimOp::TreeCreate { dir: 777, .. }));
    }

    #[test]
    fn fio_seq_walks_forward_rand_jumps() {
        let mut seq = FioWorkload::new(FioPattern::SeqWrite, 0, 0);
        let (o1, o2) = match (seq.next_op(), seq.next_op()) {
            (SimOp::SeqWrite { offset: a, .. }, SimOp::SeqWrite { offset: b, .. }) => (a, b),
            _ => panic!(),
        };
        assert_eq!(o2 - o1, 128 * 1024);

        let mut rand = FioWorkload::new(FioPattern::RandRead, 0, 0);
        let offs: Vec<u64> = (0..10)
            .map(|_| match rand.next_op() {
                SimOp::RandRead { offset, len, .. } => {
                    assert_eq!(len, 4096);
                    offset
                }
                _ => panic!(),
            })
            .collect();
        let mut sorted = offs.clone();
        sorted.sort_unstable();
        assert_ne!(offs, sorted, "random offsets are not monotonic");
        assert!(offs.iter().all(|o| o % 4096 == 0));
    }

    #[test]
    fn small_file_modes() {
        let mut w = SmallFileWorkload::new(SmallMode::Write, 1, 2, 8192);
        assert!(matches!(w.next_op(), SimOp::SmallWrite { len: 8192, .. }));
        let mut r = SmallFileWorkload::new(SmallMode::Read, 1, 2, 8192);
        assert!(matches!(r.next_op(), SimOp::SmallRead { .. }));
        let mut d = SmallFileWorkload::new(SmallMode::Removal, 1, 2, 8192);
        assert!(matches!(d.next_op(), SimOp::SmallRemove { .. }));
    }
}
