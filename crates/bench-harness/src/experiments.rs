//! One function per paper table/figure, returning printable rows.
//!
//! Every experiment runs both systems over the same simulated Table-1
//! cluster and reports IOPS in virtual time. Durations are chosen so each
//! cell converges; `quick` mode shortens them for CI-style runs.

use cfs_sim::SimTime;

use ceph_baseline::{CephCluster, CephConfig};

use crate::cfs_model::{CfsSim, CfsSimConfig};
use crate::driver::run_closed_loop;
use crate::workload::{
    FioPattern, FioWorkload, MdTest, MdTestWorkload, SmallFileWorkload, SmallMode,
};

/// Files per process working directory in the metadata tests.
const FILES_PER_DIR: u64 = 100;

/// One (x, CFS, Ceph) measurement.
#[derive(Debug, Clone)]
pub struct Cell {
    pub test: String,
    pub x_label: &'static str,
    pub x: u64,
    pub cfs_iops: f64,
    pub ceph_iops: f64,
}

impl Cell {
    /// The paper's "% of Improv." column.
    pub fn improvement_pct(&self) -> f64 {
        if self.ceph_iops == 0.0 {
            return 0.0;
        }
        (self.cfs_iops - self.ceph_iops) / self.ceph_iops * 100.0
    }
}

fn durations(test: MdTest, quick: bool) -> (SimTime, SimTime) {
    let scale = if quick { 4 } else { 1 };
    match test {
        // The shared-root tree phase is heavily queued: give it a longer
        // window so per-op completions accumulate.
        MdTest::TreeCreation | MdTest::TreeRemoval => (200_000_000 / scale, 2_000_000_000 / scale),
        _ => (100_000_000 / scale, 1_000_000_000 / scale),
    }
}

fn md_cell(test: MdTest, clients: usize, procs: usize, quick: bool) -> Cell {
    let (warmup, duration) = durations(test, quick);
    let cfs = run_closed_loop(
        |sim| CfsSim::new(sim, CfsSimConfig::default(), 42),
        move |c, p| MdTestWorkload::new(test, c, p, FILES_PER_DIR),
        clients,
        procs,
        warmup,
        duration,
        1,
    );
    let ceph = run_closed_loop(
        |sim| CephCluster::new(sim, CephConfig::default(), 42),
        move |c, p| MdTestWorkload::new(test, c, p, FILES_PER_DIR),
        clients,
        procs,
        warmup,
        duration,
        1,
    );
    Cell {
        test: test.name().to_string(),
        x_label: if clients == 1 { "procs" } else { "clients" },
        x: if clients == 1 {
            procs as u64
        } else {
            clients as u64
        },
        cfs_iops: cfs,
        ceph_iops: ceph,
    }
}

/// Table 3: the 7 metadata tests at 8 clients × 64 processes.
pub fn table3(quick: bool) -> Vec<Cell> {
    MdTest::ALL
        .iter()
        .map(|&t| md_cell(t, 8, 64, quick))
        .collect()
}

/// Figure 6: single client, 1/4/16/64 processes, all 7 tests.
pub fn fig6(quick: bool) -> Vec<Cell> {
    let mut rows = Vec::new();
    for &t in &MdTest::ALL {
        for &procs in &[1usize, 4, 16, 64] {
            rows.push(md_cell(t, 1, procs, quick));
        }
    }
    rows
}

/// Figure 7: 1/2/4/8 clients × 64 processes, all 7 tests.
pub fn fig7(quick: bool) -> Vec<Cell> {
    let mut rows = Vec::new();
    for &t in &MdTest::ALL {
        for &clients in &[1usize, 2, 4, 8] {
            rows.push(md_cell(t, clients, 64, quick));
        }
    }
    rows
}

fn fio_cell(pattern: FioPattern, clients: usize, procs: usize, quick: bool) -> Cell {
    let scale = if quick { 4 } else { 1 };
    let (warmup, duration) = (100_000_000 / scale, 1_000_000_000 / scale);
    // 10 Gbps NICs for the large-file experiments (see EXPERIMENTS.md).
    let fast = cfs_sim::HardwareModel::fast_network();
    let cfs_cfg = CfsSimConfig {
        hw: fast.clone(),
        ..CfsSimConfig::default()
    };
    let ceph_cfg = CephConfig {
        hw: fast,
        ..CephConfig::default()
    };
    let cfs = run_closed_loop(
        move |sim| CfsSim::new(sim, cfs_cfg, 42),
        move |c, p| FioWorkload::new(pattern, c, p),
        clients,
        procs,
        warmup,
        duration,
        2,
    );
    let ceph = run_closed_loop(
        move |sim| {
            let mut ceph = CephCluster::new(sim, ceph_cfg, 42);
            // fio preconditions the files before measuring: warm each
            // process's object metadata so low-concurrency runs start from
            // a resident working set (it is the *capacity* that matters).
            for c in 0..clients {
                for p in 0..procs {
                    ceph.prewarm_file(crate::workload::proc_file_id(c, p), 40 << 30);
                }
            }
            ceph
        },
        move |c, p| FioWorkload::new(pattern, c, p),
        clients,
        procs,
        warmup,
        duration,
        2,
    );
    Cell {
        test: pattern.name().to_string(),
        x_label: if clients == 1 { "procs" } else { "clients" },
        x: if clients == 1 {
            procs as u64
        } else {
            clients as u64
        },
        cfs_iops: cfs,
        ceph_iops: ceph,
    }
}

/// Figure 8: single client, 1–64 processes, four fio patterns, 40 GB/proc.
pub fn fig8(quick: bool) -> Vec<Cell> {
    let mut rows = Vec::new();
    for &p in &[
        FioPattern::SeqWrite,
        FioPattern::SeqRead,
        FioPattern::RandWrite,
        FioPattern::RandRead,
    ] {
        for &procs in &[1usize, 2, 4, 8, 16, 32, 64] {
            rows.push(fio_cell(p, 1, procs, quick));
        }
    }
    rows
}

/// Figure 9: 1–8 clients; 64 procs for random, 16 for sequential.
pub fn fig9(quick: bool) -> Vec<Cell> {
    let mut rows = Vec::new();
    for &p in &[
        FioPattern::RandWrite,
        FioPattern::RandRead,
        FioPattern::SeqWrite,
        FioPattern::SeqRead,
    ] {
        let procs = match p {
            FioPattern::SeqWrite | FioPattern::SeqRead => 16,
            _ => 64,
        };
        for clients in 1usize..=8 {
            rows.push(fio_cell(p, clients, procs, quick));
        }
    }
    rows
}

/// Figure 10: small files 1–128 KB, 8 clients × 64 processes,
/// write / read / removal.
pub fn fig10(quick: bool) -> Vec<Cell> {
    let scale = if quick { 4 } else { 1 };
    let (warmup, duration) = (100_000_000 / scale, 1_000_000_000 / scale);
    // Like Figures 8-9, the paper's measured IOPS at the larger sizes
    // exceed 8 x 1 Gbps; run on the fast-network hardware variant.
    let fast = cfs_sim::HardwareModel::fast_network();
    let cfs_cfg = CfsSimConfig {
        hw: fast.clone(),
        ..CfsSimConfig::default()
    };
    let ceph_cfg = CephConfig {
        hw: fast,
        ..CephConfig::default()
    };
    let mut rows = Vec::new();
    for &(mode, name) in &[
        (SmallMode::Write, "File Write"),
        (SmallMode::Read, "File Read"),
        (SmallMode::Removal, "File Removal"),
    ] {
        for &kb in &[1u64, 2, 4, 8, 16, 32, 64, 128] {
            let size = kb * 1024;
            let cfs_cfg = cfs_cfg.clone();
            let ceph_cfg = ceph_cfg.clone();
            let cfs = run_closed_loop(
                move |sim| CfsSim::new(sim, cfs_cfg, 42),
                move |c, p| SmallFileWorkload::new(mode, c, p, size),
                8,
                64,
                warmup,
                duration,
                3,
            );
            let ceph = run_closed_loop(
                move |sim| CephCluster::new(sim, ceph_cfg, 42),
                move |c, p| SmallFileWorkload::new(mode, c, p, size),
                8,
                64,
                warmup,
                duration,
                3,
            );
            rows.push(Cell {
                test: name.to_string(),
                x_label: "KB",
                x: kb,
                cfs_iops: cfs,
                ceph_iops: ceph,
            });
        }
    }
    rows
}

/// Render cells as an aligned text table grouped by test name.
pub fn render(title: &str, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let mut current = "";
    for c in cells {
        if c.test != current {
            current = &c.test;
            out.push_str(&format!(
                "\n{:<18} {:>8} {:>14} {:>14} {:>10}\n",
                c.test, c.x_label, "CFS IOPS", "Ceph IOPS", "% improv"
            ));
        }
        out.push_str(&format!(
            "{:<18} {:>8} {:>14.0} {:>14.0} {:>9.0}%\n",
            "",
            c.x,
            c.cfs_iops,
            c.ceph_iops,
            c.improvement_pct()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shapes_match_paper() {
        // Quick mode keeps this test affordable; the shape assertions are
        // the paper's qualitative results.
        let rows = table3(true);
        let get = |name: &str| rows.iter().find(|c| c.test == name).unwrap().clone();

        // CFS beats Ceph at 8 clients × 64 procs for the bread-and-butter
        // metadata ops (Table 3: 122%–862% improvements).
        for t in [
            "DirCreation",
            "DirStat",
            "DirRemoval",
            "FileCreation",
            "FileRemoval",
        ] {
            let c = get(t);
            assert!(
                c.cfs_iops > c.ceph_iops,
                "{t}: CFS {:.0} vs Ceph {:.0}",
                c.cfs_iops,
                c.ceph_iops
            );
        }
        // DirStat is the headline: client caching + batchInodeGet (862%).
        let ds = get("DirStat");
        assert!(
            ds.cfs_iops > 3.0 * ds.ceph_iops,
            "DirStat: {:.0} vs {:.0}",
            ds.cfs_iops,
            ds.ceph_iops
        );
        // TreeRemoval favors CFS; TreeCreation is roughly level (within
        // 2x either way, paper: -9%).
        let tr = get("TreeRemoval");
        assert!(tr.cfs_iops > tr.ceph_iops, "{tr:?}");
        let tc = get("TreeCreation");
        assert!(
            tc.cfs_iops < 2.0 * tc.ceph_iops && tc.ceph_iops < 4.0 * tc.cfs_iops,
            "TreeCreation roughly level: {tc:?}"
        );
    }

    #[test]
    fn fig6_low_concurrency_favors_ceph_on_creates() {
        let c = md_cell(MdTest::FileCreation, 1, 1, true);
        assert!(
            c.ceph_iops > c.cfs_iops,
            "1 client × 1 proc: Ceph wins creates ({:.0} vs {:.0})",
            c.ceph_iops,
            c.cfs_iops
        );
        // …but CFS catches up with concurrency (crossover by 8×64 per
        // Table 3; here check the trend at 64 procs).
        let c64 = md_cell(MdTest::FileCreation, 1, 64, true);
        let ratio1 = c.cfs_iops / c.ceph_iops;
        let ratio64 = c64.cfs_iops / c64.ceph_iops;
        assert!(
            ratio64 > ratio1,
            "CFS gains with procs: {ratio1:.2} -> {ratio64:.2}"
        );
    }

    #[test]
    fn random_io_advantage_appears_at_high_concurrency() {
        let low = fio_cell(FioPattern::RandRead, 1, 1, true);
        let high = fio_cell(FioPattern::RandRead, 1, 64, true);
        let low_ratio = low.cfs_iops / low.ceph_iops;
        let high_ratio = high.cfs_iops / high.ceph_iops;
        assert!(
            high_ratio > low_ratio,
            "rand-read ratio grows with procs: {low_ratio:.2} -> {high_ratio:.2}"
        );
        assert!(high.cfs_iops > high.ceph_iops, "{high:?}");
    }

    #[test]
    fn small_file_ops_favor_cfs() {
        // One size is enough for the unit test; full sweep in the bench.
        let scale_probe = |mode, size: u64| {
            let cfs = run_closed_loop(
                |sim| CfsSim::new(sim, CfsSimConfig::default(), 42),
                move |c, p| SmallFileWorkload::new(mode, c, p, size),
                8,
                64,
                25_000_000,
                250_000_000,
                3,
            );
            let ceph = run_closed_loop(
                |sim| CephCluster::new(sim, CephConfig::default(), 42),
                move |c, p| SmallFileWorkload::new(mode, c, p, size),
                8,
                64,
                25_000_000,
                250_000_000,
                3,
            );
            (cfs, ceph)
        };
        let (cfs_w, ceph_w) = scale_probe(SmallMode::Write, 1024);
        assert!(cfs_w > ceph_w, "small write: {cfs_w:.0} vs {ceph_w:.0}");
        let (cfs_r, ceph_r) = scale_probe(SmallMode::Read, 1024);
        assert!(cfs_r > ceph_r, "small read: {cfs_r:.0} vs {ceph_r:.0}");
    }

    #[test]
    fn render_formats_rows() {
        let cells = vec![Cell {
            test: "FileCreation".into(),
            x_label: "procs",
            x: 64,
            cfs_iops: 1000.0,
            ceph_iops: 500.0,
        }];
        let s = render("Table 3", &cells);
        assert!(s.contains("FileCreation"));
        assert!(s.contains("100%"));
    }
}
