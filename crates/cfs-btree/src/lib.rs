//! Copy-on-write ordered B+ tree.
//!
//! The paper's meta partitions keep all inodes and dentries in memory in two
//! b-trees — `inodeTree` indexed by inode id and `dentryTree` indexed by
//! `(parent inode id, dentry name)` (§2.1.1). Those trees must support:
//!
//! * point lookups, inserts and deletes on the Raft apply path,
//! * ordered range scans (`readdir` is a prefix scan of the dentry tree),
//! * **consistent snapshots while writes continue** — Raft snapshotting
//!   (§2.1.3) serializes the whole partition without blocking the apply
//!   loop.
//!
//! The snapshot requirement is why this is a *copy-on-write* tree: nodes are
//! reference-counted and [`BTree::clone`] is O(1). Mutations clone only the
//! root-to-leaf path they touch when nodes are shared with a snapshot
//! (`Arc::make_mut`), so an iterator over a clone observes a frozen image.
//!
//! Values live only in leaves (B+ layout) so range scans walk leaves without
//! touching separators.

mod iter;
mod node;
mod tree;

pub use iter::Range;
pub use tree::BTree;

#[cfg(test)]
mod model_tests;
