//! Range iterator.
//!
//! Iterates a borrowed tree. For snapshot iteration while the source keeps
//! mutating, take an O(1) [`crate::BTree::snapshot`] first and iterate the
//! snapshot — copy-on-write guarantees the snapshot's nodes are frozen.

use std::ops::Bound;

use crate::node::Node;

/// Ordered iterator over `(key, value)` references within a bound range.
pub struct Range<'a, K, V> {
    /// Descent stack: (node, next child/entry index to visit).
    stack: Vec<(&'a Node<K, V>, usize)>,
    end: Bound<K>,
    done: bool,
}

impl<'a, K: Ord + Clone, V> Range<'a, K, V> {
    pub(crate) fn new(root: &'a Node<K, V>, start: Bound<K>, end: Bound<K>) -> Self {
        let mut it = Range {
            stack: Vec::new(),
            end,
            done: false,
        };
        it.seek(root, &start);
        it
    }

    /// Position the stack at the first in-range entry.
    fn seek(&mut self, root: &'a Node<K, V>, start: &Bound<K>) {
        let mut node = root;
        loop {
            match node {
                Node::Leaf { keys, .. } => {
                    let idx = match start {
                        Bound::Unbounded => 0,
                        Bound::Included(k) => keys.binary_search(k).unwrap_or_else(|i| i),
                        Bound::Excluded(k) => match keys.binary_search(k) {
                            Ok(i) => i + 1,
                            Err(i) => i,
                        },
                    };
                    self.stack.push((node, idx));
                    return;
                }
                Node::Internal { children, .. } => {
                    let idx = match start {
                        Bound::Unbounded => 0,
                        Bound::Included(k) | Bound::Excluded(k) => node.child_index(k),
                    };
                    self.stack.push((node, idx + 1));
                    node = &children[idx];
                }
            }
        }
    }

    fn past_end(&self, key: &K) -> bool {
        match &self.end {
            Bound::Unbounded => false,
            Bound::Included(e) => key > e,
            Bound::Excluded(e) => key >= e,
        }
    }
}

impl<'a, K: Ord + Clone, V> Iterator for Range<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let (node, idx) = match self.stack.last_mut() {
                Some(top) => top,
                None => {
                    self.done = true;
                    return None;
                }
            };
            match node {
                Node::Leaf { keys, vals } => {
                    if *idx < keys.len() {
                        let i = *idx;
                        *idx += 1;
                        let k = &keys[i];
                        if self.past_end(k) {
                            self.done = true;
                            return None;
                        }
                        return Some((k, &vals[i]));
                    }
                    self.stack.pop();
                }
                Node::Internal { children, .. } => {
                    if *idx < children.len() {
                        let i = *idx;
                        *idx += 1;
                        let child: &'a Node<K, V> = &children[i];
                        self.stack.push((child, 0));
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::BTree;

    #[test]
    fn snapshot_iterator_survives_source_mutation() {
        let mut t = BTree::new();
        for i in 0..300u64 {
            t.insert(i, i);
        }
        let snap = t.snapshot();
        let mut it = snap.iter();
        for expect in 0..10u64 {
            assert_eq!(it.next().map(|(k, _)| *k), Some(expect));
        }
        // Mutate the source heavily while the snapshot iterator is live.
        for i in 0..300u64 {
            t.remove(&i);
        }
        for i in 1_000..1_300u64 {
            t.insert(i, i);
        }
        // The snapshot iterator still walks the original 300-entry image.
        let rest: Vec<u64> = it.map(|(k, _)| *k).collect();
        assert_eq!(rest, (10..300).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_iteration_stops_exactly() {
        let mut t = BTree::new();
        for i in (0..100u64).step_by(10) {
            t.insert(i, ());
        }
        // Bounds that fall between keys.
        let got: Vec<u64> = t.range(5..55).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![10, 20, 30, 40, 50]);
    }
}
