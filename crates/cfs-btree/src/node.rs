//! B+ tree nodes and structural operations (split / borrow / merge).

use std::sync::Arc;

/// Maximum keys in a leaf / children in an internal node before a split.
pub(crate) const MAX_FANOUT: usize = 32;
/// Minimum occupancy for non-root nodes after a delete.
pub(crate) const MIN_FANOUT: usize = MAX_FANOUT / 2;

/// A tree node. Leaves hold `keys`/`vals` in parallel; internal nodes hold
/// `children` plus `keys` as separators, where `keys[i]` is the minimum key
/// reachable under `children[i + 1]` (so `keys.len() == children.len() - 1`).
#[derive(Debug)]
pub(crate) enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
    },
    Internal {
        keys: Vec<K>,
        children: Vec<Arc<Node<K, V>>>,
    },
}

impl<K: Clone, V: Clone> Clone for Node<K, V> {
    fn clone(&self) -> Self {
        match self {
            Node::Leaf { keys, vals } => Node::Leaf {
                keys: keys.clone(),
                vals: vals.clone(),
            },
            Node::Internal { keys, children } => Node::Internal {
                keys: keys.clone(),
                children: children.clone(),
            },
        }
    }
}

impl<K: Ord, V> Node<K, V> {
    pub(crate) fn empty_leaf() -> Self {
        Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Number of keys (leaf) or children (internal) — the occupancy measure
    /// used for underflow checks.
    pub(crate) fn occupancy(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Internal { children, .. } => children.len(),
        }
    }

    pub(crate) fn is_overfull(&self) -> bool {
        self.occupancy() > MAX_FANOUT
    }

    pub(crate) fn is_underfull(&self) -> bool {
        self.occupancy() < MIN_FANOUT
    }

    /// Smallest key in the subtree rooted here. Panics on an empty node
    /// (only the root can be empty, and the tree handles that case).
    pub(crate) fn min_key(&self) -> &K {
        match self {
            Node::Leaf { keys, .. } => &keys[0],
            Node::Internal { children, .. } => children[0].min_key(),
        }
    }

    /// Index of the child an operation on `key` must descend into.
    pub(crate) fn child_index(&self, key: &K) -> usize {
        match self {
            Node::Internal { keys, .. } => {
                // keys[i] is the min of children[i+1]; descend into the last
                // child whose min is <= key.
                match keys.binary_search(key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                }
            }
            Node::Leaf { .. } => unreachable!("child_index on leaf"),
        }
    }
}

impl<K: Ord + Clone, V: Clone> Node<K, V> {
    /// Split an overfull node in half; returns the new right sibling and the
    /// separator key (the right sibling's minimum).
    pub(crate) fn split(&mut self) -> (K, Arc<Node<K, V>>) {
        match self {
            Node::Leaf { keys, vals } => {
                let mid = keys.len() / 2;
                let right_keys: Vec<K> = keys.split_off(mid);
                let right_vals: Vec<V> = vals.split_off(mid);
                let sep = right_keys[0].clone();
                (
                    sep,
                    Arc::new(Node::Leaf {
                        keys: right_keys,
                        vals: right_vals,
                    }),
                )
            }
            Node::Internal { keys, children } => {
                let mid = children.len() / 2;
                // children[mid..] move right; keys[mid-1] becomes the
                // separator pushed up; keys[mid..] move right.
                let right_children: Vec<_> = children.split_off(mid);
                let mut right_keys: Vec<K> = keys.split_off(mid - 1);
                let sep = right_keys.remove(0);
                (
                    sep,
                    Arc::new(Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    }),
                )
            }
        }
    }
}

/// Rebalance `children[idx]` of an internal node after a delete left it
/// underfull: borrow from an adjacent sibling when possible, otherwise merge
/// with one. `keys` are the node's separators.
///
/// Returns `true` if a merge removed a child (the caller's occupancy
/// changed).
pub(crate) fn rebalance_child<K: Ord + Clone, V: Clone>(
    keys: &mut Vec<K>,
    children: &mut Vec<Arc<Node<K, V>>>,
    idx: usize,
) -> bool {
    // Prefer borrowing from the left sibling, then the right, then merging.
    if idx > 0 && children[idx - 1].occupancy() > MIN_FANOUT {
        borrow_from_left(keys, children, idx);
        false
    } else if idx + 1 < children.len() && children[idx + 1].occupancy() > MIN_FANOUT {
        borrow_from_right(keys, children, idx);
        false
    } else if idx > 0 {
        merge_children(keys, children, idx - 1);
        true
    } else if idx + 1 < children.len() {
        merge_children(keys, children, idx);
        true
    } else {
        // Single child: nothing to rebalance against; the tree collapses
        // the root when this propagates up.
        false
    }
}

fn borrow_from_left<K: Ord + Clone, V: Clone>(
    keys: &mut [K],
    children: &mut [Arc<Node<K, V>>],
    idx: usize,
) {
    let (left_half, right_half) = children.split_at_mut(idx);
    let left = Arc::make_mut(&mut left_half[idx - 1]);
    let node = Arc::make_mut(&mut right_half[0]);
    match (left, node) {
        (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: nk, vals: nv }) => {
            let k = lk.pop().expect("left sibling not empty");
            let v = lv.pop().expect("left sibling not empty");
            nk.insert(0, k.clone());
            nv.insert(0, v);
            keys[idx - 1] = k;
        }
        (
            Node::Internal {
                keys: lk,
                children: lc,
            },
            Node::Internal {
                keys: nk,
                children: nc,
            },
        ) => {
            // Rotate through the parent separator.
            let child = lc.pop().expect("left sibling not empty");
            let sep = lk.pop().expect("left sibling has separator");
            let old_sep = std::mem::replace(&mut keys[idx - 1], sep);
            nk.insert(0, old_sep);
            nc.insert(0, child);
        }
        _ => unreachable!("siblings at the same depth share arity"),
    }
}

fn borrow_from_right<K: Ord + Clone, V: Clone>(
    keys: &mut [K],
    children: &mut [Arc<Node<K, V>>],
    idx: usize,
) {
    let (left_half, right_half) = children.split_at_mut(idx + 1);
    let node = Arc::make_mut(&mut left_half[idx]);
    let right = Arc::make_mut(&mut right_half[0]);
    match (node, right) {
        (Node::Leaf { keys: nk, vals: nv }, Node::Leaf { keys: rk, vals: rv }) => {
            nk.push(rk.remove(0));
            nv.push(rv.remove(0));
            keys[idx] = rk[0].clone();
        }
        (
            Node::Internal {
                keys: nk,
                children: nc,
            },
            Node::Internal {
                keys: rk,
                children: rc,
            },
        ) => {
            let child = rc.remove(0);
            let sep = rk.remove(0);
            let old_sep = std::mem::replace(&mut keys[idx], sep);
            nk.push(old_sep);
            nc.push(child);
        }
        _ => unreachable!("siblings at the same depth share arity"),
    }
}

/// Merge `children[idx + 1]` into `children[idx]`, removing the separator
/// between them.
fn merge_children<K: Ord + Clone, V: Clone>(
    keys: &mut Vec<K>,
    children: &mut Vec<Arc<Node<K, V>>>,
    idx: usize,
) {
    let right = children.remove(idx + 1);
    let sep = keys.remove(idx);
    let left = Arc::make_mut(&mut children[idx]);
    match (left, &*right) {
        (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: rk, vals: rv }) => {
            lk.extend(rk.iter().cloned());
            lv.extend(rv.iter().cloned());
        }
        (
            Node::Internal {
                keys: lk,
                children: lc,
            },
            Node::Internal {
                keys: rk,
                children: rc,
            },
        ) => {
            lk.push(sep);
            lk.extend(rk.iter().cloned());
            lc.extend(rc.iter().cloned());
        }
        _ => unreachable!("siblings at the same depth share arity"),
    }
}
