//! The copy-on-write B+ tree map.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

use crate::iter::Range;
use crate::node::{rebalance_child, Node};

/// Ordered map with O(1) snapshot clones.
///
/// `clone()` shares all nodes; subsequent mutations on either copy clone
/// only the paths they touch. This is the substrate for the meta
/// partition's `inodeTree` and `dentryTree` and lets Raft serialize a
/// consistent snapshot while the apply loop keeps writing.
#[derive(Debug)]
pub struct BTree<K, V> {
    root: Arc<Node<K, V>>,
    len: usize,
}

impl<K, V> Clone for BTree<K, V> {
    fn clone(&self) -> Self {
        BTree {
            root: Arc::clone(&self.root),
            len: self.len,
        }
    }
}

impl<K: Ord + Clone, V: Clone> Default for BTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> BTree<K, V> {
    /// Empty tree.
    pub fn new() -> Self {
        BTree {
            root: Arc::new(Node::empty_leaf()),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(key).ok().map(|i| &vals[i]);
                }
                Node::Internal { children, .. } => {
                    node = &children[node.child_index(key)];
                }
            }
        }
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Insert, returning the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let old = Self::insert_rec(&mut self.root, key, value);
        if old.is_none() {
            self.len += 1;
        }
        if self.root.is_overfull() {
            // Grow a new root above the split halves.
            let root = Arc::make_mut(&mut self.root);
            let (sep, right) = root.split();
            let left = std::mem::replace(root, Node::empty_leaf());
            *root = Node::Internal {
                keys: vec![sep],
                children: vec![Arc::new(left), right],
            };
        }
        old
    }

    fn insert_rec(node: &mut Arc<Node<K, V>>, key: K, value: V) -> Option<V> {
        let n = Arc::make_mut(node);
        match n {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => Some(std::mem::replace(&mut vals[i], value)),
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, value);
                    None
                }
            },
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let old = Self::insert_rec(&mut children[idx], key, value);
                if children[idx].is_overfull() {
                    let (sep, right) = Arc::make_mut(&mut children[idx]).split();
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                }
                old
            }
        }
    }

    /// Remove a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let old = Self::remove_rec(&mut self.root, key);
        if old.is_some() {
            self.len -= 1;
        }
        // Collapse a root that dwindled to a single child.
        loop {
            let replace = match &*self.root {
                Node::Internal { children, .. } if children.len() == 1 => Arc::clone(&children[0]),
                _ => break,
            };
            self.root = replace;
        }
        old
    }

    fn remove_rec(node: &mut Arc<Node<K, V>>, key: &K) -> Option<V> {
        let n = Arc::make_mut(node);
        match n {
            Node::Leaf { keys, vals } => match keys.binary_search(key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(vals.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let old = Self::remove_rec(&mut children[idx], key);
                if old.is_some() {
                    if children[idx].is_underfull() {
                        rebalance_child(keys, children, idx);
                    }
                    // The removed key may have been a subtree minimum, and
                    // rebalancing shifts entries between siblings: refresh
                    // every separator around the touched position so
                    // `child_index` stays correct.
                    let hi = (idx + 1).min(children.len() - 1);
                    for i in idx.saturating_sub(1).max(1)..=hi.max(1) {
                        if i < children.len() {
                            keys[i - 1] = children[i].min_key().clone();
                        }
                    }
                }
                old
            }
        }
    }

    /// Smallest key/value pair.
    pub fn first(&self) -> Option<(&K, &V)> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.first().map(|k| (k, &vals[0]));
                }
                Node::Internal { children, .. } => node = &children[0],
            }
        }
    }

    /// Largest key/value pair.
    pub fn last(&self) -> Option<(&K, &V)> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.last().map(|k| (k, vals.last().unwrap()));
                }
                Node::Internal { children, .. } => node = children.last().unwrap(),
            }
        }
    }

    /// Ordered iterator over all entries of this tree *as of now*: the
    /// iterator holds node references into a frozen snapshot, so concurrent
    /// mutations of clones are invisible to it.
    pub fn iter(&self) -> Range<'_, K, V> {
        self.range(..)
    }

    /// Ordered iterator over entries within `bounds`.
    pub fn range<R: RangeBounds<K>>(&self, bounds: R) -> Range<'_, K, V> {
        let start = clone_bound(bounds.start_bound());
        let end = clone_bound(bounds.end_bound());
        Range::new(&self.root, start, end)
    }

    /// An O(1) frozen copy, independent of future mutations on `self`.
    pub fn snapshot(&self) -> BTree<K, V> {
        self.clone()
    }

    #[cfg(test)]
    pub(crate) fn check_invariants(&self) {
        fn walk<K: Ord + Clone, V: Clone>(
            node: &Node<K, V>,
            depth: usize,
            leaf_depth: &mut Option<usize>,
            is_root: bool,
        ) {
            match node {
                Node::Leaf { keys, vals } => {
                    assert_eq!(keys.len(), vals.len());
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaf keys sorted");
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) => assert_eq!(*d, depth, "all leaves at same depth"),
                    }
                    if !is_root {
                        assert!(
                            keys.len() >= crate::node::MIN_FANOUT,
                            "leaf occupancy {} below min",
                            keys.len()
                        );
                    }
                    assert!(keys.len() <= crate::node::MAX_FANOUT);
                }
                Node::Internal { keys, children } => {
                    assert_eq!(keys.len() + 1, children.len());
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "separators sorted");
                    for (i, sep) in keys.iter().enumerate() {
                        assert!(
                            children[i + 1].min_key() == sep,
                            "separator equals right child min"
                        );
                    }
                    if !is_root {
                        assert!(children.len() >= crate::node::MIN_FANOUT);
                    }
                    assert!(children.len() <= crate::node::MAX_FANOUT);
                    for c in children {
                        walk(c, depth + 1, leaf_depth, false);
                    }
                }
            }
        }
        let mut leaf_depth = None;
        walk(&self.root, 0, &mut leaf_depth, true);
        assert_eq!(self.iter().count(), self.len, "len matches iteration");
    }
}

fn clone_bound<K: Clone>(b: Bound<&K>) -> Bound<K> {
    match b {
        Bound::Included(k) => Bound::Included(k.clone()),
        Bound::Excluded(k) => Bound::Excluded(k.clone()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: BTree<u64, String> = BTree::new();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert!(t.get(&1).is_none());
        assert!(t.first().is_none());
        assert!(t.last().is_none());
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn insert_get_remove_small() {
        let mut t = BTree::new();
        assert_eq!(t.insert(2u64, "b"), None);
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(3, "c"), None);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&1), Some(&"a"));
        assert_eq!(t.get(&2), Some(&"b"));
        assert_eq!(t.insert(2, "B"), Some("b"));
        assert_eq!(t.len(), 3);
        assert_eq!(t.remove(&2), Some("B"));
        assert_eq!(t.remove(&2), None);
        assert_eq!(t.len(), 2);
        t.check_invariants();
    }

    #[test]
    fn large_sequential_insert_then_delete() {
        let mut t = BTree::new();
        for i in 0..10_000u64 {
            t.insert(i, i * 2);
        }
        t.check_invariants();
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.first(), Some((&0, &0)));
        assert_eq!(t.last(), Some((&9_999, &19_998)));
        for i in 0..10_000u64 {
            assert_eq!(t.get(&i), Some(&(i * 2)));
        }
        for i in (0..10_000u64).step_by(2) {
            assert_eq!(t.remove(&i), Some(i * 2));
        }
        t.check_invariants();
        assert_eq!(t.len(), 5_000);
        for i in 0..10_000u64 {
            assert_eq!(t.get(&i).is_some(), i % 2 == 1);
        }
        for i in (1..10_000u64).step_by(2) {
            assert_eq!(t.remove(&i), Some(i * 2));
        }
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn reverse_order_insert() {
        let mut t = BTree::new();
        for i in (0..2_000u64).rev() {
            t.insert(i, ());
        }
        t.check_invariants();
        let keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..2_000).collect::<Vec<_>>());
    }

    #[test]
    fn range_scans() {
        let mut t = BTree::new();
        for i in 0..1_000u64 {
            t.insert(i, i);
        }
        let got: Vec<u64> = t.range(100..200).map(|(k, _)| *k).collect();
        assert_eq!(got, (100..200).collect::<Vec<_>>());
        let got: Vec<u64> = t.range(..=5).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        let got: Vec<u64> = t.range(995..).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![995, 996, 997, 998, 999]);
        use std::ops::Bound;
        let got: Vec<u64> = t
            .range((Bound::Excluded(10), Bound::Included(12)))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(got, vec![11, 12]);
        #[allow(clippy::reversed_empty_ranges)]
        let empty = t.range(500..400).count();
        assert_eq!(empty, 0);
    }

    #[test]
    fn snapshot_isolation() {
        let mut t = BTree::new();
        for i in 0..500u64 {
            t.insert(i, i);
        }
        let snap = t.snapshot();
        for i in 500..1_000u64 {
            t.insert(i, i);
        }
        for i in 0..250u64 {
            t.remove(&i);
        }
        // Snapshot still sees exactly the original 500 entries.
        assert_eq!(snap.len(), 500);
        let keys: Vec<u64> = snap.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..500).collect::<Vec<_>>());
        // And the live tree sees the new state.
        assert_eq!(t.len(), 750);
        snap.check_invariants();
        t.check_invariants();
    }

    #[test]
    fn snapshot_mutation_does_not_affect_original() {
        let mut t = BTree::new();
        for i in 0..100u64 {
            t.insert(i, i);
        }
        let mut snap = t.snapshot();
        for i in 0..100u64 {
            snap.remove(&i);
        }
        assert!(snap.is_empty());
        assert_eq!(t.len(), 100);
        t.check_invariants();
    }

    #[test]
    fn tuple_keys_prefix_scan_like_dentry_tree() {
        // Mirrors the dentryTree usage: key = (parent inode, name).
        let mut t: BTree<(u64, String), u64> = BTree::new();
        for parent in 0..10u64 {
            for f in 0..20u64 {
                t.insert((parent, format!("file{f:02}")), parent * 100 + f);
            }
        }
        // readdir(parent=4): scan [(4, "") .. (5, ""))
        let entries: Vec<String> = t
            .range((4, String::new())..(5, String::new()))
            .map(|(k, _)| k.1.clone())
            .collect();
        assert_eq!(entries.len(), 20);
        assert_eq!(entries[0], "file00");
        assert_eq!(entries[19], "file19");
        assert!(entries.windows(2).all(|w| w[0] < w[1]));
    }
}
