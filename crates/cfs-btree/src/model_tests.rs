//! Property-based tests: the COW B+ tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences, and
//! snapshots must be immune to later mutations.

use std::collections::BTreeMap;

use proptest::prelude::*;

use crate::BTree;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        3 => any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        1 => Just(Op::Snapshot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn behaves_like_btreemap(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut tree = BTree::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        let mut snapshots: Vec<(BTree<u16, u32>, BTreeMap<u16, u32>)> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                Op::Snapshot => {
                    snapshots.push((tree.snapshot(), model.clone()));
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }

        tree.check_invariants();

        // Full-content equality via ordered iteration.
        let got: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);

        // Every snapshot still matches the model state at snapshot time.
        for (snap, snap_model) in snapshots {
            snap.check_invariants();
            let got: Vec<(u16, u32)> = snap.iter().map(|(k, v)| (*k, *v)).collect();
            let want: Vec<(u16, u32)> = snap_model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn range_matches_btreemap(
        keys in proptest::collection::btree_set(any::<u16>(), 0..300),
        lo in any::<u16>(),
        hi in any::<u16>(),
    ) {
        let mut tree = BTree::new();
        let mut model = BTreeMap::new();
        for &k in &keys {
            tree.insert(k, k as u32);
            model.insert(k, k as u32);
        }
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let got: Vec<u16> = tree.range(lo..hi).map(|(k, _)| *k).collect();
        let want: Vec<u16> = model.range(lo..hi).map(|(k, _)| *k).collect();
        prop_assert_eq!(got, want);

        let got: Vec<u16> = tree.range(lo..=hi).map(|(k, _)| *k).collect();
        let want: Vec<u16> = model.range(lo..=hi).map(|(k, _)| *k).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn first_last_match_btreemap(keys in proptest::collection::btree_set(any::<u64>(), 0..200)) {
        let mut tree = BTree::new();
        for &k in &keys {
            tree.insert(k, ());
        }
        prop_assert_eq!(tree.first().map(|(k, _)| *k), keys.iter().next().copied());
        prop_assert_eq!(tree.last().map(|(k, _)| *k), keys.iter().next_back().copied());
    }
}
