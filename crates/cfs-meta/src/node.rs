//! The meta node: many partitions behind one MultiRaft instance.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use cfs_kvwal::{LsmEngine, LsmOptions, TypedCf, WriteBatch};
use cfs_obs::{Counter, Registry, RpcRoute};
use cfs_raft::hub::{RaftHost, RaftHub};
use cfs_raft::{
    decode_batch_frame, KvRaftStorage, MultiRaft, PersistentRaftState, RaftConfig, RaftMetrics,
    RaftStorage, SnapshotPayload, WireEnvelope,
};
use cfs_types::codec::{Decode, Encode};
use cfs_types::{CfsError, InodeId, NodeId, PartitionId, RaftGroupId, Result, VolumeId};

use crate::command::{apply_read, MetaCommand, MetaRead, MetaValue};
use crate::intent::{
    compensation_fixups, intent_effect_present, CompensationRecord, IntentContext, IntentRecord,
};
use crate::partition::{MetaPartition, MetaPartitionConfig};

/// Low 48 bits of an intent id are the node-local sequence; the high 16
/// identify the acking node, so ids from different nodes never collide.
const INTENT_SEQ_MASK: u64 = (1 << 48) - 1;

/// Per-partition status reported to the resource manager (drives
/// utilization-based placement and the split decision, §2.3.1–§2.3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionInfo {
    pub partition_id: PartitionId,
    pub volume_id: VolumeId,
    pub start: InodeId,
    pub end: InodeId,
    pub item_count: u64,
    pub max_inode: InodeId,
    /// Raft applied index of the partition's group. Advances with write
    /// traffic, so successive heartbeat deltas give the master a QPS
    /// signal for the load-triggered split (§2.3.2).
    pub applied: u64,
    pub is_leader: bool,
    pub leader_hint: Option<NodeId>,
    /// Journaled async intents not yet group-committed or compensated.
    /// The resource manager's orphan sweep waits for this to reach zero
    /// cluster-wide before executing compensations (DESIGN §12).
    pub pending_intents: u64,
    /// Compensation records awaiting the orphan sweep's execution + ack.
    pub pending_compensations: u64,
}

/// RPCs a meta node serves.
#[derive(Debug, Clone)]
pub enum MetaRequest {
    /// Leader-local read.
    Read {
        partition: PartitionId,
        read: MetaRead,
    },
    /// Raft-replicated write.
    Write {
        partition: PartitionId,
        cmd: MetaCommand,
    },
    /// Resource-manager task: host a replica of a new partition.
    CreatePartition {
        config: MetaPartitionConfig,
        members: Vec<NodeId>,
    },
    /// Repair (§2.3.3): rebuild the partition's Raft group with a
    /// post-decommission membership; the partition state itself is
    /// untouched.
    UpdateMembers {
        partition: PartitionId,
        members: Vec<NodeId>,
    },
    /// Status of one partition.
    Info { partition: PartitionId },
    /// Status of every hosted partition (heartbeat reply body, §2.3).
    Report,
    /// Asynchronous metadata commit (DESIGN §12): ack once the op is
    /// durably journaled as an intent and speculatively applied to the
    /// leader's overlay — the Raft round happens later, via group commit.
    WriteAsync {
        partition: PartitionId,
        cmd: MetaCommand,
        ctx: IntentContext,
    },
    /// Strong barrier (`fsync`/`close`): block until every listed intent
    /// has left the journal — committed or compensated — and report which
    /// ones were compensated. Served by the *acking* node, leader or not.
    Barrier {
        partition: PartitionId,
        intents: Vec<u64>,
    },
    /// Heartbeat reconciliation: fetch this node's unexecuted
    /// compensation records (the orphan sweep input).
    Compensations,
    /// Orphan sweep completion: the listed compensations were executed;
    /// drop them from the durable journal.
    AckCompensations {
        partition: PartitionId,
        ids: Vec<u64>,
    },
}

impl RpcRoute for MetaRequest {
    fn route(&self) -> &'static str {
        match self {
            MetaRequest::Read { .. } => "meta.read",
            MetaRequest::Write { .. } => "meta.write",
            MetaRequest::CreatePartition { .. } => "meta.create_partition",
            MetaRequest::UpdateMembers { .. } => "meta.update_members",
            MetaRequest::Info { .. } => "meta.info",
            MetaRequest::Report => "meta.report",
            MetaRequest::WriteAsync { .. } => "meta.write_async",
            MetaRequest::Barrier { .. } => "meta.barrier",
            MetaRequest::Compensations => "meta.compensations",
            MetaRequest::AckCompensations { .. } => "meta.ack_compensations",
        }
    }
}

/// Replies to [`MetaRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetaResponse {
    Value(MetaValue),
    Created,
    Info(PartitionInfo),
    Report(Vec<PartitionInfo>),
    /// Async write acked: durably journaled + speculatively applied.
    /// `value` is the overlay's apply result (e.g. the allocated inode).
    Acked {
        intent: u64,
        value: MetaValue,
    },
    /// The partition isn't in a clean window (frames in flight, journal
    /// non-empty after a leadership change…): the client must use the
    /// synchronous write path for this op.
    SyncFallback,
    /// Barrier done: every listed intent left the journal. `compensated`
    /// names the ones that did NOT commit (their effects were rolled
    /// back), so `fsync` can report the durability failure.
    Drained {
        compensated: Vec<u64>,
    },
    /// This node's unexecuted compensation records.
    Compensations(Vec<CompensationRecord>),
}

/// Hosted-partition registry column family: partition id → (encoded
/// [`MetaPartitionConfig`], replica members). An engine-backed node
/// re-hosts exactly these partitions on reopen.
struct PartCf;
impl TypedCf for PartCf {
    const NAME: &'static str = "meta_parts";
    type Key = u64;
    type Value = (Vec<u8>, Vec<NodeId>);
}

/// Paged-out partition trees (cold-inode paging): partition id → the
/// tree's snapshot bytes at page-out time.
struct ColdCf;
impl TypedCf for ColdCf {
    const NAME: &'static str = "meta_cold";
    type Key = u64;
    type Value = Vec<u8>;
}

/// The crash-safe intent journal (DESIGN §12): `(partition, intent id)` →
/// encoded [`IntentRecord`]. Each journal write goes through its own
/// engine `WriteBatch`, i.e. one CRC-framed WAL record, so a torn tail
/// drops whole intents, never leaves half of one.
struct IntentCf;
impl TypedCf for IntentCf {
    const NAME: &'static str = "meta_intents";
    type Key = (u64, u64);
    type Value = Vec<u8>;
}

/// Durable compensation records for dead intents: `(partition, intent
/// id)` → encoded [`CompensationRecord`]. Deleted once the resource
/// manager's orphan sweep executed and acked the fixups.
struct CompCf;
impl TypedCf for CompCf {
    const NAME: &'static str = "meta_comps";
    type Key = (u64, u64);
    type Value = Vec<u8>;
}

/// Durable memory of every intent this node ever resolved by
/// compensation: `(partition, intent id)` → empty. Unlike [`CompCf`]
/// this is never pruned by the orphan sweep's ack — a client may issue
/// its strong barrier long after the sweep executed the fixups (and
/// across further crashes), and the barrier must still report the op as
/// compensated rather than silently promoting it to "committed".
struct CompensatedCf;
impl TypedCf for CompensatedCf {
    const NAME: &'static str = "meta_compensated";
    type Key = (u64, u64);
    type Value = Vec<u8>;
}

/// Durable image of a meta node, captured at crash time: each hosted
/// partition's config, replica membership, and the raft group's
/// persistent state (term, vote, log, last compaction snapshot). The live
/// in-memory tree is deliberately *not* part of the image — a restarted
/// node must rebuild it from snapshot + log replay (§2.1.3).
#[derive(Debug, Clone)]
pub struct MetaNodePersist {
    pub partitions: Vec<(MetaPartitionConfig, Vec<NodeId>, PersistentRaftState)>,
    /// The durable intent journal (DESIGN §12): every async-acked op not
    /// yet group-committed or compensated at crash time. Unlike the live
    /// tree, the journal *is* part of the durable image — the whole point
    /// of the compensation engine is surviving exactly this crash.
    pub intents: Vec<(PartitionId, Vec<IntentRecord>)>,
    /// Unexecuted compensation records at crash time.
    pub comps: Vec<(PartitionId, Vec<CompensationRecord>)>,
    /// Every intent id this node ever resolved by compensation. Needed
    /// across the crash so a late strong barrier still learns the op was
    /// rolled back even after the orphan sweep acked its record away.
    pub compensated: Vec<u64>,
}

/// Registry-backed meta metrics with a per-`(partition, op)` handle cache,
/// so the apply hot path never re-resolves names.
struct MetaObs {
    registry: Registry,
    applies: HashMap<(u64, &'static str), Counter>,
    snapshots_taken: Counter,
    snapshot_restores: Counter,
    /// Sub-commands unpacked from committed batch frames; same registry
    /// name as [`RaftMetrics::batch_entries`], so this handle shares its
    /// atomic with the consensus layer and the reconciliation invariant
    /// `raft.batch.entries == Σ meta.applies{…}` holds by construction.
    batch_entries: Counter,
    /// Reads served locally under a valid quorum lease (no consensus
    /// round).
    lease_reads: Counter,
    /// Reads that fell back to a quorum round (ReadIndex-style barrier).
    quorum_reads: Counter,
    /// Partition trees persisted + dropped from memory (cold paging).
    pages_out: Counter,
    /// Partition trees transparently reloaded from the engine on access.
    pages_in: Counter,
    /// `UpdateEnd` range cuts applied here (one per replica per split,
    /// Algorithm 1).
    split_cuts: Counter,
    /// Requests rejected by the dual-serve range fence: the routing inode
    /// fell outside this partition's `[start, end]`, so the client must
    /// refresh its partition view and re-route (split handoff).
    split_fences: Counter,
    /// Async writes acked before consensus (journaled + overlay-applied).
    async_acks: Counter,
    /// Journaled intents retired because their command group-committed.
    async_completions: Counter,
    /// Journaled intents that died (election, power cut, withdrawn frame)
    /// and were turned into compensation records.
    async_compensations: Counter,
    /// Intents that survived a node restart in the journal and then
    /// completed through raft log replay.
    async_replays: Counter,
    /// Async writes answered `SyncFallback` because the partition was not
    /// in a clean window for overlay establishment.
    async_fallbacks: Counter,
}

impl MetaObs {
    fn new(registry: &Registry) -> MetaObs {
        MetaObs {
            registry: registry.clone(),
            applies: HashMap::new(),
            snapshots_taken: registry.counter("meta.snapshots_taken"),
            snapshot_restores: registry.counter("meta.snapshot_restores"),
            batch_entries: registry.counter("raft.batch.entries"),
            lease_reads: registry.counter("meta.lease_reads"),
            quorum_reads: registry.counter("meta.quorum_reads"),
            pages_out: registry.counter("meta.pages_out"),
            pages_in: registry.counter("meta.pages_in"),
            split_cuts: registry.counter("meta.split.cuts"),
            split_fences: registry.counter("meta.split.fences"),
            async_acks: registry.counter("meta.async.acks"),
            async_completions: registry.counter("meta.async.completions"),
            async_compensations: registry.counter("meta.async.compensations"),
            async_replays: registry.counter("meta.async.replays"),
            async_fallbacks: registry.counter("meta.async.sync_fallbacks"),
        }
    }

    fn apply_counter(&mut self, partition: PartitionId, op: &'static str) -> Counter {
        let registry = &self.registry;
        self.applies
            .entry((partition.raw(), op))
            .or_insert_with(|| {
                registry.counter(&format!("meta.applies{{partition={partition},op={op}}}"))
            })
            .clone()
    }
}

struct Inner {
    multiraft: MultiRaft,
    partitions: HashMap<PartitionId, MetaPartition>,
    /// Apply results awaiting pickup by the proposing RPC handler,
    /// keyed by (group, log index). Only populated on the leader.
    results: HashMap<(RaftGroupId, u64), Result<MetaValue>>,
    /// Group-commit accumulator: writes enqueued since the last hub round,
    /// per group, as `(ticket, encoded command)`. Flushed into ONE batch
    /// frame per group at the top of every `raft_drain`, so N concurrent
    /// writes commit in O(1) consensus rounds.
    queues: HashMap<RaftGroupId, VecDeque<(u64, Vec<u8>)>>,
    /// The one batch frame per group currently going through consensus:
    /// `(term at propose, log index, tickets in frame order)`. One frame
    /// in flight per group — later writes accumulate into the next frame.
    inflight: HashMap<RaftGroupId, (u64, u64, Vec<u64>)>,
    /// Resolved batched writes awaiting pickup, keyed by ticket.
    ticket_results: HashMap<u64, Result<MetaValue>>,
    next_ticket: u64,
    /// Leader-side speculative overlays (DESIGN §12): a clone of the
    /// partition tree that async writes apply to at ack time, pinned to
    /// the leader term it was established under. Every *enqueued* write
    /// (sync too) replays onto the overlay in queue order, so it stays
    /// exactly `replicated tree ⊕ queued prefix`; it serves leader reads
    /// while it lives and is torn down (with a convergence check) once
    /// the partition quiesces.
    overlays: HashMap<PartitionId, (u64, MetaPartition)>,
    /// The intent journal's in-memory view, mirrored durably in
    /// [`IntentCf`] on engine-backed nodes.
    intents: HashMap<PartitionId, BTreeMap<u64, IntentRecord>>,
    /// Compensation records for dead intents, mirrored in [`CompCf`],
    /// awaiting the resource manager's orphan sweep.
    comps: HashMap<PartitionId, BTreeMap<u64, CompensationRecord>>,
    /// Tickets that carry an async intent, until the frame is durably
    /// stamped `proposed` (at which point the journal record itself
    /// drives resolution and the ticket entry is dropped).
    ticket_intents: HashMap<u64, (PartitionId, u64)>,
    /// Intents this node resolved by compensation (barrier reporting).
    compensated_log: HashSet<u64>,
    /// Intents found in the journal at open time: retiring one of these
    /// through log replay counts as `meta.async.replays`.
    recovered_intents: HashSet<u64>,
    /// Next intent sequence number (low 48 bits of the intent id).
    next_intent_seq: u64,
    obs: Option<MetaObs>,
    /// Durable storage engine (`None` = in-memory crash-image model).
    /// Holds partition configs, paged-out trees, and — via
    /// [`KvRaftStorage`] — every hosted group's raft state.
    engine: Option<Arc<LsmEngine>>,
}

impl Inner {
    fn fresh(multiraft: MultiRaft, obs: Option<MetaObs>) -> Inner {
        Inner {
            multiraft,
            partitions: HashMap::new(),
            results: HashMap::new(),
            queues: HashMap::new(),
            inflight: HashMap::new(),
            ticket_results: HashMap::new(),
            next_ticket: 1,
            overlays: HashMap::new(),
            intents: HashMap::new(),
            comps: HashMap::new(),
            ticket_intents: HashMap::new(),
            compensated_log: HashSet::new(),
            recovered_intents: HashSet::new(),
            next_intent_seq: 1,
            obs,
            engine: None,
        }
    }

    /// Cold-inode paging, inbound half: if `pid`'s tree was paged out,
    /// reload it from the engine. No-op when resident or engine-less.
    fn page_in(&mut self, pid: PartitionId) {
        if self.partitions.contains_key(&pid) {
            return;
        }
        let Some(engine) = &self.engine else { return };
        if let Ok(Some(bytes)) = engine.get::<ColdCf>(&pid.raw()) {
            if let Ok(p) = MetaPartition::from_snapshot(pid, &bytes) {
                self.partitions.insert(pid, p);
                if let Some(o) = self.obs.as_ref() {
                    o.pages_in.inc();
                }
            }
        }
    }

    /// Persist `pid`'s registry row (config + members) when engine-backed.
    fn persist_partition_config(&self, pid: PartitionId, members: &[NodeId]) {
        let (Some(engine), Some(p)) = (&self.engine, self.partitions.get(&pid)) else {
            return;
        };
        let _ = engine.put::<PartCf>(&pid.raw(), &(p.config().to_bytes(), members.to_vec()));
    }

    /// Dual-serve range fence (Algorithm 1 handoff). `violation` is the
    /// routing inode a request carried that falls outside the partition's
    /// current `[start, end]`; reject it with [`CfsError::RangeMoved`] —
    /// and before it is classified as a lease or quorum read — so the
    /// client refreshes its partition view and re-routes by inode id.
    /// This is what keeps a lookup racing a split from ever being
    /// answered by the wrong half: the frozen old range never serves ids
    /// above its cut, the successor never serves ids below its start.
    fn fence(&self, partition: PartitionId, violation: Option<InodeId>) -> Result<()> {
        let Some(id) = violation else { return Ok(()) };
        if let Some(o) = self.obs.as_ref() {
            o.split_fences.inc();
        }
        Err(CfsError::RangeMoved {
            partition,
            inode: id,
        })
    }

    /// Fail every ticket with the same error (group lost leadership, frame
    /// overwritten by another leader's entry…). The blocked writers pick
    /// the error up and retry against the new leader.
    ///
    /// An async intent riding a failed ticket dies here: tickets are only
    /// removed from `ticket_intents` once their frame was durably stamped
    /// `proposed`, so anything still tracked is definitively absent from
    /// the raft log and safe to compensate immediately.
    fn fail_tickets(&mut self, tickets: Vec<u64>, err: CfsError) {
        for t in tickets {
            if let Some((pid, iid)) = self.ticket_intents.remove(&t) {
                if let Some(rec) = self.intents.get_mut(&pid).and_then(|m| m.remove(&iid)) {
                    debug_assert!(rec.proposed.is_none());
                    self.compensate_intent(pid, rec);
                }
            }
            self.ticket_results.insert(t, Err(err.clone()));
        }
    }

    /// Mint a node-unique intent id: acking node in the high 16 bits,
    /// node-local sequence (restored from the journal scan at open) below.
    fn mint_intent(&mut self, node: NodeId) -> u64 {
        let seq = self.next_intent_seq;
        self.next_intent_seq += 1;
        ((node.raw() & 0xFFFF) << 48) | (seq & INTENT_SEQ_MASK)
    }

    /// Durably journal one intent — its own engine `WriteBatch`, i.e. one
    /// CRC-framed WAL record — before the ack leaves the node.
    fn journal_intent(&mut self, pid: PartitionId, rec: IntentRecord) {
        if let Some(e) = &self.engine {
            let mut b = WriteBatch::new();
            b.put::<IntentCf>(&(pid.raw(), rec.id), &rec.to_bytes());
            let _ = e.write(b);
        }
        self.intents.entry(pid).or_default().insert(rec.id, rec);
    }

    /// Durably stamp `(term, index)` into every intent riding the frame
    /// about to be proposed, *before* the entries can reach the raft log:
    /// a crash on either side of the propose then leaves the journal
    /// classifiable — a never-stamped record is definitively absent from
    /// the log (dead), a stamped one is decided by the log itself once
    /// the applied index passes its stamp.
    fn stamp_proposed(&mut self, tickets: &[u64], term: u64, index: u64) {
        for t in tickets {
            let Some((pid, iid)) = self.ticket_intents.remove(t) else {
                continue;
            };
            if let Some(rec) = self.intents.get_mut(&pid).and_then(|m| m.get_mut(&iid)) {
                rec.proposed = Some((term, index));
                let bytes = rec.to_bytes();
                if let Some(e) = &self.engine {
                    let mut b = WriteBatch::new();
                    b.put::<IntentCf>(&(pid.raw(), iid), &bytes);
                    let _ = e.write(b);
                }
            }
        }
    }

    /// Drop the journal row of a committed intent and count the
    /// completion (and the replay, if the intent survived a restart).
    fn retire_resolved(&mut self, pid: PartitionId, iid: u64) {
        if let Some(e) = &self.engine {
            let _ = e.delete::<IntentCf>(&(pid.raw(), iid));
        }
        let replayed = self.recovered_intents.remove(&iid);
        if let Some(o) = self.obs.as_ref() {
            o.async_completions.inc();
            if replayed {
                o.async_replays.inc();
            }
        }
    }

    /// Retire an intent whose tagged command just applied (the normal,
    /// group-commit completion path).
    fn retire_intent(&mut self, pid: PartitionId, iid: u64) {
        if self
            .intents
            .get_mut(&pid)
            .and_then(|m| m.remove(&iid))
            .is_none()
        {
            return;
        }
        self.retire_resolved(pid, iid);
    }

    /// Turn a dead intent into a durable compensation record: atomically
    /// (one `WriteBatch`) delete the intent row and persist the fixups
    /// for the orphan sweep. The caller already removed the record from
    /// the in-memory journal.
    fn compensate_intent(&mut self, pid: PartitionId, rec: IntentRecord) {
        self.page_in(pid);
        let volume = self
            .partitions
            .get(&pid)
            .map(|p| p.config().volume_id)
            .unwrap_or(VolumeId(0));
        let comp = CompensationRecord {
            id: rec.id,
            partition: pid,
            volume,
            fixups: compensation_fixups(&rec.cmd, &rec.ctx),
        };
        if let Some(e) = &self.engine {
            let mut b = WriteBatch::new();
            b.delete::<IntentCf>(&(pid.raw(), rec.id));
            if !comp.fixups.is_empty() {
                b.put::<CompCf>(&(pid.raw(), rec.id), &comp.to_bytes());
            }
            b.put::<CompensatedCf>(&(pid.raw(), rec.id), &Vec::new());
            let _ = e.write(b);
        }
        self.recovered_intents.remove(&rec.id);
        self.compensated_log.insert(rec.id);
        if !comp.fixups.is_empty() {
            self.comps.entry(pid).or_default().insert(rec.id, comp);
        }
        if let Some(o) = self.obs.as_ref() {
            o.async_compensations.inc();
        }
    }

    /// Drop every overlay whose leader term ended: its speculated suffix
    /// may diverge from what the new leader commits. The journal entries
    /// stay — the resolution pass decides their fate individually.
    fn sweep_overlays(&mut self) {
        let multiraft = &self.multiraft;
        self.overlays.retain(|pid, (term, _)| {
            multiraft
                .group(RaftGroupId(pid.raw()))
                .map(|g| g.is_leader() && g.term() == *term)
                .unwrap_or(false)
        });
    }

    /// Decide the fate of journal entries that the normal tagged-apply
    /// path will never retire. Runs every hub round, leader or follower:
    ///
    /// * never-proposed intent with no live ticket — its command is
    ///   definitively not in the log (node rebooted, or the frame was
    ///   withdrawn) → compensate;
    /// * proposed intent whose stamp the applied index has passed, yet
    ///   still journaled — either another leader overwrote its slot, or
    ///   its effect arrived inside an installed snapshot (which skips
    ///   per-entry retirement). The tree itself disambiguates.
    fn resolve_intents(&mut self) {
        let pids: Vec<PartitionId> = self
            .intents
            .iter()
            .filter(|(_, m)| !m.is_empty())
            .map(|(p, _)| *p)
            .collect();
        for pid in pids {
            let Some(applied) = self
                .multiraft
                .group(RaftGroupId(pid.raw()))
                .map(|g| g.applied_index())
            else {
                continue;
            };
            let ids: Vec<u64> = self
                .intents
                .get(&pid)
                .map(|m| m.keys().copied().collect())
                .unwrap_or_default();
            for iid in ids {
                let decided = {
                    let Some(rec) = self.intents.get(&pid).and_then(|m| m.get(&iid)) else {
                        continue;
                    };
                    match rec.proposed {
                        None => !self
                            .ticket_intents
                            .values()
                            .any(|&(p, i)| p == pid && i == iid),
                        Some((_, index)) => applied >= index,
                    }
                };
                if !decided {
                    continue;
                }
                self.page_in(pid);
                let Some(rec) = self.intents.get_mut(&pid).and_then(|m| m.remove(&iid)) else {
                    continue;
                };
                // A never-stamped record is definitively absent from the
                // log (the stamp is durable before the frame can reach
                // it), so compensate without consulting the tree — right
                // after a restart the tree may still be catching up
                // through log replay, and judging a dead intent by a
                // stale tree can mis-retire it as committed.
                let present = rec.proposed.is_some()
                    && self
                        .partitions
                        .get(&pid)
                        .map(|p| intent_effect_present(&rec.cmd, &rec.ctx, p))
                        .unwrap_or(false);
                if present {
                    self.retire_resolved(pid, rec.id);
                } else {
                    self.compensate_intent(pid, rec);
                }
            }
        }
    }

    /// Tear down overlays whose partition fully quiesced (empty queue, no
    /// inflight frame, empty journal). By then the replicated tree has
    /// caught up with everything the overlay speculated, and the two must
    /// be byte-identical.
    fn teardown_overlays(&mut self) {
        let done: Vec<PartitionId> = self
            .overlays
            .keys()
            .copied()
            .filter(|pid| {
                let gid = RaftGroupId(pid.raw());
                self.queues.get(&gid).map(|q| q.is_empty()).unwrap_or(true)
                    && !self.inflight.contains_key(&gid)
                    && self.intents.get(pid).map(|m| m.is_empty()).unwrap_or(true)
            })
            .collect();
        for pid in done {
            let (_, overlay) = self.overlays.remove(&pid).expect("listed above");
            if let Some(p) = self.partitions.get(&pid) {
                debug_assert_eq!(
                    overlay.snapshot_bytes(),
                    p.snapshot_bytes(),
                    "overlay diverged from replicated tree at quiesce ({pid})"
                );
            }
        }
    }

    /// Leader read view: the speculative overlay while async commits are
    /// in flight (so an acked op is immediately visible to reads), the
    /// replicated tree otherwise.
    fn read_view(&self, pid: PartitionId) -> Option<&MetaPartition> {
        self.overlays
            .get(&pid)
            .map(|(_, p)| p)
            .or_else(|| self.partitions.get(&pid))
    }

    /// Decode + apply one committed command, moving the apply counters,
    /// and settle its intent if it was tagged: a committed tagged command
    /// retires its journal row; a *failed* one (the acked op lost a
    /// deterministic race, e.g. a committed range cut made the pinned id
    /// out-of-range) is honored by compensation, never by a half-visible
    /// state.
    fn apply_one(&mut self, pid: PartitionId, bytes: &[u8], batched: bool) -> Result<MetaValue> {
        let cmd = MetaCommand::from_bytes(bytes)?;
        if let Some(o) = self.obs.as_mut() {
            o.apply_counter(pid, cmd.kind()).inc();
            if batched {
                o.batch_entries.inc();
            }
            if matches!(cmd, MetaCommand::UpdateEnd { .. }) {
                o.split_cuts.inc();
            }
        }
        let result = match self.partitions.get_mut(&pid) {
            Some(p) => cmd.apply(p),
            None => Err(CfsError::NotFound(format!("{pid}"))),
        };
        if let MetaCommand::Tagged { intent, .. } = &cmd {
            match &result {
                Ok(_) => self.retire_intent(pid, *intent),
                Err(_) => {
                    if let Some(rec) = self.intents.get_mut(&pid).and_then(|m| m.remove(intent)) {
                        self.compensate_intent(pid, rec);
                    }
                }
            }
        }
        result
    }

    /// Group commit: once per hub round, fold everything each group's
    /// accumulator collected since the last round into ONE batch frame and
    /// propose it. One frame in flight per group — writes arriving while a
    /// frame is replicating accumulate into the next one, which is what
    /// bounds N concurrent writes to O(1) consensus rounds.
    ///
    /// Also the fence for stale state: an inflight frame whose group lost
    /// leadership (or changed term, which implies an intervening
    /// election) can never resolve, so its tickets fail with `NotLeader`
    /// here rather than hanging until the client timeout.
    fn flush_group_commit(&mut self) {
        let mut gids: Vec<RaftGroupId> = self
            .inflight
            .keys()
            .chain(self.queues.keys())
            .copied()
            .collect();
        gids.sort_unstable();
        gids.dedup();
        for gid in gids {
            let partition = PartitionId(gid.raw());
            if let Some(&(term, _, _)) = self.inflight.get(&gid) {
                let (stale, hint) = match self.multiraft.group(gid) {
                    Some(g) => (!g.is_leader() || g.term() != term, g.leader_hint()),
                    None => (true, None),
                };
                if stale {
                    let (_, _, tickets) = self.inflight.remove(&gid).expect("checked above");
                    self.fail_tickets(tickets, CfsError::NotLeader { partition, hint });
                }
            }
            if self.inflight.contains_key(&gid) {
                continue; // previous frame still replicating
            }
            let Some(queue) = self.queues.get_mut(&gid) else {
                continue;
            };
            if queue.is_empty() {
                continue;
            }
            let (tickets, cmds): (Vec<u64>, Vec<Vec<u8>>) = queue.drain(..).unzip();
            // Predict the frame's slot so async intents riding it can be
            // durably stamped `proposed` BEFORE the entry can reach the
            // raft log (see [`Inner::stamp_proposed`]).
            let predicted = match self.multiraft.group(gid) {
                Some(g) if g.is_leader() => Ok((g.term(), g.last_index() + 1)),
                Some(g) => Err(CfsError::NotLeader {
                    partition,
                    hint: g.leader_hint(),
                }),
                None => Err(CfsError::NotFound(format!("{partition}"))),
            };
            let proposed = predicted.and_then(|(term, next_index)| {
                self.stamp_proposed(&tickets, term, next_index);
                match self.multiraft.group_mut(gid) {
                    Some(g) if g.is_leader() => g.propose_batch(cmds).map(|index| {
                        debug_assert_eq!(index, next_index, "stamped index must match propose");
                        (term, index)
                    }),
                    Some(g) => Err(CfsError::NotLeader {
                        partition,
                        hint: g.leader_hint(),
                    }),
                    None => Err(CfsError::NotFound(format!("{partition}"))),
                }
            });
            match proposed {
                Ok((term, index)) => {
                    self.inflight.insert(gid, (term, index, tickets));
                }
                Err(e) => self.fail_tickets(tickets, e),
            }
        }
    }
}

/// A meta node (§2.1): hosts meta partitions, replicates their commands
/// with MultiRaft, persists them via Raft snapshots, and serves client
/// metadata RPCs.
pub struct MetaNode {
    id: NodeId,
    hub: RaftHub,
    inner: Mutex<Inner>,
    /// Max ticks to wait for a proposal to commit before reporting a
    /// timeout to the client (who retries per §2.1.3).
    commit_timeout_ticks: u64,
    /// Group-commit toggle (on by default; the meta-ops ablation turns it
    /// off to measure one-command-per-round consensus cost).
    batching: AtomicBool,
}

impl MetaNode {
    /// Create a meta node and register it on the raft hub.
    pub fn new(id: NodeId, hub: RaftHub, raft_config: RaftConfig, seed: u64) -> Arc<Self> {
        Self::with_registry(id, hub, raft_config, seed, None)
    }

    /// [`MetaNode::new`] with metrics bound to `registry`: consensus
    /// counters (`raft.*`) plus per-partition apply/snapshot counters
    /// (`meta.*`).
    pub fn with_registry(
        id: NodeId,
        hub: RaftHub,
        raft_config: RaftConfig,
        seed: u64,
        registry: Option<&Registry>,
    ) -> Arc<Self> {
        let mut multiraft = MultiRaft::new(id, raft_config, seed, true);
        if let Some(r) = registry {
            multiraft.set_metrics(RaftMetrics::bind(r));
        }
        let node = Arc::new(MetaNode {
            id,
            hub: hub.clone(),
            inner: Mutex::new(Inner::fresh(multiraft, registry.map(MetaObs::new))),
            commit_timeout_ticks: 2_000,
            batching: AtomicBool::new(true),
        });
        hub.register(node.clone() as Arc<dyn RaftHost>);
        node
    }

    /// Open (or create) an *engine-backed* meta node persisting under
    /// `dir`, and register it on the raft hub. Every partition previously
    /// hosted here — config, raft hard state/log/snapshot, tree — is
    /// restored from the engine alone, so the node survives a whole-node
    /// power loss with no in-memory carryover.
    pub fn open(
        id: NodeId,
        hub: RaftHub,
        dir: &Path,
        raft_config: RaftConfig,
        seed: u64,
    ) -> Result<Arc<Self>> {
        Self::open_with_registry(id, hub, dir, raft_config, seed, None)
    }

    /// [`MetaNode::open`] with metrics bound to `registry`.
    pub fn open_with_registry(
        id: NodeId,
        hub: RaftHub,
        dir: &Path,
        raft_config: RaftConfig,
        seed: u64,
        registry: Option<&Registry>,
    ) -> Result<Arc<Self>> {
        let engine = Arc::new(LsmEngine::open_with_registry(
            dir,
            LsmOptions::default(),
            registry,
        )?);
        let mut multiraft = MultiRaft::new(id, raft_config, seed, true);
        if let Some(r) = registry {
            multiraft.set_metrics(RaftMetrics::bind(r));
        }
        let storage = Arc::new(KvRaftStorage::new(engine.clone()));
        multiraft.set_storage(storage.clone())?;

        // Re-host every registered partition. The tree restarts from the
        // group's durable snapshot (or empty); committed entries above the
        // snapshot base re-apply through the normal `Ready` path (§2.1.3).
        let mut partitions = HashMap::new();
        for (_, (cfg_bytes, members)) in engine.scan::<PartCf>()? {
            let config = MetaPartitionConfig::from_bytes(&cfg_bytes)?;
            let pid = config.partition_id;
            let gid = Self::group_of(pid);
            match storage.load(gid)? {
                Some(state) => {
                    let partition = match &state.snapshot {
                        Some(s) => MetaPartition::from_snapshot(pid, &s.data)?,
                        None => MetaPartition::new(config),
                    };
                    multiraft.restore_group(gid, members, state)?;
                    partitions.insert(pid, partition);
                }
                None => {
                    multiraft.create_group(gid, members)?;
                    partitions.insert(pid, MetaPartition::new(config));
                }
            }
        }

        // Compensation-engine recovery: reload the intent journal and any
        // unexecuted compensations. Surviving intents are classified by
        // the resolution pass once the groups rejoin — never-proposed ⇒
        // compensate, proposed ⇒ decided by log replay (retirements out
        // of this set count as `meta.async.replays`).
        let mut intents: HashMap<PartitionId, BTreeMap<u64, IntentRecord>> = HashMap::new();
        let mut comps: HashMap<PartitionId, BTreeMap<u64, CompensationRecord>> = HashMap::new();
        let mut recovered = HashSet::new();
        let mut max_seq = 0u64;
        for ((praw, iid), bytes) in engine.scan::<IntentCf>()? {
            let rec = IntentRecord::from_bytes(&bytes)?;
            recovered.insert(iid);
            max_seq = max_seq.max(iid & INTENT_SEQ_MASK);
            intents
                .entry(PartitionId(praw))
                .or_default()
                .insert(iid, rec);
        }
        for ((praw, cid), bytes) in engine.scan::<CompCf>()? {
            max_seq = max_seq.max(cid & INTENT_SEQ_MASK);
            comps
                .entry(PartitionId(praw))
                .or_default()
                .insert(cid, CompensationRecord::from_bytes(&bytes)?);
        }
        // The durable compensated log: barrier reporting must survive a
        // compensate → sweep-ack → crash sequence, and the ids must stay
        // retired from the sequence space so a reboot can never mint an
        // intent id that the log already brands as compensated.
        let mut compensated_log = HashSet::new();
        for ((_, cid), _) in engine.scan::<CompensatedCf>()? {
            max_seq = max_seq.max(cid & INTENT_SEQ_MASK);
            compensated_log.insert(cid);
        }

        let mut inner = Inner::fresh(multiraft, registry.map(MetaObs::new));
        inner.partitions = partitions;
        inner.intents = intents;
        inner.comps = comps;
        inner.compensated_log = compensated_log;
        inner.recovered_intents = recovered;
        inner.next_intent_seq = max_seq + 1;
        inner.engine = Some(engine);
        let node = Arc::new(MetaNode {
            id,
            hub: hub.clone(),
            inner: Mutex::new(inner),
            commit_timeout_ticks: 2_000,
            batching: AtomicBool::new(true),
        });
        hub.register(node.clone() as Arc<dyn RaftHost>);
        Ok(node)
    }

    /// Enable or disable write batching (group commit). On by default;
    /// the meta-ops ablation bench flips it off.
    pub fn set_batching(&self, on: bool) {
        self.batching.store(on, Ordering::Relaxed);
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    fn group_of(partition: PartitionId) -> RaftGroupId {
        RaftGroupId(partition.raw())
    }

    /// Handle one RPC (the `cfs-net` service entry point).
    pub fn handle(&self, req: MetaRequest) -> Result<MetaResponse> {
        match req {
            MetaRequest::Read { partition, read } => {
                self.read(partition, &read).map(MetaResponse::Value)
            }
            MetaRequest::Write { partition, cmd } => {
                self.write(partition, &cmd).map(MetaResponse::Value)
            }
            MetaRequest::CreatePartition { config, members } => {
                self.create_partition(config, members)?;
                Ok(MetaResponse::Created)
            }
            MetaRequest::UpdateMembers { partition, members } => {
                self.update_members(partition, members)?;
                Ok(MetaResponse::Created)
            }
            MetaRequest::Info { partition } => self.info(partition).map(MetaResponse::Info),
            MetaRequest::Report => Ok(MetaResponse::Report(self.report())),
            MetaRequest::WriteAsync {
                partition,
                cmd,
                ctx,
            } => self.write_async(partition, &cmd, ctx),
            MetaRequest::Barrier { partition, intents } => self.barrier(partition, &intents),
            MetaRequest::Compensations => Ok(MetaResponse::Compensations(self.compensations())),
            MetaRequest::AckCompensations { partition, ids } => {
                self.ack_compensations(partition, &ids);
                Ok(MetaResponse::Created)
            }
        }
    }

    /// Host a new partition replica. Idempotent for identical configs so
    /// the resource manager can retry tasks.
    pub fn create_partition(
        &self,
        config: MetaPartitionConfig,
        members: Vec<NodeId>,
    ) -> Result<()> {
        let mut inner = self.inner.lock();
        let pid = config.partition_id;
        inner.page_in(pid);
        if let Some(existing) = inner.partitions.get(&pid) {
            if existing.config() == &config {
                return Ok(());
            }
            return Err(CfsError::Exists(format!("{pid}")));
        }
        inner
            .multiraft
            .create_group(Self::group_of(pid), members.clone())?;
        inner.partitions.insert(pid, MetaPartition::new(config));
        inner.persist_partition_config(pid, &members);
        Ok(())
    }

    /// Rebuild a hosted partition's Raft group with a repaired membership
    /// (§2.3.3). The durable consensus state (term, vote, log, last
    /// snapshot) carries over, so replicated data is untouched; a new
    /// member catches up through the ordinary snapshot-install + replay
    /// path. Idempotent for task retries.
    pub fn update_members(&self, partition: PartitionId, members: Vec<NodeId>) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.page_in(partition);
        if !inner.partitions.contains_key(&partition) {
            return Err(CfsError::NotFound(format!("{partition}")));
        }
        let gid = Self::group_of(partition);
        // Rebuilding the group invalidates any speculative overlay.
        inner.overlays.remove(&partition);
        if let Some(state) = inner.multiraft.persist_group(gid) {
            inner.multiraft.remove_group(gid);
            inner.multiraft.restore_group(gid, members.clone(), state)?;
        } else {
            inner.multiraft.create_group(gid, members.clone())?;
        }
        inner.persist_partition_config(partition, &members);
        Ok(())
    }

    /// Leader read. Fast path: a leader holding a valid quorum lease and
    /// fully caught up (`applied == commit`) answers from its in-memory
    /// tree without a consensus round. Otherwise the read pays a quorum
    /// barrier ([`Self::quorum_read`]).
    pub fn read(&self, partition: PartitionId, read: &MetaRead) -> Result<MetaValue> {
        {
            let mut inner = self.inner.lock();
            inner.page_in(partition);
            // Reads on a node that does not (yet) host the partition are
            // `Unavailable`, not `NotFound`: retryable, so every
            // non-retryable error a client sees comes from a read the
            // leader actually served (and counted as lease or quorum).
            let group = inner
                .multiraft
                .group(Self::group_of(partition))
                .ok_or_else(|| CfsError::Unavailable(format!("{partition}: not hosted here")))?;
            if !group.is_leader() {
                return Err(CfsError::NotLeader {
                    partition,
                    hint: group.leader_hint(),
                });
            }
            if group.lease_valid() && group.applied_index() == group.commit_index() {
                // Overlay-aware view: an acked async op must be readable
                // before its group commit lands (read-your-writes).
                let p = inner.read_view(partition).ok_or_else(|| {
                    CfsError::Unavailable(format!("{partition}: not hosted here"))
                })?;
                let (start, end) = (p.config().start, p.config().end);
                inner.fence(partition, read.out_of_range(start, end))?;
                if let Some(o) = inner.obs.as_ref() {
                    o.lease_reads.inc();
                }
                return apply_read(read, p);
            }
        }
        self.quorum_read(partition, read)
    }

    /// ReadIndex-style quorum read: record the commit index and the local
    /// clock, force a heartbeat, and wait until a quorum has acked probes
    /// stamped at-or-after that clock (proving this node was still the
    /// leader when the read started) and the recorded index is applied.
    fn quorum_read(&self, partition: PartitionId, read: &MetaRead) -> Result<MetaValue> {
        let gid = Self::group_of(partition);
        let (barrier, read_commit) = {
            let mut inner = self.inner.lock();
            let group = inner
                .multiraft
                .group_mut(gid)
                .ok_or_else(|| CfsError::Unavailable(format!("{partition}: not hosted here")))?;
            if !group.is_leader() {
                return Err(CfsError::NotLeader {
                    partition,
                    hint: group.leader_hint(),
                });
            }
            let barrier = group.clock();
            let read_commit = group.commit_index();
            group.force_heartbeat();
            (barrier, read_commit)
        };
        let confirmed = self.hub.pump_until(
            || {
                let inner = self.inner.lock();
                inner
                    .multiraft
                    .group(gid)
                    .map(|g| g.quorum_contact_since(barrier) && g.applied_index() >= read_commit)
                    .unwrap_or(false)
            },
            self.commit_timeout_ticks,
        );
        let mut inner = self.inner.lock();
        inner.page_in(partition);
        let group = inner
            .multiraft
            .group(gid)
            .ok_or_else(|| CfsError::Unavailable(format!("{partition}: not hosted here")))?;
        if !group.is_leader() {
            return Err(CfsError::NotLeader {
                partition,
                hint: group.leader_hint(),
            });
        }
        if !confirmed {
            return Err(CfsError::Timeout(format!("{partition}: quorum read")));
        }
        let p = inner
            .read_view(partition)
            .ok_or_else(|| CfsError::Unavailable(format!("{partition}: not hosted here")))?;
        // Fence against the range as of *now*: a cut that applied while
        // the quorum barrier was pending must still be honored.
        let (start, end) = (p.config().start, p.config().end);
        inner.fence(partition, read.out_of_range(start, end))?;
        if let Some(o) = inner.obs.as_ref() {
            o.quorum_reads.inc();
        }
        apply_read(read, p)
    }

    /// Raft-replicated write. With batching on (the default), the command
    /// joins the partition's group-commit accumulator and resolves when
    /// its frame applies; otherwise it is proposed as its own log entry.
    pub fn write(&self, partition: PartitionId, cmd: &MetaCommand) -> Result<MetaValue> {
        if !self.batching.load(Ordering::Relaxed) {
            return self.write_unbatched(partition, cmd);
        }
        let ticket = self.enqueue_write(partition, cmd)?;
        let done = self.hub.pump_until(
            || self.inner.lock().ticket_results.contains_key(&ticket),
            self.commit_timeout_ticks,
        );
        let mut inner = self.inner.lock();
        if let Some(r) = inner.ticket_results.remove(&ticket) {
            return r;
        }
        let _ = done;
        // Withdraw the command if it never made it into a frame, so a
        // retry cannot apply it twice.
        if let Some(q) = inner.queues.get_mut(&Self::group_of(partition)) {
            let before = q.len();
            q.retain(|(t, _)| *t != ticket);
            if q.len() != before {
                // The overlay already speculated on the withdrawn command;
                // it can no longer converge — discard it.
                inner.overlays.remove(&partition);
            }
        }
        Err(CfsError::Timeout(format!(
            "{partition}: group commit of ticket {ticket}"
        )))
    }

    /// Stage a write into the partition's group-commit accumulator without
    /// pumping the hub; returns the ticket that
    /// [`Self::take_write_result`] resolves once the frame applies. The
    /// budget tests use this to line up N writes in one frame
    /// deterministically; [`Self::write`] is the blocking wrapper.
    pub fn enqueue_write(&self, partition: PartitionId, cmd: &MetaCommand) -> Result<u64> {
        let mut inner = self.inner.lock();
        inner.page_in(partition);
        if !inner.partitions.contains_key(&partition) {
            return Err(CfsError::NotFound(format!("{partition}")));
        }
        let group = inner
            .multiraft
            .group(Self::group_of(partition))
            .ok_or_else(|| CfsError::NotFound(format!("{partition}")))?;
        if !group.is_leader() {
            return Err(CfsError::NotLeader {
                partition,
                hint: group.leader_hint(),
            });
        }
        let (start, end) = {
            let p = inner.partitions.get(&partition).expect("checked above");
            (p.config().start, p.config().end)
        };
        inner.fence(partition, cmd.out_of_range(start, end))?;
        // Keep a live overlay exactly `replicated tree ⊕ queued prefix`:
        // sync writes replay onto it in queue order too (result ignored —
        // the replicated apply is what the ticket resolves with).
        if let Some((_, overlay)) = inner.overlays.get_mut(&partition) {
            let _ = cmd.apply(overlay);
        }
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner
            .queues
            .entry(Self::group_of(partition))
            .or_default()
            .push_back((ticket, cmd.to_bytes()));
        Ok(ticket)
    }

    /// Take the resolved result of an enqueued write, if its frame has
    /// applied.
    pub fn take_write_result(&self, ticket: u64) -> Option<Result<MetaValue>> {
        self.inner.lock().ticket_results.remove(&ticket)
    }

    /// Asynchronous metadata commit (DESIGN §12). The op is applied to
    /// the leader's speculative overlay (so domain errors — `Exists`,
    /// `NotFound` — return synchronously and reads see the effect at
    /// once), durably journaled as an intent, and enqueued for the next
    /// group-commit frame. **No hub pump**: the ack carries zero
    /// consensus rounds; `fsync`/`close` is the opt-in strong barrier.
    ///
    /// Overlay establishment requires a clean window (fully applied
    /// group, empty accumulator, no inflight frame, empty journal);
    /// otherwise the client is told to fall back to the sync path.
    pub fn write_async(
        &self,
        partition: PartitionId,
        cmd: &MetaCommand,
        ctx: IntentContext,
    ) -> Result<MetaResponse> {
        let inner = &mut *self.inner.lock();
        inner.page_in(partition);
        if !inner.partitions.contains_key(&partition) {
            return Err(CfsError::NotFound(format!("{partition}")));
        }
        let gid = Self::group_of(partition);
        let (is_leader, term, hint, caught_up) = match inner.multiraft.group(gid) {
            Some(g) => (
                g.is_leader(),
                g.term(),
                g.leader_hint(),
                g.applied_index() == g.commit_index() && g.commit_index() == g.last_index(),
            ),
            None => return Err(CfsError::NotFound(format!("{partition}"))),
        };
        if !is_leader {
            return Err(CfsError::NotLeader { partition, hint });
        }
        let (start, end) = {
            let p = inner.partitions.get(&partition).expect("checked above");
            (p.config().start, p.config().end)
        };
        inner.fence(partition, cmd.out_of_range(start, end))?;

        // Establish (or validate) the overlay.
        let valid = match inner.overlays.get(&partition) {
            Some((t, _)) if *t == term => true,
            Some(_) => {
                inner.overlays.remove(&partition);
                false
            }
            None => false,
        };
        if !valid {
            let clean = caught_up
                && inner.queues.get(&gid).map(|q| q.is_empty()).unwrap_or(true)
                && !inner.inflight.contains_key(&gid)
                && inner
                    .intents
                    .get(&partition)
                    .map(|m| m.is_empty())
                    .unwrap_or(true);
            if !clean {
                if let Some(o) = inner.obs.as_ref() {
                    o.async_fallbacks.inc();
                }
                return Ok(MetaResponse::SyncFallback);
            }
            let clone = inner
                .partitions
                .get(&partition)
                .expect("checked above")
                .clone();
            inner.overlays.insert(partition, (term, clone));
        }

        // Speculative apply; a domain error leaves the overlay untouched
        // and returns synchronously — nothing was acked.
        let value = {
            let (_, overlay) = inner.overlays.get_mut(&partition).expect("ensured above");
            cmd.apply(overlay)?
        };
        // Pin nondeterministic allocation: the replicated command must
        // reproduce the overlay's exact effect no matter what interleaves.
        let pinned = match (cmd, &value) {
            (
                MetaCommand::CreateInode {
                    file_type,
                    link_target,
                    now_ns,
                },
                MetaValue::Inode(i),
            ) => MetaCommand::CreateInodeAt {
                id: i.id,
                file_type: *file_type,
                link_target: link_target.clone(),
                now_ns: *now_ns,
            },
            _ => cmd.clone(),
        };

        // Durable intent first, then the group-commit enqueue: the ack
        // must never outrun the journal.
        let intent = inner.mint_intent(self.id);
        inner.journal_intent(
            partition,
            IntentRecord {
                id: intent,
                cmd: pinned.clone(),
                ctx,
                proposed: None,
            },
        );
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        let framed = MetaCommand::Tagged {
            intent,
            inner: Box::new(pinned),
        };
        inner
            .queues
            .entry(gid)
            .or_default()
            .push_back((ticket, framed.to_bytes()));
        inner.ticket_intents.insert(ticket, (partition, intent));
        if let Some(o) = inner.obs.as_ref() {
            o.async_acks.inc();
        }
        Ok(MetaResponse::Acked { intent, value })
    }

    /// Strong barrier (`fsync`/`close`): pump until every listed intent
    /// has left the journal — retired by its group commit or turned into
    /// a compensation — and report the compensated ones. Served by the
    /// *acking* node; resolution advances whether or not it still leads
    /// (log replay retires, the resolution pass compensates).
    pub fn barrier(&self, partition: PartitionId, intents: &[u64]) -> Result<MetaResponse> {
        {
            let inner = self.inner.lock();
            if inner.multiraft.group(Self::group_of(partition)).is_none() {
                return Err(CfsError::Unavailable(format!(
                    "{partition}: not hosted here"
                )));
            }
        }
        let drained = self.hub.pump_until(
            || {
                let inner = self.inner.lock();
                inner
                    .intents
                    .get(&partition)
                    .map(|m| intents.iter().all(|i| !m.contains_key(i)))
                    .unwrap_or(true)
            },
            self.commit_timeout_ticks,
        );
        if !drained {
            return Err(CfsError::Timeout(format!(
                "{partition}: async commit barrier"
            )));
        }
        let inner = self.inner.lock();
        let compensated: Vec<u64> = intents
            .iter()
            .copied()
            .filter(|i| {
                inner.compensated_log.contains(i)
                    || inner
                        .comps
                        .get(&partition)
                        .map(|m| m.contains_key(i))
                        .unwrap_or(false)
            })
            .collect();
        Ok(MetaResponse::Drained { compensated })
    }

    /// Unexecuted compensation records across all hosted partitions,
    /// sorted by intent id (heartbeat reconciliation payload).
    pub fn compensations(&self) -> Vec<CompensationRecord> {
        let inner = self.inner.lock();
        let mut all: Vec<CompensationRecord> = inner
            .comps
            .values()
            .flat_map(|m| m.values().cloned())
            .collect();
        all.sort_by_key(|c| c.id);
        all
    }

    /// Drop compensation records the orphan sweep has executed.
    pub fn ack_compensations(&self, partition: PartitionId, ids: &[u64]) {
        let inner = &mut *self.inner.lock();
        let Some(m) = inner.comps.get_mut(&partition) else {
            return;
        };
        for id in ids {
            if m.remove(id).is_some() {
                if let Some(e) = &inner.engine {
                    let _ = e.delete::<CompCf>(&(partition.raw(), *id));
                }
            }
        }
        if m.is_empty() {
            inner.comps.remove(&partition);
        }
    }

    /// Journaled intents not yet resolved, across all partitions (chaos
    /// quiesce + fsck drain signal).
    pub fn pending_intent_count(&self) -> u64 {
        let inner = self.inner.lock();
        inner.intents.values().map(|m| m.len() as u64).sum()
    }

    /// Compensation records awaiting the orphan sweep, across all
    /// partitions.
    pub fn pending_compensation_count(&self) -> u64 {
        let inner = self.inner.lock();
        inner.comps.values().map(|m| m.len() as u64).sum()
    }

    /// Pre-batching write path: propose one command per log entry, pump
    /// the hub until committed and applied, return the apply result.
    fn write_unbatched(&self, partition: PartitionId, cmd: &MetaCommand) -> Result<MetaValue> {
        let group = Self::group_of(partition);
        let index = {
            let mut inner = self.inner.lock();
            inner.page_in(partition);
            if !inner.partitions.contains_key(&partition) {
                return Err(CfsError::NotFound(format!("{partition}")));
            }
            // The unbatched path bypasses the group-commit queue, so it
            // cannot interleave correctly with a live overlay's
            // speculation (batching-off and async are mutually exclusive).
            if inner.overlays.contains_key(&partition) {
                return Err(CfsError::Unavailable(format!(
                    "{partition}: async overlay active"
                )));
            }
            let (start, end) = {
                let p = inner.partitions.get(&partition).expect("checked above");
                (p.config().start, p.config().end)
            };
            inner.fence(partition, cmd.out_of_range(start, end))?;
            let node = inner
                .multiraft
                .group_mut(group)
                .ok_or_else(|| CfsError::NotFound(format!("{partition}")))?;
            node.propose(cmd.to_bytes())?
        };
        let committed = self.hub.pump_until(
            || self.inner.lock().results.contains_key(&(group, index)),
            self.commit_timeout_ticks,
        );
        if !committed {
            return Err(CfsError::Timeout(format!(
                "{partition}: commit of index {index}"
            )));
        }
        self.inner
            .lock()
            .results
            .remove(&(group, index))
            .expect("result present per pump predicate")
    }

    /// Status of one partition.
    pub fn info(&self, partition: PartitionId) -> Result<PartitionInfo> {
        let mut inner = self.inner.lock();
        inner.page_in(partition);
        let p = inner
            .partitions
            .get(&partition)
            .ok_or_else(|| CfsError::NotFound(format!("{partition}")))?;
        let group = inner.multiraft.group(Self::group_of(partition));
        let pending = Self::pending_counts(&inner, partition);
        Ok(Self::mk_info(p, group, pending))
    }

    /// `(pending intents, pending compensations)` of one partition.
    fn pending_counts(inner: &Inner, pid: PartitionId) -> (u64, u64) {
        (
            inner.intents.get(&pid).map(|m| m.len() as u64).unwrap_or(0),
            inner.comps.get(&pid).map(|m| m.len() as u64).unwrap_or(0),
        )
    }

    fn mk_info(
        p: &MetaPartition,
        group: Option<&cfs_raft::RaftNode>,
        pending: (u64, u64),
    ) -> PartitionInfo {
        let cfg = p.config();
        PartitionInfo {
            partition_id: cfg.partition_id,
            volume_id: cfg.volume_id,
            start: cfg.start,
            end: cfg.end,
            item_count: p.item_count(),
            max_inode: p.max_inode(),
            applied: group.map(|g| g.applied_index()).unwrap_or(0),
            is_leader: group.map(|g| g.is_leader()).unwrap_or(false),
            leader_hint: group.and_then(|g| g.leader_hint()),
            pending_intents: pending.0,
            pending_compensations: pending.1,
        }
    }

    /// Status of all partitions (heartbeat payload to the resource
    /// manager).
    pub fn report(&self) -> Vec<PartitionInfo> {
        let inner = self.inner.lock();
        let mut infos: Vec<PartitionInfo> = inner
            .partitions
            .values()
            .map(|p| {
                let pid = p.config().partition_id;
                Self::mk_info(
                    p,
                    inner.multiraft.group(Self::group_of(pid)),
                    Self::pending_counts(&inner, pid),
                )
            })
            .collect();
        infos.sort_by_key(|i| i.partition_id);
        infos
    }

    /// Total items across partitions: the node's "memory utilization"
    /// signal for placement (§2.3.1).
    pub fn total_items(&self) -> u64 {
        let inner = self.inner.lock();
        inner.partitions.values().map(|p| p.item_count()).sum()
    }

    /// Partitions hosted.
    pub fn partition_count(&self) -> usize {
        self.inner.lock().partitions.len()
    }

    /// Is this node the Raft leader for `partition`?
    pub fn is_leader_for(&self, partition: PartitionId) -> bool {
        self.inner
            .lock()
            .multiraft
            .group(Self::group_of(partition))
            .map(|g| g.is_leader())
            .unwrap_or(false)
    }

    /// Drain the free list of a partition (background cleaner hook).
    pub fn drain_free_list(&self, partition: PartitionId) -> Vec<InodeId> {
        self.inner
            .lock()
            .partitions
            .get_mut(&partition)
            .map(|p| p.drain_free_list())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Crash / restart (chaos harness)
    // ------------------------------------------------------------------

    /// Capture the durable image this node would have on disk if it
    /// crashed right now. Volatile state (live trees, pending results) is
    /// excluded by construction.
    pub fn export_crash_image(&self) -> MetaNodePersist {
        let inner = self.inner.lock();
        let mut partitions: Vec<(MetaPartitionConfig, Vec<NodeId>, PersistentRaftState)> = inner
            .partitions
            .iter()
            .filter_map(|(pid, p)| {
                let group = inner.multiraft.group(Self::group_of(*pid))?;
                Some((
                    p.config().clone(),
                    group.members().to_vec(),
                    group.persistent_state(),
                ))
            })
            .collect();
        partitions.sort_by_key(|(c, _, _)| c.partition_id);
        let mut intents: Vec<(PartitionId, Vec<IntentRecord>)> = inner
            .intents
            .iter()
            .filter(|(_, m)| !m.is_empty())
            .map(|(pid, m)| (*pid, m.values().cloned().collect()))
            .collect();
        intents.sort_by_key(|(pid, _)| *pid);
        let mut comps: Vec<(PartitionId, Vec<CompensationRecord>)> = inner
            .comps
            .iter()
            .filter(|(_, m)| !m.is_empty())
            .map(|(pid, m)| (*pid, m.values().cloned().collect()))
            .collect();
        comps.sort_by_key(|(pid, _)| *pid);
        let mut compensated: Vec<u64> = inner.compensated_log.iter().copied().collect();
        compensated.sort_unstable();
        MetaNodePersist {
            partitions,
            intents,
            comps,
            compensated,
        }
    }

    /// Rebuild a meta node from its durable image after a crash and
    /// register it on the hub.
    ///
    /// Each partition's tree restarts from the last compaction snapshot
    /// (or empty, if none was ever taken); committed log entries above the
    /// snapshot base re-apply through the normal `Ready` path once the
    /// group rejoins — the snapshot + log replay recovery of §2.1.3.
    pub fn restore(
        id: NodeId,
        hub: RaftHub,
        raft_config: RaftConfig,
        seed: u64,
        image: MetaNodePersist,
    ) -> Result<Arc<Self>> {
        Self::restore_with_registry(id, hub, raft_config, seed, image, None)
    }

    /// [`MetaNode::restore`] with metrics re-bound to `registry` (counters
    /// continue across the crash; they are cluster-level, not per-boot).
    pub fn restore_with_registry(
        id: NodeId,
        hub: RaftHub,
        raft_config: RaftConfig,
        seed: u64,
        image: MetaNodePersist,
        registry: Option<&Registry>,
    ) -> Result<Arc<Self>> {
        let mut multiraft = MultiRaft::new(id, raft_config, seed, true);
        if let Some(r) = registry {
            multiraft.set_metrics(RaftMetrics::bind(r));
        }
        let node = Arc::new(MetaNode {
            id,
            hub: hub.clone(),
            inner: Mutex::new(Inner::fresh(multiraft, registry.map(MetaObs::new))),
            commit_timeout_ticks: 2_000,
            batching: AtomicBool::new(true),
        });
        {
            let mut inner = node.inner.lock();
            for (config, members, state) in image.partitions {
                let pid = config.partition_id;
                let partition = match &state.snapshot {
                    Some(s) => MetaPartition::from_snapshot(pid, &s.data)?,
                    None => MetaPartition::new(config),
                };
                inner
                    .multiraft
                    .restore_group(Self::group_of(pid), members, state)?;
                inner.partitions.insert(pid, partition);
            }
            // Compensation-engine recovery (mirrors the engine-backed
            // journal scan in `open_with_registry`).
            let mut max_seq = 0u64;
            for (pid, recs) in image.intents {
                for rec in recs {
                    max_seq = max_seq.max(rec.id & INTENT_SEQ_MASK);
                    inner.recovered_intents.insert(rec.id);
                    inner.intents.entry(pid).or_default().insert(rec.id, rec);
                }
            }
            for (pid, comps) in image.comps {
                for c in comps {
                    max_seq = max_seq.max(c.id & INTENT_SEQ_MASK);
                    inner.comps.entry(pid).or_default().insert(c.id, c);
                }
            }
            for cid in image.compensated {
                max_seq = max_seq.max(cid & INTENT_SEQ_MASK);
                inner.compensated_log.insert(cid);
            }
            inner.next_intent_seq = max_seq + 1;
        }
        hub.register(node.clone() as Arc<dyn RaftHost>);
        Ok(node)
    }

    /// Hosted partition ids, sorted.
    pub fn partition_ids(&self) -> Vec<PartitionId> {
        let mut ids: Vec<PartitionId> = self.inner.lock().partitions.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Serialized image of one partition's live tree. The chaos invariant
    /// checker compares these byte-for-byte across replicas once their
    /// applied indexes agree.
    pub fn partition_snapshot(&self, partition: PartitionId) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        inner.page_in(partition);
        inner.partitions.get(&partition).map(|p| p.snapshot_bytes())
    }

    // ------------------------------------------------------------------
    // Cold-inode paging
    // ------------------------------------------------------------------

    /// Cold-inode paging, outbound half: persist the partition's tree to
    /// the engine and drop it from memory (bounding resident metadata on
    /// a node hosting many cold partitions). The tree pages back in
    /// transparently on the next access. Engine-backed nodes only.
    pub fn page_out(&self, partition: PartitionId) -> Result<()> {
        let mut inner = self.inner.lock();
        let Some(engine) = inner.engine.clone() else {
            return Err(CfsError::InvalidArgument(
                "page_out requires an engine-backed node".into(),
            ));
        };
        let Some(p) = inner.partitions.get(&partition) else {
            return Err(CfsError::NotFound(format!("{partition}")));
        };
        engine.put::<ColdCf>(&partition.raw(), &p.snapshot_bytes())?;
        inner.partitions.remove(&partition);
        if let Some(o) = inner.obs.as_ref() {
            o.pages_out.inc();
        }
        Ok(())
    }

    /// Is the partition's tree currently paged out (registry row exists
    /// but no resident tree)?
    pub fn is_paged_out(&self, partition: PartitionId) -> bool {
        let inner = self.inner.lock();
        !inner.partitions.contains_key(&partition)
            && inner
                .engine
                .as_ref()
                .map(|e| matches!(e.get::<ColdCf>(&partition.raw()), Ok(Some(_))))
                .unwrap_or(false)
    }

    /// `(commit, applied, last_index)` of the partition's raft group.
    pub fn raft_indices(&self, partition: PartitionId) -> Option<(u64, u64, u64)> {
        let inner = self.inner.lock();
        inner
            .multiraft
            .group(Self::group_of(partition))
            .map(|g| (g.commit_index(), g.applied_index(), g.last_index()))
    }

    /// Current Raft term of the partition's group (tests + debugging).
    pub fn raft_term(&self, partition: PartitionId) -> Option<u64> {
        let inner = self.inner.lock();
        inner
            .multiraft
            .group(Self::group_of(partition))
            .map(|g| g.term())
    }

    /// Wire-level MultiRaft traffic counters for this node (the raft-set
    /// budget test and `ablation_raftsets` read these).
    pub fn multiraft_stats(&self) -> cfs_raft::MultiRaftStats {
        self.inner.lock().multiraft.stats()
    }

    /// Distinct destination nodes this node's consensus layer has ever
    /// addressed — bounded by the Raft-set size (§2.5.1) no matter how
    /// many partitions the node hosts.
    pub fn raft_distinct_peers(&self) -> usize {
        self.inner.lock().multiraft.distinct_peers()
    }

    /// Whether the partition's group currently holds a valid read lease
    /// (leader only; see [`cfs_raft::RaftNode::lease_valid`]).
    pub fn holds_lease_for(&self, partition: PartitionId) -> bool {
        let inner = self.inner.lock();
        inner
            .multiraft
            .group(Self::group_of(partition))
            .map(|g| g.is_leader() && g.lease_valid())
            .unwrap_or(false)
    }
}

impl RaftHost for MetaNode {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn raft_tick(&self) {
        self.inner.lock().multiraft.tick_all();
    }

    fn raft_drain(&self) -> Vec<WireEnvelope> {
        let mut inner = self.inner.lock();
        // Group commit: everything enqueued since the last round goes out
        // as one batch frame per group, ahead of this round's messages.
        inner.flush_group_commit();
        // Overlays pinned to an ended leader term can no longer converge.
        inner.sweep_overlays();
        let (msgs, readies) = inner.multiraft.drain();
        for (gid, ready) in readies {
            let pid = PartitionId(gid.raw());
            // A paged-out tree must be resident before entries apply.
            inner.page_in(pid);

            // Restore a received snapshot before applying entries.
            if let Some(snap) = ready.snapshot {
                match MetaPartition::from_snapshot(pid, &snap.data) {
                    Ok(p) => {
                        inner.partitions.insert(pid, p);
                        if let Some(o) = inner.obs.as_ref() {
                            o.snapshot_restores.inc();
                        }
                    }
                    Err(e) => {
                        debug_assert!(false, "snapshot restore failed: {e}");
                    }
                }
            }

            let is_leader = inner
                .multiraft
                .group(gid)
                .map(|g| g.is_leader())
                .unwrap_or(false);
            for entry in ready.committed {
                // Was this index claimed by our inflight batch frame?
                let claimed = inner.inflight.get(&gid).map(|&(t, i, _)| (t, i));
                let frame_is_ours = match claimed {
                    Some((term, index)) if index == entry.index => {
                        if term == entry.term {
                            true
                        } else {
                            // Another leader's entry landed at our frame's
                            // index: the frame was lost in an election.
                            let hint = inner.multiraft.group(gid).and_then(|g| g.leader_hint());
                            let (_, _, tickets) =
                                inner.inflight.remove(&gid).expect("checked above");
                            inner.fail_tickets(
                                tickets,
                                CfsError::NotLeader {
                                    partition: pid,
                                    hint,
                                },
                            );
                            false
                        }
                    }
                    _ => false,
                };
                if entry.data.is_empty() {
                    continue; // leader no-op
                }
                match decode_batch_frame(&entry.data) {
                    Some(Ok(cmds)) => {
                        // `apply_one` moves both counters together, once
                        // per apply *attempt* (deterministic error
                        // outcomes are replicated state too), so
                        // `raft.batch.entries == Σ meta.applies` holds on
                        // every replica; it also settles tagged intents
                        // (retire on commit, compensate on failure).
                        let mut results = Vec::with_capacity(cmds.len());
                        for bytes in &cmds {
                            results.push(inner.apply_one(pid, bytes, true));
                        }
                        if frame_is_ours {
                            let (_, _, tickets) =
                                inner.inflight.remove(&gid).expect("claimed above");
                            debug_assert_eq!(tickets.len(), results.len());
                            for (t, r) in tickets.into_iter().zip(results) {
                                inner.ticket_results.insert(t, r);
                            }
                        }
                    }
                    Some(Err(e)) => {
                        debug_assert!(false, "corrupt batch frame: {e}");
                        if frame_is_ours {
                            let (_, _, tickets) =
                                inner.inflight.remove(&gid).expect("claimed above");
                            inner.fail_tickets(tickets, e);
                        }
                    }
                    None => {
                        // Single-command entry (the batching-off path).
                        let result = inner.apply_one(pid, &entry.data, false);
                        if is_leader {
                            inner.results.insert((gid, entry.index), result);
                        }
                    }
                }
            }

            // Log compaction (§2.1.3): snapshot the partition and truncate.
            let wants = inner
                .multiraft
                .group(gid)
                .map(|g| g.wants_compaction())
                .unwrap_or(false);
            if wants {
                if let Some(p) = inner.partitions.get(&pid) {
                    let data = p.snapshot_bytes();
                    if let Some(g) = inner.multiraft.group_mut(gid) {
                        let (idx, term) = g.compaction_point();
                        g.compact(SnapshotPayload {
                            last_index: idx,
                            last_term: term,
                            data,
                        });
                        if let Some(o) = inner.obs.as_ref() {
                            o.snapshots_taken.inc();
                        }
                    }
                }
            }
        }
        // Settle journal entries the tagged-apply path will never see
        // (dead or snapshot-folded intents), then drop overlays whose
        // partition fully quiesced.
        inner.resolve_intents();
        inner.teardown_overlays();
        // Bound the orphaned-results maps (followers that later became
        // leaders, abandoned client requests…).
        if inner.results.len() > 65_536 {
            inner.results.clear();
        }
        if inner.ticket_results.len() > 65_536 {
            inner.ticket_results.clear();
        }
        msgs
    }

    fn raft_deliver(&self, env: WireEnvelope) {
        self.inner.lock().multiraft.receive(env.from, env.msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_types::FileType;

    fn cluster(n: u64) -> (RaftHub, Vec<Arc<MetaNode>>) {
        let hub = RaftHub::new();
        let nodes: Vec<Arc<MetaNode>> = (1..=n)
            .map(|i| MetaNode::new(NodeId(i), hub.clone(), RaftConfig::default(), 1234))
            .collect();
        (hub, nodes)
    }

    fn mk_partition(hub: &RaftHub, nodes: &[Arc<MetaNode>], pid: u64) -> PartitionId {
        let members: Vec<NodeId> = nodes.iter().map(|n| n.id()).collect();
        let config = MetaPartitionConfig {
            partition_id: PartitionId(pid),
            volume_id: VolumeId(1),
            start: InodeId(1),
            end: InodeId::MAX,
        };
        for n in nodes {
            n.create_partition(config.clone(), members.clone()).unwrap();
        }
        let p = PartitionId(pid);
        assert!(hub.pump_until(|| nodes.iter().any(|n| n.is_leader_for(p)), 5_000));
        p
    }

    fn leader_of(nodes: &[Arc<MetaNode>], p: PartitionId) -> Arc<MetaNode> {
        nodes
            .iter()
            .find(|n| n.is_leader_for(p))
            .expect("leader exists")
            .clone()
    }

    #[test]
    fn replicated_create_and_read() {
        let (hub, nodes) = cluster(3);
        let p = mk_partition(&hub, &nodes, 1);
        let leader = leader_of(&nodes, p);

        let root = leader
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::Dir,
                    link_target: vec![],
                    now_ns: 1,
                },
            )
            .unwrap()
            .into_inode()
            .unwrap();
        assert_eq!(root.id, InodeId(1));

        let f = leader
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::File,
                    link_target: vec![],
                    now_ns: 2,
                },
            )
            .unwrap()
            .into_inode()
            .unwrap();
        leader
            .write(
                p,
                &MetaCommand::CreateDentry {
                    parent: root.id,
                    name: "hello".into(),
                    inode: f.id,
                    file_type: FileType::File,
                },
            )
            .unwrap();

        let d = leader
            .read(
                p,
                &MetaRead::Lookup {
                    parent: root.id,
                    name: "hello".into(),
                },
            )
            .unwrap()
            .into_dentry()
            .unwrap();
        assert_eq!(d.inode, f.id);

        // All replicas converged (run a few heartbeats to propagate commit).
        for _ in 0..200 {
            hub.tick_and_pump();
        }
        for n in &nodes {
            assert_eq!(n.total_items(), 3, "{}", n.id());
        }
    }

    #[test]
    fn follower_redirects_with_leader_hint() {
        let (hub, nodes) = cluster(3);
        let p = mk_partition(&hub, &nodes, 1);
        let leader = leader_of(&nodes, p);
        let follower = nodes.iter().find(|n| !n.is_leader_for(p)).unwrap();

        let err = follower
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::File,
                    link_target: vec![],
                    now_ns: 0,
                },
            )
            .unwrap_err();
        match err {
            CfsError::NotLeader { hint, .. } => {
                assert_eq!(hint, Some(leader.id()), "hint points at the leader");
            }
            other => panic!("expected NotLeader, got {other}"),
        }
        let err = follower
            .read(p, &MetaRead::ReadDir { parent: InodeId(1) })
            .unwrap_err();
        assert!(matches!(err, CfsError::NotLeader { .. }));
    }

    #[test]
    fn writes_survive_leader_failover() {
        let (hub, nodes) = cluster(3);
        let faults = cfs_types::FaultState::new();
        hub.set_faults(faults.clone());
        let p = mk_partition(&hub, &nodes, 1);
        let leader = leader_of(&nodes, p);

        leader
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::Dir,
                    link_target: vec![],
                    now_ns: 1,
                },
            )
            .unwrap();

        faults.set_down(leader.id(), true);
        assert!(hub.pump_until(
            || nodes
                .iter()
                .any(|n| n.id() != leader.id() && n.is_leader_for(p)),
            10_000
        ));
        let new_leader = nodes
            .iter()
            .find(|n| n.id() != leader.id() && n.is_leader_for(p))
            .unwrap();

        // The new leader sees the old write and accepts new ones.
        let f = new_leader
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::File,
                    link_target: vec![],
                    now_ns: 2,
                },
            )
            .unwrap()
            .into_inode()
            .unwrap();
        assert_eq!(f.id, InodeId(2), "allocation continued after the root");
    }

    #[test]
    fn multiple_partitions_on_same_nodes() {
        let (hub, nodes) = cluster(3);
        let p1 = mk_partition(&hub, &nodes, 1);
        let p2 = mk_partition(&hub, &nodes, 2);
        let l1 = leader_of(&nodes, p1);
        let l2 = leader_of(&nodes, p2);
        // Inode spaces are independent.
        let a = l1
            .write(
                p1,
                &MetaCommand::CreateInode {
                    file_type: FileType::File,
                    link_target: vec![],
                    now_ns: 0,
                },
            )
            .unwrap()
            .into_inode()
            .unwrap();
        let b = l2
            .write(
                p2,
                &MetaCommand::CreateInode {
                    file_type: FileType::File,
                    link_target: vec![],
                    now_ns: 0,
                },
            )
            .unwrap()
            .into_inode()
            .unwrap();
        assert_eq!(a.id, InodeId(1));
        assert_eq!(b.id, InodeId(1));
        assert_eq!(l1.info(p1).unwrap().item_count, 1);
    }

    #[test]
    fn create_partition_is_idempotent_for_same_config() {
        let (_hub, nodes) = cluster(1);
        let cfg = MetaPartitionConfig {
            partition_id: PartitionId(5),
            volume_id: VolumeId(1),
            start: InodeId(1),
            end: InodeId::MAX,
        };
        nodes[0]
            .create_partition(cfg.clone(), vec![nodes[0].id()])
            .unwrap();
        nodes[0]
            .create_partition(cfg.clone(), vec![nodes[0].id()])
            .unwrap();
        let mut other = cfg;
        other.start = InodeId(100);
        assert!(nodes[0]
            .create_partition(other, vec![nodes[0].id()])
            .is_err());
    }

    #[test]
    fn bound_registry_counts_per_partition_applies() {
        let hub = RaftHub::new();
        let registry = Registry::new();
        let nodes: Vec<Arc<MetaNode>> = (1..=3)
            .map(|i| {
                MetaNode::with_registry(
                    NodeId(i),
                    hub.clone(),
                    RaftConfig::default(),
                    1234,
                    Some(&registry),
                )
            })
            .collect();
        let p = mk_partition(&hub, &nodes, 1);
        let leader = leader_of(&nodes, p);
        leader
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: cfs_types::FileType::File,
                    link_target: vec![],
                    now_ns: 1,
                },
            )
            .unwrap();
        for _ in 0..200 {
            hub.tick_and_pump();
        }
        let snap = registry.snapshot();
        // Each of the three replicas applied the one create.
        assert_eq!(
            snap.counter(&format!("meta.applies{{partition={p},op=create_inode}}")),
            3
        );
        assert!(snap.counter("raft.leader_elections") >= 1, "election seen");
        assert!(snap.counter("raft.proposals") >= 1, "proposal seen");
    }

    fn registry_cluster(n: u64) -> (RaftHub, Registry, Vec<Arc<MetaNode>>) {
        let hub = RaftHub::new();
        let registry = Registry::new();
        let nodes: Vec<Arc<MetaNode>> = (1..=n)
            .map(|i| {
                MetaNode::with_registry(
                    NodeId(i),
                    hub.clone(),
                    RaftConfig::default(),
                    1234,
                    Some(&registry),
                )
            })
            .collect();
        (hub, registry, nodes)
    }

    #[test]
    fn group_commit_coalesces_concurrent_writes_into_one_round() {
        let (hub, registry, nodes) = registry_cluster(3);
        let p = mk_partition(&hub, &nodes, 1);
        let leader = leader_of(&nodes, p);
        let before = registry.snapshot();

        let tickets: Vec<u64> = (0..8)
            .map(|i| {
                leader
                    .enqueue_write(
                        p,
                        &MetaCommand::CreateInode {
                            file_type: FileType::File,
                            link_target: vec![],
                            now_ns: i,
                        },
                    )
                    .unwrap()
            })
            .collect();
        assert!(hub.pump_until(
            || tickets
                .iter()
                .all(|&t| leader.inner.lock().ticket_results.contains_key(&t)),
            5_000
        ));
        let mut ids = Vec::new();
        for t in &tickets {
            let inode = leader
                .take_write_result(*t)
                .expect("resolved")
                .unwrap()
                .into_inode()
                .unwrap();
            ids.push(inode.id);
        }
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 8, "every write allocated a distinct inode");

        // Let the frame replicate everywhere, then reconcile counters.
        for _ in 0..200 {
            hub.tick_and_pump();
        }
        let diff = registry.snapshot().diff(&before);
        assert_eq!(diff.counter("raft.proposals"), 1, "one frame, one round");
        assert_eq!(diff.counter("raft.batch.commits"), 1);
        assert_eq!(
            diff.counter("raft.batch.entries"),
            8 * 3,
            "eight sub-commands applied on each of three replicas"
        );
        assert_eq!(
            diff.counter(&format!("meta.applies{{partition={p},op=create_inode}}")),
            8 * 3
        );
    }

    #[test]
    fn batched_sub_commands_resolve_results_individually() {
        let (hub, nodes) = cluster(3);
        let p = mk_partition(&hub, &nodes, 1);
        let leader = leader_of(&nodes, p);
        let root = leader
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::Dir,
                    link_target: vec![],
                    now_ns: 1,
                },
            )
            .unwrap()
            .into_inode()
            .unwrap();
        let f = leader
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::File,
                    link_target: vec![],
                    now_ns: 2,
                },
            )
            .unwrap()
            .into_inode()
            .unwrap();
        // Two identical dentry creates in ONE frame: first wins, second
        // gets its own Exists error.
        let dentry = MetaCommand::CreateDentry {
            parent: root.id,
            name: "dup".into(),
            inode: f.id,
            file_type: FileType::File,
        };
        let t1 = leader.enqueue_write(p, &dentry).unwrap();
        let t2 = leader.enqueue_write(p, &dentry).unwrap();
        assert!(hub.pump_until(
            || {
                let inner = leader.inner.lock();
                inner.ticket_results.contains_key(&t1) && inner.ticket_results.contains_key(&t2)
            },
            5_000
        ));
        assert!(leader.take_write_result(t1).unwrap().is_ok());
        assert!(matches!(
            leader.take_write_result(t2).unwrap(),
            Err(CfsError::Exists(_))
        ));
    }

    #[test]
    fn batching_off_proposes_one_entry_per_command() {
        let (hub, registry, nodes) = registry_cluster(3);
        let p = mk_partition(&hub, &nodes, 1);
        let leader = leader_of(&nodes, p);
        for n in &nodes {
            n.set_batching(false);
        }
        let before = registry.snapshot();
        for i in 0..3 {
            leader
                .write(
                    p,
                    &MetaCommand::CreateInode {
                        file_type: FileType::File,
                        link_target: vec![],
                        now_ns: i,
                    },
                )
                .unwrap();
        }
        let diff = registry.snapshot().diff(&before);
        assert_eq!(diff.counter("raft.proposals"), 3, "no coalescing");
        assert_eq!(diff.counter("raft.batch.commits"), 0);
        assert_eq!(diff.counter("raft.batch.entries"), 0);
    }

    #[test]
    fn leader_reads_split_between_lease_and_quorum_paths() {
        let (hub, registry, nodes) = registry_cluster(3);
        let p = mk_partition(&hub, &nodes, 1);
        let leader = leader_of(&nodes, p);
        leader
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::Dir,
                    link_target: vec![],
                    now_ns: 1,
                },
            )
            .unwrap();
        // Let heartbeats renew the lease.
        for _ in 0..200 {
            hub.tick_and_pump();
        }
        let before = registry.snapshot();
        for _ in 0..10 {
            leader
                .read(p, &MetaRead::GetInode { inode: InodeId(1) })
                .unwrap();
        }
        let diff = registry.snapshot().diff(&before);
        assert_eq!(
            diff.counter("meta.lease_reads") + diff.counter("meta.quorum_reads"),
            10,
            "every served read is classified"
        );
        assert!(
            diff.counter("meta.lease_reads") > 0,
            "steady-state leader holds its lease"
        );
    }

    #[test]
    fn lagging_replica_catches_up_via_snapshot_after_compaction() {
        let (hub, nodes) = cluster(3);
        let faults = cfs_types::FaultState::new();
        hub.set_faults(faults.clone());
        // Small compaction threshold via custom config.
        let p = mk_partition(&hub, &nodes, 1);
        let leader = leader_of(&nodes, p);
        let laggard = nodes.iter().find(|n| !n.is_leader_for(p)).unwrap().clone();

        faults.set_down(laggard.id(), true);
        for i in 0..50 {
            leader
                .write(
                    p,
                    &MetaCommand::CreateInode {
                        file_type: FileType::File,
                        link_target: vec![],
                        now_ns: i,
                    },
                )
                .unwrap();
        }
        // Force compaction on the leader by draining with a snapshot taken
        // manually: lower-level hook — run enough writes that the default
        // threshold (4096) is NOT reached; compact explicitly instead.
        {
            let mut inner = leader.inner.lock();
            let data = inner.partitions.get(&p).unwrap().snapshot_bytes();
            let g = inner.multiraft.group_mut(RaftGroupId(p.raw())).unwrap();
            let (idx, term) = g.compaction_point();
            g.compact(SnapshotPayload {
                last_index: idx,
                last_term: term,
                data,
            });
            assert_eq!(g.live_log_len(), 0);
        }

        faults.set_down(laggard.id(), false);
        assert!(hub.pump_until(|| laggard.total_items() == 50, 10_000));
        assert_eq!(laggard.info(p).unwrap().max_inode, InodeId(50));
    }

    /// Lease safety: a deposed leader must never answer a read from its
    /// stale tree. The config invariant `lease_ticks < election_timeout_min`
    /// guarantees that by the time any replacement leader can be elected,
    /// the old leader's lease has already expired on its own clock — so the
    /// read falls back to the quorum barrier, which a cut node cannot pass.
    #[test]
    fn deposed_leader_cannot_serve_stale_lease_read() {
        let (hub, registry, nodes) = registry_cluster(3);
        let faults = cfs_types::FaultState::new();
        hub.set_faults(faults.clone());
        let p = mk_partition(&hub, &nodes, 1);
        let old_leader = leader_of(&nodes, p);
        assert!(old_leader.holds_lease_for(p), "steady-state lease held");
        let old_term = old_leader.raft_term(p).unwrap();

        // Partition the leader away and let the survivors elect.
        faults.set_down(old_leader.id(), true);
        let survivors: Vec<_> = nodes
            .iter()
            .filter(|n| n.id() != old_leader.id())
            .cloned()
            .collect();
        assert!(
            hub.pump_until(|| survivors.iter().any(|n| n.is_leader_for(p)), 20_000),
            "survivors elect a replacement"
        );
        let new_leader = survivors.iter().find(|n| n.is_leader_for(p)).unwrap();
        assert!(
            new_leader.raft_term(p).unwrap() > old_term,
            "replacement leads a later term"
        );

        // The replacement could only campaign after >= election_timeout_min
        // silent ticks — longer than the lease — so the deposed leader's
        // lease must already be gone even though it heard nothing.
        assert!(
            !old_leader.holds_lease_for(p),
            "lease expired before a rival could be elected"
        );

        // State the deposed leader has never seen.
        let fresh = new_leader
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::File,
                    link_target: vec![],
                    now_ns: 7,
                },
            )
            .unwrap()
            .into_inode()
            .unwrap();

        // A stale answer here would be `NotFound` (non-retryable: the
        // client would trust it). The deposed leader must instead fail
        // retryably — quorum barrier timeout or NotLeader — and must not
        // count the read as served.
        let before = registry.snapshot();
        let err = old_leader
            .read(p, &MetaRead::GetInode { inode: fresh.id })
            .unwrap_err();
        assert!(
            err.is_retryable(),
            "stale read must be retryable, got {err:?}"
        );
        let diff = registry.snapshot().diff(&before);
        assert_eq!(diff.counter("meta.lease_reads"), 0, "no lease-read served");
        assert_eq!(
            diff.counter("meta.quorum_reads"),
            0,
            "no quorum read served"
        );

        // Heal and let the deposed leader catch up. Even with the fresh
        // inode now in its tree, reads stay fenced by role: it redirects
        // to the replacement rather than answering as a has-been.
        faults.set_down(old_leader.id(), false);
        assert!(
            hub.pump_until(|| old_leader.total_items() > 0, 20_000),
            "deposed leader converges after heal"
        );
        match old_leader.read(p, &MetaRead::GetInode { inode: fresh.id }) {
            Err(CfsError::NotLeader { .. }) => {}
            other => panic!("expected NotLeader redirect, got {other:?}"),
        }
        // The replacement serves it.
        let got = new_leader
            .read(p, &MetaRead::GetInode { inode: fresh.id })
            .unwrap();
        assert_eq!(got.into_inode().unwrap().id, fresh.id);
    }

    /// Dual-serve fence: after an Algorithm 1 cut, traffic routed to this
    /// partition for inodes above the cut is rejected with `RangeMoved`
    /// (the client refreshes its view and re-routes by inode), never
    /// served and never counted as a lease or quorum read.
    #[test]
    fn dual_serve_fence_rejects_out_of_range_with_range_moved() {
        let (hub, registry, nodes) = registry_cluster(3);
        let p = mk_partition(&hub, &nodes, 1);
        let leader = leader_of(&nodes, p);
        for i in 0..3 {
            leader
                .write(
                    p,
                    &MetaCommand::CreateInode {
                        file_type: FileType::File,
                        link_target: vec![],
                        now_ns: i,
                    },
                )
                .unwrap();
        }
        // Algorithm 1: freeze the range at maxInodeID + Δ.
        leader
            .write(
                p,
                &MetaCommand::UpdateEnd {
                    end: InodeId(3 + 16),
                },
            )
            .unwrap();
        for _ in 0..200 {
            hub.tick_and_pump();
        }

        let before = registry.snapshot();
        let err = leader
            .read(
                p,
                &MetaRead::GetInode {
                    inode: InodeId(100),
                },
            )
            .unwrap_err();
        assert!(
            matches!(err, CfsError::RangeMoved { partition, inode }
                if partition == p && inode == InodeId(100)),
            "fence must report the moved range: {err:?}"
        );
        let err = leader
            .read(
                p,
                &MetaRead::Lookup {
                    parent: InodeId(100),
                    name: "x".into(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, CfsError::RangeMoved { .. }), "{err:?}");
        let err = leader
            .write(
                p,
                &MetaCommand::CreateDentry {
                    parent: InodeId(100),
                    name: "x".into(),
                    inode: InodeId(1),
                    file_type: FileType::File,
                },
            )
            .unwrap_err();
        assert!(matches!(err, CfsError::RangeMoved { .. }), "{err:?}");

        let diff = registry.snapshot().diff(&before);
        assert_eq!(diff.counter("meta.split.fences"), 3);
        assert_eq!(
            diff.counter("meta.lease_reads") + diff.counter("meta.quorum_reads"),
            0,
            "fenced requests are never classified as served reads"
        );

        // In-range traffic still flows on the frozen half (dual-serve),
        // and the cut itself applied on every replica.
        leader
            .read(p, &MetaRead::GetInode { inode: InodeId(1) })
            .unwrap();
        assert_eq!(registry.snapshot().counter("meta.split.cuts"), 3);
    }

    fn engine_partition(hub: &RaftHub, node: &Arc<MetaNode>, pid: u64) -> PartitionId {
        let config = MetaPartitionConfig {
            partition_id: PartitionId(pid),
            volume_id: VolumeId(1),
            start: InodeId(1),
            end: InodeId::MAX,
        };
        node.create_partition(config, vec![node.id()]).unwrap();
        let p = PartitionId(pid);
        assert!(hub.pump_until(|| node.is_leader_for(p), 5_000));
        p
    }

    #[test]
    fn engine_backed_node_restores_partitions_from_disk_alone() {
        let dir = cfs_types::testutil::TempDir::new("meta-engine").unwrap();
        {
            let hub = RaftHub::new();
            let node = MetaNode::open(NodeId(7), hub.clone(), dir.path(), RaftConfig::default(), 3)
                .unwrap();
            let p = engine_partition(&hub, &node, 1);
            for i in 0..5 {
                node.write(
                    p,
                    &MetaCommand::CreateInode {
                        file_type: FileType::File,
                        link_target: vec![],
                        now_ns: i,
                    },
                )
                .unwrap();
            }
            assert_eq!(node.total_items(), 5);
        }
        // Reopen from the directory: no in-memory carryover at all. The
        // partition re-hosts, the group re-elects (single member), and the
        // tree rebuilds from snapshot + durable log replay.
        let hub = RaftHub::new();
        let node =
            MetaNode::open(NodeId(7), hub.clone(), dir.path(), RaftConfig::default(), 3).unwrap();
        let p = PartitionId(1);
        assert_eq!(node.partition_ids(), vec![p]);
        assert!(hub.pump_until(|| node.is_leader_for(p) && node.total_items() == 5, 10_000));
        // Allocation continues where the pre-crash history ended.
        let f = node
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::File,
                    link_target: vec![],
                    now_ns: 9,
                },
            )
            .unwrap()
            .into_inode()
            .unwrap();
        assert_eq!(f.id, InodeId(6), "no inode id reuse after power loss");
    }

    #[test]
    fn cold_partition_pages_out_and_back_in_on_access() {
        let dir = cfs_types::testutil::TempDir::new("meta-cold").unwrap();
        let hub = RaftHub::new();
        let registry = Registry::new();
        let node = MetaNode::open_with_registry(
            NodeId(7),
            hub.clone(),
            dir.path(),
            RaftConfig::default(),
            3,
            Some(&registry),
        )
        .unwrap();
        let p = engine_partition(&hub, &node, 1);
        let ino = node
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::File,
                    link_target: vec![],
                    now_ns: 1,
                },
            )
            .unwrap()
            .into_inode()
            .unwrap();

        node.page_out(p).unwrap();
        assert!(node.is_paged_out(p));
        assert_eq!(node.total_items(), 0, "tree dropped from memory");

        // Access pages the tree back in transparently.
        let got = node.read(p, &MetaRead::GetInode { inode: ino.id }).unwrap();
        assert_eq!(got.into_inode().unwrap().id, ino.id);
        assert!(!node.is_paged_out(p));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("meta.pages_out"), 1);
        assert_eq!(snap.counter("meta.pages_in"), 1);

        // And writes keep working on the resident tree.
        node.write(
            p,
            &MetaCommand::CreateInode {
                file_type: FileType::File,
                link_target: vec![],
                now_ns: 2,
            },
        )
        .unwrap();
        assert_eq!(node.total_items(), 2);
    }

    // ------------------------------------------------------------------
    // Asynchronous metadata commit (DESIGN §12)
    // ------------------------------------------------------------------

    fn async_create(
        node: &Arc<MetaNode>,
        p: PartitionId,
        parent: InodeId,
        name: &str,
        now_ns: u64,
    ) -> (u64, u64, InodeId) {
        let MetaResponse::Acked { intent, value } = node
            .write_async(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::File,
                    link_target: vec![],
                    now_ns,
                },
                IntentContext::PlannedDentry {
                    parent,
                    name: name.to_string(),
                },
            )
            .unwrap()
        else {
            panic!("expected inode ack");
        };
        let ino = value.into_inode().unwrap();
        let MetaResponse::Acked {
            intent: intent2, ..
        } = node
            .write_async(
                p,
                &MetaCommand::CreateDentry {
                    parent,
                    name: name.to_string(),
                    inode: ino.id,
                    file_type: FileType::File,
                },
                IntentContext::FreshInode {
                    ctime_ns: ino.ctime_ns,
                },
            )
            .unwrap()
        else {
            panic!("expected dentry ack");
        };
        (intent, intent2, ino.id)
    }

    #[test]
    fn async_write_acks_with_zero_consensus_rounds_then_group_commits() {
        let (hub, registry, nodes) = registry_cluster(3);
        let p = mk_partition(&hub, &nodes, 1);
        let leader = leader_of(&nodes, p);
        let root = leader
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::Dir,
                    link_target: vec![],
                    now_ns: 1,
                },
            )
            .unwrap()
            .into_inode()
            .unwrap();
        // Quiesce so the clean-window check passes.
        for _ in 0..200 {
            hub.tick_and_pump();
        }

        let before = registry.snapshot();
        let (i1, i2, ino) = async_create(&leader, p, root.id, "fast", 7);
        assert_ne!(i1, i2);
        let at_ack = registry.snapshot().diff(&before);
        assert_eq!(
            at_ack.counter("raft.proposals"),
            0,
            "acks ride zero consensus rounds"
        );
        assert_eq!(at_ack.counter("meta.async.acks"), 2);

        // Read-your-writes through the overlay, before any commit.
        let d = leader
            .read(
                p,
                &MetaRead::Lookup {
                    parent: root.id,
                    name: "fast".into(),
                },
            )
            .unwrap()
            .into_dentry()
            .unwrap();
        assert_eq!(d.inode, ino);

        // The barrier drains the journal through group commit.
        let MetaResponse::Drained { compensated } = leader.barrier(p, &[i1, i2]).unwrap() else {
            panic!("expected drained");
        };
        assert!(compensated.is_empty());
        assert_eq!(leader.pending_intent_count(), 0);
        for _ in 0..200 {
            hub.tick_and_pump();
        }
        let after = registry.snapshot().diff(&before);
        assert_eq!(after.counter("meta.async.completions"), 2);
        assert_eq!(after.counter("meta.async.compensations"), 0);
        assert!(after.counter("raft.proposals") >= 1, "commit happened");
        // Overlay torn down at quiesce; the replicated tree serves the
        // same answer (the teardown debug_assert checked convergence).
        assert!(leader.inner.lock().overlays.is_empty());
        let got = leader
            .read(p, &MetaRead::GetInode { inode: ino })
            .unwrap()
            .into_inode()
            .unwrap();
        assert_eq!(got.id, ino);
    }

    #[test]
    fn async_write_falls_back_to_sync_outside_a_clean_window() {
        let (hub, registry, nodes) = registry_cluster(3);
        let p = mk_partition(&hub, &nodes, 1);
        let leader = leader_of(&nodes, p);
        // A queued (un-flushed) sync write makes the window dirty.
        leader
            .enqueue_write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::Dir,
                    link_target: vec![],
                    now_ns: 1,
                },
            )
            .unwrap();
        let resp = leader
            .write_async(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::File,
                    link_target: vec![],
                    now_ns: 2,
                },
                IntentContext::None,
            )
            .unwrap();
        assert_eq!(resp, MetaResponse::SyncFallback);
        assert_eq!(registry.snapshot().counter("meta.async.sync_fallbacks"), 1);
        // Once quiesced, the async path opens up.
        for _ in 0..200 {
            hub.tick_and_pump();
        }
        assert!(matches!(
            leader
                .write_async(
                    p,
                    &MetaCommand::CreateInode {
                        file_type: FileType::File,
                        link_target: vec![],
                        now_ns: 3,
                    },
                    IntentContext::None,
                )
                .unwrap(),
            MetaResponse::Acked { .. }
        ));
    }

    #[test]
    fn async_domain_errors_return_synchronously_without_journaling() {
        let (hub, nodes) = cluster(3);
        let p = mk_partition(&hub, &nodes, 1);
        let leader = leader_of(&nodes, p);
        let root = leader
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::Dir,
                    link_target: vec![],
                    now_ns: 1,
                },
            )
            .unwrap()
            .into_inode()
            .unwrap();
        for _ in 0..200 {
            hub.tick_and_pump();
        }
        let (_, _, ino) = async_create(&leader, p, root.id, "dup", 2);
        // Second create of the same name: the overlay already has the
        // dentry, so the client gets `Exists` at ack time — same
        // semantics as the sync path, nothing journaled for it.
        let pending = leader.pending_intent_count();
        let err = leader
            .write_async(
                p,
                &MetaCommand::CreateDentry {
                    parent: root.id,
                    name: "dup".into(),
                    inode: ino,
                    file_type: FileType::File,
                },
                IntentContext::None,
            )
            .unwrap_err();
        assert!(matches!(err, CfsError::Exists(_)));
        assert_eq!(leader.pending_intent_count(), pending);
    }

    #[test]
    fn power_loss_before_group_commit_compensates_on_recovery() {
        let dir = cfs_types::testutil::TempDir::new("meta-async-crash").unwrap();
        let registry = Registry::new();
        let root;
        {
            let hub = RaftHub::new();
            let node = MetaNode::open_with_registry(
                NodeId(7),
                hub.clone(),
                dir.path(),
                RaftConfig::default(),
                3,
                Some(&registry),
            )
            .unwrap();
            let p = engine_partition(&hub, &node, 1);
            root = node
                .write(
                    p,
                    &MetaCommand::CreateInode {
                        file_type: FileType::Dir,
                        link_target: vec![],
                        now_ns: 1,
                    },
                )
                .unwrap()
                .into_inode()
                .unwrap();
            for _ in 0..200 {
                hub.tick_and_pump();
            }
            // Ack a create and CRASH before any hub round can propose it:
            // the intent is journaled (proposed = None), the tree is not.
            let (_, _, _ino) = async_create(&node, p, root.id, "doomed", 5);
            assert_eq!(node.pending_intent_count(), 2);
        }

        // Recovery: the journal scan finds both intents; never-proposed ⇒
        // definitively absent from the log ⇒ compensated, not replayed.
        let hub = RaftHub::new();
        let node = MetaNode::open_with_registry(
            NodeId(7),
            hub.clone(),
            dir.path(),
            RaftConfig::default(),
            3,
            Some(&registry),
        )
        .unwrap();
        let p = PartitionId(1);
        assert_eq!(node.pending_intent_count(), 2);
        assert!(hub.pump_until(
            || node.is_leader_for(p) && node.pending_intent_count() == 0,
            10_000
        ));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("meta.async.compensations"), 2);
        assert_eq!(snap.counter("meta.async.replays"), 0);
        // Fixups for the dead create (dentry removal + orphan eviction)
        // await the orphan sweep.
        assert!(node.pending_compensation_count() >= 1);
        let comps = node.compensations();
        assert!(!comps.is_empty());
        assert!(comps.iter().any(|c| !c.fixups.is_empty()));
        // Invariant (i): the acked-then-crashed create is fully invisible.
        assert!(matches!(
            node.read(
                p,
                &MetaRead::Lookup {
                    parent: root.id,
                    name: "doomed".into()
                }
            ),
            Err(CfsError::NotFound(_))
        ));
        // Sweep ack clears the records durably.
        let ids: Vec<u64> = comps.iter().map(|c| c.id).collect();
        node.ack_compensations(p, &ids);
        assert_eq!(node.pending_compensation_count(), 0);
    }

    #[test]
    fn power_loss_after_group_commit_replays_journaled_intents() {
        let dir = cfs_types::testutil::TempDir::new("meta-async-replay").unwrap();
        let registry = Registry::new();
        let root;
        let ino;
        {
            let hub = RaftHub::new();
            let node = MetaNode::open_with_registry(
                NodeId(7),
                hub.clone(),
                dir.path(),
                RaftConfig::default(),
                3,
                Some(&registry),
            )
            .unwrap();
            let p = engine_partition(&hub, &node, 1);
            root = node
                .write(
                    p,
                    &MetaCommand::CreateInode {
                        file_type: FileType::Dir,
                        link_target: vec![],
                        now_ns: 1,
                    },
                )
                .unwrap()
                .into_inode()
                .unwrap();
            for _ in 0..200 {
                hub.tick_and_pump();
            }
            let (_, _, id) = async_create(&node, p, root.id, "kept", 5);
            ino = id;
            // Let the frame commit durably — but crash before the *next*
            // drain's apply loop can retire the journal rows? Retirement
            // happens in the same drain that applies; instead, crash the
            // engine-backed node right after commit: the WAL has both the
            // raft entries AND (worst case) still the intent rows if the
            // crash lands between the log append and the apply. Simulate
            // the harsher half by re-journaling the rows after commit.
            assert!(hub.pump_until(|| node.pending_intent_count() == 0, 5_000));
            let inner = &mut *node.inner.lock();
            // Reconstruct the committed create's journal rows as if the
            // crash had hit between the durable log append and the apply:
            // proposed = Some((term, index)) pointing at the committed
            // frame.
            let g = inner
                .multiraft
                .group(RaftGroupId(p.raw()))
                .expect("group exists");
            let (term, last) = (g.term(), g.last_index());
            let rec = IntentRecord {
                id: (7u64 << 48) | 901,
                cmd: MetaCommand::CreateInodeAt {
                    id: ino,
                    file_type: FileType::File,
                    link_target: vec![],
                    now_ns: 5,
                },
                ctx: IntentContext::PlannedDentry {
                    parent: root.id,
                    name: "kept".into(),
                },
                proposed: Some((term, last)),
            };
            inner.journal_intent(p, rec);
        }

        let hub = RaftHub::new();
        let node = MetaNode::open_with_registry(
            NodeId(7),
            hub.clone(),
            dir.path(),
            RaftConfig::default(),
            3,
            Some(&registry),
        )
        .unwrap();
        let p = PartitionId(1);
        assert_eq!(node.pending_intent_count(), 1);
        assert!(hub.pump_until(
            || node.is_leader_for(p) && node.pending_intent_count() == 0,
            10_000
        ));
        // The effect is in the replayed log, so the intent retires as a
        // replay — never compensated, file intact (invariant (i), applied
        // side).
        assert_eq!(registry.snapshot().counter("meta.async.replays"), 1);
        let d = node
            .read(
                p,
                &MetaRead::Lookup {
                    parent: root.id,
                    name: "kept".into(),
                },
            )
            .unwrap()
            .into_dentry()
            .unwrap();
        assert_eq!(d.inode, ino);
    }

    #[test]
    fn crash_image_restore_carries_the_intent_journal() {
        let (hub, nodes) = cluster(1);
        let p = mk_partition(&hub, &nodes, 1);
        let node = &nodes[0];
        let root = node
            .write(
                p,
                &MetaCommand::CreateInode {
                    file_type: FileType::Dir,
                    link_target: vec![],
                    now_ns: 1,
                },
            )
            .unwrap()
            .into_inode()
            .unwrap();
        for _ in 0..200 {
            hub.tick_and_pump();
        }
        let (_, _, _) = async_create(node, p, root.id, "ghost", 5);
        let image = node.export_crash_image();
        assert_eq!(image.intents.len(), 1);
        assert_eq!(image.intents[0].1.len(), 2);

        let hub2 = RaftHub::new();
        let revived =
            MetaNode::restore(NodeId(1), hub2.clone(), RaftConfig::default(), 99, image).unwrap();
        assert_eq!(revived.pending_intent_count(), 2);
        assert!(hub2.pump_until(
            || revived.is_leader_for(p) && revived.pending_intent_count() == 0,
            10_000
        ));
        // Never proposed ⇒ compensated; the acked create is fully rolled
        // back, never half-visible.
        assert!(revived.pending_compensation_count() >= 1);
        assert!(matches!(
            revived.read(
                p,
                &MetaRead::Lookup {
                    parent: root.id,
                    name: "ghost".into()
                }
            ),
            Err(CfsError::NotFound(_))
        ));
    }
}
