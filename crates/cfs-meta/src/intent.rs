//! The asynchronous-commit intent journal and compensation records
//! (DESIGN §12).
//!
//! A mutating metadata op acked before consensus leaves a durable
//! [`IntentRecord`] in a dedicated `cfs-kvwal` column family. The record
//! carries the *pinned* replicated command plus an [`IntentContext`]
//! naming the other half of the client workflow, so that a dead intent —
//! one whose raft entry was lost to an election or a power cut — can be
//! compensated on both sides of the partition boundary: the half-created
//! file's dentry is removed, the orphan inode evicted, the half-linked
//! dentry's nlink increment rolled back. The namespace fixups are
//! conditional commands ([`MetaCommand::RemoveDentryIf`],
//! [`MetaCommand::EvictIf`]), so replaying them is idempotent and can
//! never undo an unrelated op; the one non-conditional fixup — the link
//! workflow's nlink rollback — is executed exactly once per record by
//! the orphan sweep, which acks the record away durably after running it.

use cfs_types::codec::{Decode, Decoder, Encode, Encoder};
use cfs_types::{CfsError, InodeId, PartitionId, Result, VolumeId};

use crate::command::MetaCommand;
use crate::partition::MetaPartition;

/// Why an async intent was journaled: the cross-partition twin of the
/// acked command, from which compensation fixups are derived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntentContext {
    /// No cross-partition twin.
    None,
    /// `CreateInodeAt` step of a create workflow: the dentry the client
    /// plants next. Dead ⇒ remove that dentry if it ever committed.
    PlannedDentry { parent: InodeId, name: String },
    /// `CreateDentry` step of a create workflow: the freshly created
    /// inode's creation stamp. Dead ⇒ evict the now-unreachable inode —
    /// the paper's orphan-inode list (§2.6.1), promoted to a journal.
    FreshInode { ctime_ns: u64 },
    /// `DeleteDentry` step of an unlink workflow: the target inode. Dead ⇒
    /// *forward-complete* the deletion, so an acked unlink always ends
    /// with the name absent.
    UnlinkedInode { inode: InodeId },
    /// `CreateDentry` step of a link workflow. Dead ⇒ roll back the
    /// synchronous nlink increment (§2.6.2 failure handling).
    LinkedInode { inode: InodeId },
}

impl Encode for IntentContext {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            IntentContext::None => enc.put_u8(0),
            IntentContext::PlannedDentry { parent, name } => {
                enc.put_u8(1);
                parent.encode(enc);
                name.encode(enc);
            }
            IntentContext::FreshInode { ctime_ns } => {
                enc.put_u8(2);
                enc.put_u64(*ctime_ns);
            }
            IntentContext::UnlinkedInode { inode } => {
                enc.put_u8(3);
                inode.encode(enc);
            }
            IntentContext::LinkedInode { inode } => {
                enc.put_u8(4);
                inode.encode(enc);
            }
        }
    }
}

impl Decode for IntentContext {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.get_u8()? {
            0 => IntentContext::None,
            1 => IntentContext::PlannedDentry {
                parent: InodeId::decode(dec)?,
                name: String::decode(dec)?,
            },
            2 => IntentContext::FreshInode {
                ctime_ns: dec.get_u64()?,
            },
            3 => IntentContext::UnlinkedInode {
                inode: InodeId::decode(dec)?,
            },
            4 => IntentContext::LinkedInode {
                inode: InodeId::decode(dec)?,
            },
            b => return Err(CfsError::Corrupt(format!("invalid intent context tag {b}"))),
        })
    }
}

/// One journaled intent: an acked-but-not-yet-committed metadata op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntentRecord {
    /// Node-unique intent id (high bits: acking node, low bits: sequence).
    pub id: u64,
    /// The pinned command that was (or will be) group-committed.
    pub cmd: MetaCommand,
    pub ctx: IntentContext,
    /// `(term, log index)` the intent's frame was proposed at. Stamped
    /// durably *before* the propose, so recovery can always classify a
    /// surviving record: `None` ⇒ the entry is definitively not in the
    /// log (dead); `Some((t, i))` ⇒ decided by inspecting the tree once
    /// the applied index passes `i`.
    pub proposed: Option<(u64, u64)>,
}

impl Encode for IntentRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.id);
        self.cmd.encode(enc);
        self.ctx.encode(enc);
        match self.proposed {
            None => enc.put_u8(0),
            Some((t, i)) => {
                enc.put_u8(1);
                enc.put_u64(t);
                enc.put_u64(i);
            }
        }
    }
}

impl Decode for IntentRecord {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let id = dec.get_u64()?;
        let cmd = MetaCommand::decode(dec)?;
        let ctx = IntentContext::decode(dec)?;
        let proposed = match dec.get_u8()? {
            0 => None,
            1 => Some((dec.get_u64()?, dec.get_u64()?)),
            b => return Err(CfsError::Corrupt(format!("invalid proposed tag {b}"))),
        };
        Ok(IntentRecord {
            id,
            cmd,
            ctx,
            proposed,
        })
    }
}

/// A dead intent's repair plan: conditional fixup commands, each routed by
/// an inode id (the partition owning that id executes it). Reported to the
/// resource manager through heartbeat reconciliation and executed by the
/// orphan sweep; deleted at the origin node once acked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompensationRecord {
    /// The dead intent's id (compensations inherit their intent's id).
    pub id: u64,
    /// Partition the intent was journaled on.
    pub partition: PartitionId,
    /// Volume the fixups route within (inode ranges are per-volume).
    pub volume: VolumeId,
    /// `(routing inode, fixup command)` pairs.
    pub fixups: Vec<(InodeId, MetaCommand)>,
}

impl Encode for CompensationRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.id);
        self.partition.encode(enc);
        self.volume.encode(enc);
        enc.put_u32(self.fixups.len() as u32);
        for (routing, cmd) in &self.fixups {
            routing.encode(enc);
            cmd.encode(enc);
        }
    }
}

impl Decode for CompensationRecord {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let id = dec.get_u64()?;
        let partition = PartitionId::decode(dec)?;
        let volume = VolumeId::decode(dec)?;
        let n = dec.get_u32()? as usize;
        let mut fixups = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            fixups.push((InodeId::decode(dec)?, MetaCommand::decode(dec)?));
        }
        Ok(CompensationRecord {
            id,
            partition,
            volume,
            fixups,
        })
    }
}

/// Derive the fixups repairing *both halves* of a dead intent's workflow.
/// Every fixup is conditional, so executing it when the other half never
/// committed (or was since re-created by an unrelated op) is a no-op.
pub(crate) fn compensation_fixups(
    cmd: &MetaCommand,
    ctx: &IntentContext,
) -> Vec<(InodeId, MetaCommand)> {
    match (cmd, ctx) {
        // Dead inode half of a create: the planned dentry may have
        // committed on its own partition — remove it if it still points at
        // the pinned id. The inode itself never committed, and EvictIf's
        // stamp guard makes the second fixup a no-op if the id was since
        // legitimately reallocated.
        (
            MetaCommand::CreateInodeAt { id, now_ns, .. },
            IntentContext::PlannedDentry { parent, name },
        ) => vec![
            (
                *parent,
                MetaCommand::RemoveDentryIf {
                    parent: *parent,
                    name: name.clone(),
                    inode: *id,
                },
            ),
            (
                *id,
                MetaCommand::EvictIf {
                    inode: *id,
                    ctime_ns: *now_ns,
                },
            ),
        ],
        // Dead dentry half of a create: the inode half may have committed
        // — evict the unreachable orphan (and clear the dentry if the
        // ambiguity resolution was wrong about it, harmlessly).
        (
            MetaCommand::CreateDentry {
                parent,
                name,
                inode,
                ..
            },
            IntentContext::FreshInode { ctime_ns },
        ) => vec![
            (
                *parent,
                MetaCommand::RemoveDentryIf {
                    parent: *parent,
                    name: name.clone(),
                    inode: *inode,
                },
            ),
            (
                *inode,
                MetaCommand::EvictIf {
                    inode: *inode,
                    ctime_ns: *ctime_ns,
                },
            ),
        ],
        // Dead unlink step 1: forward-complete the deletion — an acked
        // unlink always ends with the name absent.
        (MetaCommand::DeleteDentry { parent, name }, IntentContext::UnlinkedInode { inode }) => {
            vec![(
                *parent,
                MetaCommand::RemoveDentryIf {
                    parent: *parent,
                    name: name.clone(),
                    inode: *inode,
                },
            )]
        }
        // Dead dentry half of a link: roll back the synchronous nlink
        // increment (§2.6.2).
        (MetaCommand::CreateDentry { parent, name, .. }, IntentContext::LinkedInode { inode }) => {
            vec![
                (
                    *parent,
                    MetaCommand::RemoveDentryIf {
                        parent: *parent,
                        name: name.clone(),
                        inode: *inode,
                    },
                ),
                (
                    *inode,
                    MetaCommand::Unlink {
                        inode: *inode,
                        now_ns: 0,
                    },
                ),
            ]
        }
        _ => Vec::new(),
    }
}

/// Did this intent's effect reach `p`'s tree? Used to disambiguate a
/// proposed intent that is still journaled after `applied` passed its
/// index: normally that means its entry was overwritten by another
/// leader's (dead), but an installed snapshot can *contain* the effect
/// while skipping the per-entry retirement — inspection tells the two
/// apart. Identity checks (pinned id, creation stamp, dentry target) keep
/// a later unrelated op from masquerading as our effect.
pub(crate) fn intent_effect_present(
    cmd: &MetaCommand,
    ctx: &IntentContext,
    p: &MetaPartition,
) -> bool {
    match cmd {
        MetaCommand::CreateInodeAt { id, now_ns, .. } => p
            .get_inode(*id)
            .map(|i| i.ctime_ns == *now_ns)
            .unwrap_or(false),
        MetaCommand::CreateDentry {
            parent,
            name,
            inode,
            ..
        } => p
            .get_dentry(*parent, name)
            .map(|d| d.inode == *inode)
            .unwrap_or(false),
        // Deletion's effect is absence; a dentry re-pointed at a different
        // inode also means our delete went through (ids are never reused
        // within a partition).
        MetaCommand::DeleteDentry { parent, name } => match ctx {
            IntentContext::UnlinkedInode { inode } => p
                .get_dentry(*parent, name)
                .map(|d| d.inode != *inode)
                .unwrap_or(true),
            _ => p.get_dentry(*parent, name).is_err(),
        },
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::MetaPartitionConfig;
    use cfs_types::codec::roundtrip;
    use cfs_types::FileType;

    #[test]
    fn intent_and_compensation_records_roundtrip() {
        let rec = IntentRecord {
            id: (42u64 << 48) | 7,
            cmd: MetaCommand::CreateInodeAt {
                id: InodeId(9),
                file_type: FileType::File,
                link_target: vec![],
                now_ns: 11,
            },
            ctx: IntentContext::PlannedDentry {
                parent: InodeId(1),
                name: "x".into(),
            },
            proposed: None,
        };
        assert_eq!(roundtrip(&rec).unwrap(), rec);
        let stamped = IntentRecord {
            proposed: Some((3, 17)),
            ctx: IntentContext::FreshInode { ctime_ns: 5 },
            ..rec.clone()
        };
        assert_eq!(roundtrip(&stamped).unwrap(), stamped);

        let comp = CompensationRecord {
            id: rec.id,
            partition: PartitionId(4),
            volume: VolumeId(2),
            fixups: compensation_fixups(&rec.cmd, &rec.ctx),
        };
        assert_eq!(comp.fixups.len(), 2);
        assert_eq!(roundtrip(&comp).unwrap(), comp);
    }

    #[test]
    fn fixups_cover_both_halves_of_each_workflow() {
        // Dead inode half of a create: dentry removal + orphan eviction.
        let f = compensation_fixups(
            &MetaCommand::CreateInodeAt {
                id: InodeId(9),
                file_type: FileType::File,
                link_target: vec![],
                now_ns: 11,
            },
            &IntentContext::PlannedDentry {
                parent: InodeId(1),
                name: "x".into(),
            },
        );
        assert!(matches!(
            f[0],
            (
                InodeId(1),
                MetaCommand::RemoveDentryIf {
                    inode: InodeId(9),
                    ..
                }
            )
        ));
        assert!(matches!(
            f[1],
            (InodeId(9), MetaCommand::EvictIf { ctime_ns: 11, .. })
        ));

        // Dead unlink step 1 forward-completes the deletion.
        let f = compensation_fixups(
            &MetaCommand::DeleteDentry {
                parent: InodeId(1),
                name: "x".into(),
            },
            &IntentContext::UnlinkedInode { inode: InodeId(9) },
        );
        assert_eq!(f.len(), 1);
        assert!(matches!(f[0].1, MetaCommand::RemoveDentryIf { .. }));

        // Dead link dentry rolls the nlink increment back.
        let f = compensation_fixups(
            &MetaCommand::CreateDentry {
                parent: InodeId(1),
                name: "hard".into(),
                inode: InodeId(9),
                file_type: FileType::File,
            },
            &IntentContext::LinkedInode { inode: InodeId(9) },
        );
        assert!(matches!(
            f[1].1,
            MetaCommand::Unlink {
                inode: InodeId(9),
                ..
            }
        ));

        // No context, no fixups.
        assert!(compensation_fixups(
            &MetaCommand::DeleteDentry {
                parent: InodeId(1),
                name: "x".into()
            },
            &IntentContext::None,
        )
        .is_empty());
    }

    #[test]
    fn effect_inspection_distinguishes_committed_from_overwritten() {
        let mut p = MetaPartition::new(MetaPartitionConfig {
            partition_id: PartitionId(1),
            volume_id: VolumeId(1),
            start: InodeId(1),
            end: InodeId::MAX,
        });
        p.create_inode(FileType::Dir, b"", 0).unwrap();
        let create = MetaCommand::CreateInodeAt {
            id: InodeId(5),
            file_type: FileType::File,
            link_target: vec![],
            now_ns: 7,
        };
        let ctx = IntentContext::PlannedDentry {
            parent: InodeId(1),
            name: "x".into(),
        };
        assert!(!intent_effect_present(&create, &ctx, &p));
        create.apply(&mut p).unwrap();
        assert!(intent_effect_present(&create, &ctx, &p));

        // A *different* inode at the pinned id (reallocation after the
        // intent died) is not our effect.
        let mut q = p.clone();
        q.evict_inode(InodeId(5)).unwrap();
        q.create_inode_at(InodeId(5), FileType::File, b"", 99)
            .unwrap();
        assert!(!intent_effect_present(&create, &ctx, &q));

        // Deletion: effect is absence (or a re-pointed dentry).
        let del = MetaCommand::DeleteDentry {
            parent: InodeId(1),
            name: "x".into(),
        };
        let del_ctx = IntentContext::UnlinkedInode { inode: InodeId(5) };
        assert!(intent_effect_present(&del, &del_ctx, &p), "never created");
        p.create_dentry(InodeId(1), "x", InodeId(5), FileType::File)
            .unwrap();
        assert!(!intent_effect_present(&del, &del_ctx, &p));
    }
}
