//! The replicated command set and read operations of a meta partition.
//!
//! Writes ([`MetaCommand`]) go through Raft; their binary encoding is the
//! Raft log entry payload. Reads ([`MetaRead`]) are served directly at the
//! Raft leader's in-memory partition, which is exactly the design the paper
//! credits for its metadata performance — no disk I/O on any metadata read
//! (§4.3, first reason).

use cfs_types::codec::{Decode, Decoder, Encode, Encoder};
use cfs_types::{CfsError, Dentry, ExtentKey, FileType, Inode, InodeId, Result};

use crate::partition::MetaPartition;

/// A replicated (write) command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaCommand {
    CreateInode {
        file_type: FileType,
        link_target: Vec<u8>,
        now_ns: u64,
    },
    CreateDentry {
        parent: InodeId,
        name: String,
        inode: InodeId,
        file_type: FileType,
    },
    DeleteDentry {
        parent: InodeId,
        name: String,
    },
    Link {
        inode: InodeId,
    },
    Unlink {
        inode: InodeId,
        now_ns: u64,
    },
    MarkDeleted {
        inode: InodeId,
    },
    Evict {
        inode: InodeId,
    },
    AppendExtents {
        inode: InodeId,
        extents: Vec<ExtentKey>,
        new_size: u64,
        now_ns: u64,
    },
    Truncate {
        inode: InodeId,
        size: u64,
        now_ns: u64,
    },
    /// Algorithm 1: cut this partition's inode range at `end`.
    UpdateEnd {
        end: InodeId,
    },
    /// Asynchronous-commit path (DESIGN §12): insert a fresh inode at an
    /// id the leader's overlay allocated when the op was acked. Pinning
    /// the id into the replicated command keeps the apply deterministic.
    CreateInodeAt {
        id: InodeId,
        file_type: FileType,
        link_target: Vec<u8>,
        now_ns: u64,
    },
    /// A command riding the async intent journal: `intent` names the
    /// journal entry every replica retires when this entry applies.
    Tagged {
        intent: u64,
        inner: Box<MetaCommand>,
    },
    /// Compensation fixup: remove `(parent, name)` only while it still
    /// points at `inode` (idempotent, can never undo an unrelated op).
    RemoveDentryIf {
        parent: InodeId,
        name: String,
        inode: InodeId,
    },
    /// Compensation fixup: evict `inode` only if its creation stamp
    /// matches the dead intent's and it is still unreferenced.
    EvictIf {
        inode: InodeId,
        ctime_ns: u64,
    },
}

impl MetaCommand {
    /// Stable op label for per-partition apply metrics
    /// (`meta.applies{partition=…,op=…}`).
    pub fn kind(&self) -> &'static str {
        match self {
            MetaCommand::CreateInode { .. } => "create_inode",
            MetaCommand::CreateDentry { .. } => "create_dentry",
            MetaCommand::DeleteDentry { .. } => "delete_dentry",
            MetaCommand::Link { .. } => "link",
            MetaCommand::Unlink { .. } => "unlink",
            MetaCommand::MarkDeleted { .. } => "mark_deleted",
            MetaCommand::Evict { .. } => "evict",
            MetaCommand::AppendExtents { .. } => "append_extents",
            MetaCommand::Truncate { .. } => "truncate",
            MetaCommand::UpdateEnd { .. } => "update_end",
            MetaCommand::CreateInodeAt { .. } => "create_inode_at",
            // A tagged command is labeled by what it does, not how it got
            // here, so apply metrics stay comparable across sync/async.
            MetaCommand::Tagged { inner, .. } => inner.kind(),
            MetaCommand::RemoveDentryIf { .. } => "remove_dentry_if",
            MetaCommand::EvictIf { .. } => "evict_if",
        }
    }
}

impl MetaCommand {
    /// Dual-serve range fence (Algorithm 1 handoff): the first routing
    /// inode of this command outside `[start, end]`, if any. Commands that
    /// allocate (`CreateInode`) or reconfigure (`UpdateEnd`) have no
    /// routing inode — allocation enforces the range itself.
    pub fn out_of_range(&self, start: InodeId, end: InodeId) -> Option<InodeId> {
        let outside = |id: &InodeId| *id < start || *id > end;
        match self {
            // CreateInodeAt enforces the range at apply time like the
            // allocating form; compensation fixups are conditional no-ops
            // outside their range and must survive a racing cut.
            MetaCommand::CreateInode { .. }
            | MetaCommand::UpdateEnd { .. }
            | MetaCommand::CreateInodeAt { .. }
            | MetaCommand::RemoveDentryIf { .. }
            | MetaCommand::EvictIf { .. } => None,
            MetaCommand::CreateDentry { parent, .. } | MetaCommand::DeleteDentry { parent, .. } => {
                Some(*parent).filter(outside)
            }
            MetaCommand::Link { inode }
            | MetaCommand::Unlink { inode, .. }
            | MetaCommand::MarkDeleted { inode }
            | MetaCommand::Evict { inode }
            | MetaCommand::AppendExtents { inode, .. }
            | MetaCommand::Truncate { inode, .. } => Some(*inode).filter(outside),
            MetaCommand::Tagged { inner, .. } => inner.out_of_range(start, end),
        }
    }
}

/// A leader-local read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaRead {
    GetInode {
        inode: InodeId,
    },
    BatchGetInodes {
        inodes: Vec<InodeId>,
    },
    Lookup {
        parent: InodeId,
        name: String,
    },
    ReadDir {
        parent: InodeId,
    },
    DirEntryCount {
        parent: InodeId,
    },
    /// fsck enumeration: every inode in the partition.
    ListAllInodes,
    /// fsck enumeration: every dentry in the partition.
    ListAllDentries,
}

impl MetaRead {
    /// Dual-serve range fence (Algorithm 1 handoff): the first routing
    /// inode of this read outside `[start, end]`, if any. Partition-wide
    /// enumerations carry no routing inode.
    pub fn out_of_range(&self, start: InodeId, end: InodeId) -> Option<InodeId> {
        let outside = |id: &InodeId| *id < start || *id > end;
        match self {
            MetaRead::GetInode { inode } => Some(*inode).filter(outside),
            MetaRead::BatchGetInodes { inodes } => inodes.iter().copied().find(|i| outside(i)),
            MetaRead::Lookup { parent, .. }
            | MetaRead::ReadDir { parent }
            | MetaRead::DirEntryCount { parent } => Some(*parent).filter(outside),
            MetaRead::ListAllInodes | MetaRead::ListAllDentries => None,
        }
    }
}

/// Result payload of a command or read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaValue {
    None,
    Inode(Inode),
    Dentry(Dentry),
    Dentries(Vec<Dentry>),
    Inodes(Vec<Inode>),
    Extents(Vec<ExtentKey>),
    Count(u64),
}

impl MetaValue {
    /// Unwrap an inode payload.
    pub fn into_inode(self) -> Result<Inode> {
        match self {
            MetaValue::Inode(i) => Ok(i),
            other => Err(CfsError::Internal(format!("expected inode, got {other:?}"))),
        }
    }

    /// Unwrap a dentry payload.
    pub fn into_dentry(self) -> Result<Dentry> {
        match self {
            MetaValue::Dentry(d) => Ok(d),
            other => Err(CfsError::Internal(format!(
                "expected dentry, got {other:?}"
            ))),
        }
    }

    /// Unwrap a dentry list.
    pub fn into_dentries(self) -> Result<Vec<Dentry>> {
        match self {
            MetaValue::Dentries(d) => Ok(d),
            other => Err(CfsError::Internal(format!(
                "expected dentries, got {other:?}"
            ))),
        }
    }

    /// Unwrap an inode list.
    pub fn into_inodes(self) -> Result<Vec<Inode>> {
        match self {
            MetaValue::Inodes(i) => Ok(i),
            other => Err(CfsError::Internal(format!(
                "expected inodes, got {other:?}"
            ))),
        }
    }

    /// Unwrap an extent list.
    pub fn into_extents(self) -> Result<Vec<ExtentKey>> {
        match self {
            MetaValue::Extents(e) => Ok(e),
            other => Err(CfsError::Internal(format!(
                "expected extents, got {other:?}"
            ))),
        }
    }
}

impl MetaCommand {
    /// Apply this command to a partition. Deterministic: replicas applying
    /// the same command sequence converge, including on errors (an
    /// `Exists`/`NotFound` outcome is part of the replicated result).
    pub fn apply(&self, p: &mut MetaPartition) -> Result<MetaValue> {
        match self {
            MetaCommand::CreateInode {
                file_type,
                link_target,
                now_ns,
            } => Ok(MetaValue::Inode(p.create_inode(
                *file_type,
                link_target,
                *now_ns,
            )?)),
            MetaCommand::CreateDentry {
                parent,
                name,
                inode,
                file_type,
            } => Ok(MetaValue::Dentry(
                p.create_dentry(*parent, name, *inode, *file_type)?,
            )),
            MetaCommand::DeleteDentry { parent, name } => {
                Ok(MetaValue::Dentry(p.delete_dentry(*parent, name)?))
            }
            MetaCommand::Link { inode } => Ok(MetaValue::Inode(p.inode_link(*inode)?)),
            MetaCommand::Unlink { inode, now_ns } => {
                Ok(MetaValue::Inode(p.inode_unlink(*inode, *now_ns)?))
            }
            MetaCommand::MarkDeleted { inode } => Ok(MetaValue::Inode(p.mark_deleted(*inode)?)),
            MetaCommand::Evict { inode } => Ok(MetaValue::Inode(p.evict_inode(*inode)?)),
            MetaCommand::AppendExtents {
                inode,
                extents,
                new_size,
                now_ns,
            } => Ok(MetaValue::Inode(
                p.append_extents(*inode, extents, *new_size, *now_ns)?,
            )),
            MetaCommand::Truncate {
                inode,
                size,
                now_ns,
            } => Ok(MetaValue::Extents(p.truncate(*inode, *size, *now_ns)?)),
            MetaCommand::UpdateEnd { end } => {
                p.update_end(*end)?;
                Ok(MetaValue::None)
            }
            MetaCommand::CreateInodeAt {
                id,
                file_type,
                link_target,
                now_ns,
            } => Ok(MetaValue::Inode(p.create_inode_at(
                *id,
                *file_type,
                link_target,
                *now_ns,
            )?)),
            MetaCommand::Tagged { inner, .. } => inner.apply(p),
            MetaCommand::RemoveDentryIf {
                parent,
                name,
                inode,
            } => Ok(match p.remove_dentry_if(*parent, name, *inode)? {
                Some(d) => MetaValue::Dentry(d),
                None => MetaValue::None,
            }),
            MetaCommand::EvictIf { inode, ctime_ns } => {
                Ok(match p.evict_if(*inode, *ctime_ns)? {
                    Some(i) => MetaValue::Inode(i),
                    None => MetaValue::None,
                })
            }
        }
    }
}

/// Serve a read against a partition.
pub fn apply_read(read: &MetaRead, p: &MetaPartition) -> Result<MetaValue> {
    match read {
        MetaRead::GetInode { inode } => Ok(MetaValue::Inode(p.get_inode(*inode)?)),
        MetaRead::BatchGetInodes { inodes } => Ok(MetaValue::Inodes(p.batch_get_inodes(inodes))),
        MetaRead::Lookup { parent, name } => Ok(MetaValue::Dentry(p.get_dentry(*parent, name)?)),
        MetaRead::ReadDir { parent } => Ok(MetaValue::Dentries(p.readdir(*parent))),
        MetaRead::DirEntryCount { parent } => {
            Ok(MetaValue::Count(p.dir_entry_count(*parent) as u64))
        }
        MetaRead::ListAllInodes => Ok(MetaValue::Inodes(p.all_inodes())),
        MetaRead::ListAllDentries => Ok(MetaValue::Dentries(p.all_dentries())),
    }
}

impl Encode for MetaCommand {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            MetaCommand::CreateInode {
                file_type,
                link_target,
                now_ns,
            } => {
                enc.put_u8(0);
                file_type.encode(enc);
                enc.put_bytes(link_target);
                enc.put_u64(*now_ns);
            }
            MetaCommand::CreateDentry {
                parent,
                name,
                inode,
                file_type,
            } => {
                enc.put_u8(1);
                parent.encode(enc);
                name.encode(enc);
                inode.encode(enc);
                file_type.encode(enc);
            }
            MetaCommand::DeleteDentry { parent, name } => {
                enc.put_u8(2);
                parent.encode(enc);
                name.encode(enc);
            }
            MetaCommand::Link { inode } => {
                enc.put_u8(3);
                inode.encode(enc);
            }
            MetaCommand::Unlink { inode, now_ns } => {
                enc.put_u8(4);
                inode.encode(enc);
                enc.put_u64(*now_ns);
            }
            MetaCommand::MarkDeleted { inode } => {
                enc.put_u8(5);
                inode.encode(enc);
            }
            MetaCommand::Evict { inode } => {
                enc.put_u8(6);
                inode.encode(enc);
            }
            MetaCommand::AppendExtents {
                inode,
                extents,
                new_size,
                now_ns,
            } => {
                enc.put_u8(7);
                inode.encode(enc);
                extents.encode(enc);
                enc.put_u64(*new_size);
                enc.put_u64(*now_ns);
            }
            MetaCommand::Truncate {
                inode,
                size,
                now_ns,
            } => {
                enc.put_u8(8);
                inode.encode(enc);
                enc.put_u64(*size);
                enc.put_u64(*now_ns);
            }
            MetaCommand::UpdateEnd { end } => {
                enc.put_u8(9);
                end.encode(enc);
            }
            MetaCommand::CreateInodeAt {
                id,
                file_type,
                link_target,
                now_ns,
            } => {
                enc.put_u8(10);
                id.encode(enc);
                file_type.encode(enc);
                enc.put_bytes(link_target);
                enc.put_u64(*now_ns);
            }
            MetaCommand::Tagged { intent, inner } => {
                enc.put_u8(11);
                enc.put_u64(*intent);
                inner.encode(enc);
            }
            MetaCommand::RemoveDentryIf {
                parent,
                name,
                inode,
            } => {
                enc.put_u8(12);
                parent.encode(enc);
                name.encode(enc);
                inode.encode(enc);
            }
            MetaCommand::EvictIf { inode, ctime_ns } => {
                enc.put_u8(13);
                inode.encode(enc);
                enc.put_u64(*ctime_ns);
            }
        }
    }
}

impl Decode for MetaCommand {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.get_u8()? {
            0 => MetaCommand::CreateInode {
                file_type: FileType::decode(dec)?,
                link_target: dec.get_bytes()?.to_vec(),
                now_ns: dec.get_u64()?,
            },
            1 => MetaCommand::CreateDentry {
                parent: InodeId::decode(dec)?,
                name: String::decode(dec)?,
                inode: InodeId::decode(dec)?,
                file_type: FileType::decode(dec)?,
            },
            2 => MetaCommand::DeleteDentry {
                parent: InodeId::decode(dec)?,
                name: String::decode(dec)?,
            },
            3 => MetaCommand::Link {
                inode: InodeId::decode(dec)?,
            },
            4 => MetaCommand::Unlink {
                inode: InodeId::decode(dec)?,
                now_ns: dec.get_u64()?,
            },
            5 => MetaCommand::MarkDeleted {
                inode: InodeId::decode(dec)?,
            },
            6 => MetaCommand::Evict {
                inode: InodeId::decode(dec)?,
            },
            7 => MetaCommand::AppendExtents {
                inode: InodeId::decode(dec)?,
                extents: Vec::<ExtentKey>::decode(dec)?,
                new_size: dec.get_u64()?,
                now_ns: dec.get_u64()?,
            },
            8 => MetaCommand::Truncate {
                inode: InodeId::decode(dec)?,
                size: dec.get_u64()?,
                now_ns: dec.get_u64()?,
            },
            9 => MetaCommand::UpdateEnd {
                end: InodeId::decode(dec)?,
            },
            10 => MetaCommand::CreateInodeAt {
                id: InodeId::decode(dec)?,
                file_type: FileType::decode(dec)?,
                link_target: dec.get_bytes()?.to_vec(),
                now_ns: dec.get_u64()?,
            },
            11 => MetaCommand::Tagged {
                intent: dec.get_u64()?,
                inner: Box::new(MetaCommand::decode(dec)?),
            },
            12 => MetaCommand::RemoveDentryIf {
                parent: InodeId::decode(dec)?,
                name: String::decode(dec)?,
                inode: InodeId::decode(dec)?,
            },
            13 => MetaCommand::EvictIf {
                inode: InodeId::decode(dec)?,
                ctime_ns: dec.get_u64()?,
            },
            b => return Err(CfsError::Corrupt(format!("invalid meta command tag {b}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::MetaPartitionConfig;
    use cfs_types::codec::roundtrip;
    use cfs_types::{PartitionId, VolumeId};

    fn part() -> MetaPartition {
        MetaPartition::new(MetaPartitionConfig {
            partition_id: PartitionId(1),
            volume_id: VolumeId(1),
            start: InodeId(1),
            end: InodeId::MAX,
        })
    }

    #[test]
    fn all_commands_roundtrip_codec() {
        let cmds = vec![
            MetaCommand::CreateInode {
                file_type: FileType::Symlink,
                link_target: b"/t".to_vec(),
                now_ns: 5,
            },
            MetaCommand::CreateDentry {
                parent: InodeId(1),
                name: "file".into(),
                inode: InodeId(2),
                file_type: FileType::File,
            },
            MetaCommand::DeleteDentry {
                parent: InodeId(1),
                name: "file".into(),
            },
            MetaCommand::Link { inode: InodeId(2) },
            MetaCommand::Unlink {
                inode: InodeId(2),
                now_ns: 9,
            },
            MetaCommand::MarkDeleted { inode: InodeId(2) },
            MetaCommand::Evict { inode: InodeId(2) },
            MetaCommand::AppendExtents {
                inode: InodeId(2),
                extents: vec![ExtentKey {
                    file_offset: 0,
                    partition_id: PartitionId(3),
                    extent_id: cfs_types::ExtentId(4),
                    extent_offset: 5,
                    size: 6,
                }],
                new_size: 6,
                now_ns: 10,
            },
            MetaCommand::Truncate {
                inode: InodeId(2),
                size: 3,
                now_ns: 11,
            },
            MetaCommand::UpdateEnd { end: InodeId(100) },
            MetaCommand::CreateInodeAt {
                id: InodeId(17),
                file_type: FileType::File,
                link_target: vec![],
                now_ns: 12,
            },
            MetaCommand::Tagged {
                intent: 0xBEEF_0001,
                inner: Box::new(MetaCommand::CreateInodeAt {
                    id: InodeId(18),
                    file_type: FileType::Symlink,
                    link_target: b"/t".to_vec(),
                    now_ns: 13,
                }),
            },
            MetaCommand::RemoveDentryIf {
                parent: InodeId(1),
                name: "file".into(),
                inode: InodeId(2),
            },
            MetaCommand::EvictIf {
                inode: InodeId(2),
                ctime_ns: 14,
            },
        ];
        for c in cmds {
            assert_eq!(roundtrip(&c).unwrap(), c);
        }
    }

    #[test]
    fn tagged_commands_delegate_kind_fence_and_apply() {
        let tagged = MetaCommand::Tagged {
            intent: 7,
            inner: Box::new(MetaCommand::CreateDentry {
                parent: InodeId(50),
                name: "a".into(),
                inode: InodeId(51),
                file_type: FileType::File,
            }),
        };
        assert_eq!(tagged.kind(), "create_dentry");
        assert_eq!(
            tagged.out_of_range(InodeId(1), InodeId(10)),
            Some(InodeId(50)),
            "fence routes by the inner command"
        );
        let mut p = part();
        p.create_inode(FileType::Dir, b"", 0).unwrap();
        let pinned = MetaCommand::Tagged {
            intent: 8,
            inner: Box::new(MetaCommand::CreateInodeAt {
                id: InodeId(5),
                file_type: FileType::File,
                link_target: vec![],
                now_ns: 3,
            }),
        };
        let ino = pinned.apply(&mut p).unwrap().into_inode().unwrap();
        assert_eq!(ino.id, InodeId(5));
    }

    #[test]
    fn invalid_tag_rejected() {
        assert!(MetaCommand::from_bytes(&[200]).is_err());
    }

    #[test]
    fn replayed_command_sequence_is_deterministic() {
        let cmds = [
            MetaCommand::CreateInode {
                file_type: FileType::Dir,
                link_target: vec![],
                now_ns: 1,
            },
            MetaCommand::CreateInode {
                file_type: FileType::File,
                link_target: vec![],
                now_ns: 2,
            },
            MetaCommand::CreateDentry {
                parent: InodeId(1),
                name: "a".into(),
                inode: InodeId(2),
                file_type: FileType::File,
            },
            // A failing command (duplicate dentry) is part of the sequence.
            MetaCommand::CreateDentry {
                parent: InodeId(1),
                name: "a".into(),
                inode: InodeId(2),
                file_type: FileType::File,
            },
            MetaCommand::Unlink {
                inode: InodeId(2),
                now_ns: 3,
            },
        ];
        let mut p1 = part();
        let mut p2 = part();
        let r1: Vec<_> = cmds.iter().map(|c| c.apply(&mut p1)).collect();
        let r2: Vec<_> = cmds.iter().map(|c| c.apply(&mut p2)).collect();
        assert_eq!(r1, r2);
        assert!(r1[3].is_err(), "duplicate dentry fails identically");
        assert_eq!(p1.snapshot_bytes(), p2.snapshot_bytes());
    }

    #[test]
    fn reads_serve_from_partition() {
        let mut p = part();
        MetaCommand::CreateInode {
            file_type: FileType::Dir,
            link_target: vec![],
            now_ns: 1,
        }
        .apply(&mut p)
        .unwrap();
        let f = MetaCommand::CreateInode {
            file_type: FileType::File,
            link_target: vec![],
            now_ns: 1,
        }
        .apply(&mut p)
        .unwrap()
        .into_inode()
        .unwrap();
        MetaCommand::CreateDentry {
            parent: InodeId(1),
            name: "x".into(),
            inode: f.id,
            file_type: FileType::File,
        }
        .apply(&mut p)
        .unwrap();

        let got = apply_read(
            &MetaRead::Lookup {
                parent: InodeId(1),
                name: "x".into(),
            },
            &p,
        )
        .unwrap()
        .into_dentry()
        .unwrap();
        assert_eq!(got.inode, f.id);

        let list = apply_read(&MetaRead::ReadDir { parent: InodeId(1) }, &p)
            .unwrap()
            .into_dentries()
            .unwrap();
        assert_eq!(list.len(), 1);

        let count = apply_read(&MetaRead::DirEntryCount { parent: InodeId(1) }, &p).unwrap();
        assert_eq!(count, MetaValue::Count(1));

        let inos = apply_read(
            &MetaRead::BatchGetInodes {
                inodes: vec![InodeId(1), f.id],
            },
            &p,
        )
        .unwrap()
        .into_inodes()
        .unwrap();
        assert_eq!(inos.len(), 2);
    }

    #[test]
    fn value_unwrap_helpers_reject_wrong_kind() {
        assert!(MetaValue::None.into_inode().is_err());
        assert!(MetaValue::Count(1).into_dentry().is_err());
        assert!(MetaValue::None.into_dentries().is_err());
        assert!(MetaValue::None.into_inodes().is_err());
        assert!(MetaValue::None.into_extents().is_err());
    }
}
