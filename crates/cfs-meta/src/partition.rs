//! One meta partition: the replicated state machine.

use cfs_btree::BTree;
use cfs_types::codec::{Decode, Decoder, Encode, Encoder};
use cfs_types::{
    CfsError, Dentry, ExtentKey, FileType, Inode, InodeId, PartitionId, Result, VolumeId,
};

/// Static configuration of a partition: which volume it belongs to and
/// which inode-id range it owns. `end == InodeId::MAX` means "unbounded"
/// (the newest partition of a volume, per Algorithm 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaPartitionConfig {
    pub partition_id: PartitionId,
    pub volume_id: VolumeId,
    pub start: InodeId,
    pub end: InodeId,
}

impl Encode for MetaPartitionConfig {
    fn encode(&self, enc: &mut Encoder) {
        self.partition_id.encode(enc);
        self.volume_id.encode(enc);
        self.start.encode(enc);
        self.end.encode(enc);
    }
}

impl Decode for MetaPartitionConfig {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(MetaPartitionConfig {
            partition_id: PartitionId::decode(dec)?,
            volume_id: VolumeId::decode(dec)?,
            start: InodeId::decode(dec)?,
            end: InodeId::decode(dec)?,
        })
    }
}

/// The in-memory metadata store of one partition (§2.1.1).
///
/// All mutation methods are deterministic in their arguments (timestamps
/// come from the client inside the command), which is what lets Raft keep
/// replicas byte-identical.
#[derive(Debug, Clone)]
pub struct MetaPartition {
    config: MetaPartitionConfig,
    inode_tree: BTree<InodeId, Inode>,
    dentry_tree: BTree<(InodeId, String), Dentry>,
    /// Inodes evicted but awaiting data-subsystem cleanup (the paper's
    /// `freeList`).
    free_list: Vec<InodeId>,
    /// Largest inode id allocated so far (`maxInodeID` in Algorithm 1).
    max_inode: InodeId,
}

impl MetaPartition {
    /// Empty partition owning `config`'s inode range.
    pub fn new(config: MetaPartitionConfig) -> Self {
        let max_inode = InodeId(config.start.raw().saturating_sub(1));
        MetaPartition {
            config,
            inode_tree: BTree::new(),
            dentry_tree: BTree::new(),
            free_list: Vec::new(),
            max_inode,
        }
    }

    /// Partition configuration.
    pub fn config(&self) -> &MetaPartitionConfig {
        &self.config
    }

    /// Largest inode id allocated so far.
    pub fn max_inode(&self) -> InodeId {
        self.max_inode
    }

    /// Total items (inodes + dentries) — the split/capacity metric
    /// (§2.3.1) and the memory-utilization signal for placement.
    pub fn item_count(&self) -> u64 {
        (self.inode_tree.len() + self.dentry_tree.len()) as u64
    }

    /// Inodes awaiting data cleanup.
    pub fn free_list(&self) -> &[InodeId] {
        &self.free_list
    }

    // ------------------------------------------------------------------
    // Inode operations
    // ------------------------------------------------------------------

    /// Allocate and insert a fresh inode. Picks the smallest unused id in
    /// the partition's range (§2.6.1) and advances `maxInodeID`.
    pub fn create_inode(
        &mut self,
        file_type: FileType,
        link_target: &[u8],
        now_ns: u64,
    ) -> Result<Inode> {
        let next = InodeId(self.max_inode.raw().max(self.config.start.raw() - 1) + 1);
        if next > self.config.end {
            return Err(CfsError::PartitionFull(self.config.partition_id));
        }
        let inode = if file_type == FileType::Symlink {
            Inode::new_symlink(next, link_target, now_ns)
        } else {
            Inode::new(next, file_type, now_ns)
        };
        self.inode_tree.insert(next, inode.clone());
        self.max_inode = next;
        Ok(inode)
    }

    /// Insert a fresh inode at a *pinned* id (asynchronous-commit path,
    /// §2.6 + DESIGN §12). The id was allocated speculatively on the
    /// leader's overlay when the op was acked; replaying the pinned command
    /// is what keeps the replicated apply deterministic no matter what
    /// else committed in between. Advances `maxInodeID` past the pin so
    /// later fresh allocations never collide.
    pub fn create_inode_at(
        &mut self,
        id: InodeId,
        file_type: FileType,
        link_target: &[u8],
        now_ns: u64,
    ) -> Result<Inode> {
        if id > self.config.end {
            return Err(CfsError::PartitionFull(self.config.partition_id));
        }
        if self.inode_tree.contains_key(&id) {
            return Err(CfsError::Exists(format!("{id}")));
        }
        let inode = if file_type == FileType::Symlink {
            Inode::new_symlink(id, link_target, now_ns)
        } else {
            Inode::new(id, file_type, now_ns)
        };
        self.inode_tree.insert(id, inode.clone());
        self.max_inode = self.max_inode.max(id);
        Ok(inode)
    }

    /// Look up an inode.
    pub fn get_inode(&self, id: InodeId) -> Result<Inode> {
        self.inode_tree
            .get(&id)
            .cloned()
            .ok_or_else(|| CfsError::NotFound(format!("{id}")))
    }

    /// Batched inode fetch: the paper's `batchInodeGet`, which replaces
    /// Ceph's per-inode `inodeGet` storm after `readdir` (§4.2). Missing
    /// ids are skipped, matching readdir-then-stat semantics.
    pub fn batch_get_inodes(&self, ids: &[InodeId]) -> Vec<Inode> {
        ids.iter()
            .filter_map(|id| self.inode_tree.get(id).cloned())
            .collect()
    }

    /// Increment nlink (first half of the link workflow, §2.6.2).
    pub fn inode_link(&mut self, id: InodeId) -> Result<Inode> {
        let mut ino = self.get_inode(id)?;
        ino.nlink += 1;
        self.inode_tree.insert(id, ino.clone());
        Ok(ino)
    }

    /// Decrement nlink (unlink workflow §2.6.3, or link-failure rollback
    /// §2.6.2). Never underflows.
    pub fn inode_unlink(&mut self, id: InodeId, now_ns: u64) -> Result<Inode> {
        let mut ino = self.get_inode(id)?;
        ino.nlink = ino.nlink.saturating_sub(1);
        ino.mtime_ns = now_ns;
        self.inode_tree.insert(id, ino.clone());
        Ok(ino)
    }

    /// Mark an inode deleted; a background pass reclaims it and its data
    /// later (§2.7.3).
    pub fn mark_deleted(&mut self, id: InodeId) -> Result<Inode> {
        let mut ino = self.get_inode(id)?;
        ino.flag.set_mark_deleted();
        self.inode_tree.insert(id, ino.clone());
        Ok(ino)
    }

    /// Evict an inode: remove it from the tree and queue it on the free
    /// list for data cleanup. Returns the evicted inode (its extent list
    /// tells the data subsystem what to delete).
    pub fn evict_inode(&mut self, id: InodeId) -> Result<Inode> {
        let ino = self
            .inode_tree
            .remove(&id)
            .ok_or_else(|| CfsError::NotFound(format!("{id}")))?;
        self.free_list.push(id);
        Ok(ino)
    }

    /// Conditional eviction (compensation fixup): evict `id` only if it is
    /// the inode a dead async intent created — same creation stamp, still
    /// unreferenced. A mismatch means the id was legitimately reallocated
    /// (or the file was linked up after all), and the fixup must not touch
    /// it; returns `None` payload in that case so replays are idempotent.
    /// "Unreferenced" is relative to the file type's birth count — a fresh
    /// directory starts at nlink 2, so a flat `<= 1` guard would strand
    /// every orphan directory forever.
    pub fn evict_if(&mut self, id: InodeId, ctime_ns: u64) -> Result<Option<Inode>> {
        match self.inode_tree.get(&id) {
            Some(ino) if ino.ctime_ns == ctime_ns && ino.nlink <= ino.file_type.initial_nlink() => {
                Ok(Some(self.evict_inode(id)?))
            }
            _ => Ok(None),
        }
    }

    /// Drain the free list (the background cleaner collected the data).
    pub fn drain_free_list(&mut self) -> Vec<InodeId> {
        std::mem::take(&mut self.free_list)
    }

    /// Record where newly written file bytes landed and the new size
    /// (client metadata sync after a successful write, §2.4).
    pub fn append_extents(
        &mut self,
        id: InodeId,
        extents: &[ExtentKey],
        new_size: u64,
        now_ns: u64,
    ) -> Result<Inode> {
        let mut ino = self.get_inode(id)?;
        if ino.is_dir() {
            return Err(CfsError::IsADirectory(id));
        }
        ino.extents.extend_from_slice(extents);
        ino.size = ino.size.max(new_size);
        ino.mtime_ns = now_ns;
        self.inode_tree.insert(id, ino.clone());
        Ok(ino)
    }

    /// Truncate a file to `size`, returning the extent keys that fell
    /// wholly beyond the new size (for data-subsystem cleanup). Bumps the
    /// generation so stale client caches are detectable.
    pub fn truncate(&mut self, id: InodeId, size: u64, now_ns: u64) -> Result<Vec<ExtentKey>> {
        let mut ino = self.get_inode(id)?;
        if ino.is_dir() {
            return Err(CfsError::IsADirectory(id));
        }
        let mut removed = Vec::new();
        let mut kept = Vec::new();
        for k in ino.extents.drain(..) {
            if k.file_offset >= size {
                removed.push(k);
            } else {
                let mut k = k;
                // Partially truncated piece: clamp its length.
                if k.file_offset + k.size > size {
                    k.size = size - k.file_offset;
                }
                kept.push(k);
            }
        }
        ino.extents = kept;
        ino.size = size;
        ino.mtime_ns = now_ns;
        ino.generation += 1;
        self.inode_tree.insert(id, ino);
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // Dentry operations
    // ------------------------------------------------------------------

    /// Insert a dentry; fails if `(parent, name)` exists.
    pub fn create_dentry(
        &mut self,
        parent: InodeId,
        name: &str,
        inode: InodeId,
        file_type: FileType,
    ) -> Result<Dentry> {
        let key = (parent, name.to_string());
        if self.dentry_tree.contains_key(&key) {
            return Err(CfsError::Exists(format!("{parent}/{name}")));
        }
        let d = Dentry {
            parent_id: parent,
            name: name.to_string(),
            inode,
            file_type,
        };
        self.dentry_tree.insert(key, d.clone());
        Ok(d)
    }

    /// Look up one dentry.
    pub fn get_dentry(&self, parent: InodeId, name: &str) -> Result<Dentry> {
        self.dentry_tree
            .get(&(parent, name.to_string()))
            .cloned()
            .ok_or_else(|| CfsError::NotFound(format!("{parent}/{name}")))
    }

    /// Remove a dentry, returning it (unlink workflow step 1, §2.6.3).
    pub fn delete_dentry(&mut self, parent: InodeId, name: &str) -> Result<Dentry> {
        self.dentry_tree
            .remove(&(parent, name.to_string()))
            .ok_or_else(|| CfsError::NotFound(format!("{parent}/{name}")))
    }

    /// Conditional dentry removal (compensation fixup): remove
    /// `(parent, name)` only while it still points at `inode`. Absent, or
    /// re-pointed by a later create of the same name, means there is
    /// nothing left to compensate — returns `None` payload, so replaying
    /// the fixup is idempotent and can never undo an unrelated op.
    pub fn remove_dentry_if(
        &mut self,
        parent: InodeId,
        name: &str,
        inode: InodeId,
    ) -> Result<Option<Dentry>> {
        let key = (parent, name.to_string());
        match self.dentry_tree.get(&key) {
            Some(d) if d.inode == inode => Ok(self.dentry_tree.remove(&key)),
            _ => Ok(None),
        }
    }

    /// All dentries under `parent`, name-ordered (`readdir`). A prefix
    /// range scan of the dentry tree — no per-entry lookups.
    pub fn readdir(&self, parent: InodeId) -> Vec<Dentry> {
        let lo = (parent, String::new());
        let hi = (InodeId(parent.raw() + 1), String::new());
        self.dentry_tree
            .range(lo..hi)
            .map(|(_, d)| d.clone())
            .collect()
    }

    /// Number of dentries under `parent` (rmdir emptiness check).
    pub fn dir_entry_count(&self, parent: InodeId) -> usize {
        let lo = (parent, String::new());
        let hi = (InodeId(parent.raw() + 1), String::new());
        self.dentry_tree.range(lo..hi).count()
    }

    /// Every inode in the partition (fsck enumeration).
    pub fn all_inodes(&self) -> Vec<Inode> {
        self.inode_tree.iter().map(|(_, v)| v.clone()).collect()
    }

    /// Every dentry in the partition (fsck enumeration).
    pub fn all_dentries(&self) -> Vec<Dentry> {
        self.dentry_tree.iter().map(|(_, v)| v.clone()).collect()
    }

    // ------------------------------------------------------------------
    // Splitting & snapshots
    // ------------------------------------------------------------------

    /// Cut the inode range at `end` (Algorithm 1 step on the original
    /// partition): after this no inode above `end` is ever allocated here.
    pub fn update_end(&mut self, end: InodeId) -> Result<()> {
        if end < self.max_inode {
            return Err(CfsError::InvalidArgument(format!(
                "cannot cut range at {end}: maxInodeID is {}",
                self.max_inode
            )));
        }
        self.config.end = end;
        Ok(())
    }

    /// Serialize the whole partition (Raft snapshot, §2.1.3).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.config.encode(&mut enc);
        self.max_inode.encode(&mut enc);
        self.free_list.to_vec().encode(&mut enc);
        let inodes: Vec<Inode> = self.inode_tree.iter().map(|(_, v)| v.clone()).collect();
        inodes.encode(&mut enc);
        let dentries: Vec<Dentry> = self.dentry_tree.iter().map(|(_, v)| v.clone()).collect();
        dentries.encode(&mut enc);
        enc.finish()
    }

    /// Rebuild `partition` from a snapshot. Every failure names the
    /// partition, so a chaos-repro log pinpoints which replica's image was
    /// bad; a snapshot whose embedded config disagrees with the expected
    /// id is rejected as corrupt too.
    pub fn from_snapshot(partition: PartitionId, data: &[u8]) -> Result<Self> {
        let p = Self::decode_snapshot(data)
            .map_err(|e| CfsError::Corrupt(format!("{partition} snapshot: {e}")))?;
        if p.config.partition_id != partition {
            return Err(CfsError::Corrupt(format!(
                "{partition} snapshot: carries id {}",
                p.config.partition_id
            )));
        }
        Ok(p)
    }

    fn decode_snapshot(data: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(data);
        let config = MetaPartitionConfig::decode(&mut dec)?;
        let max_inode = InodeId::decode(&mut dec)?;
        let free_list = Vec::<InodeId>::decode(&mut dec)?;
        let inodes = Vec::<Inode>::decode(&mut dec)?;
        let dentries = Vec::<Dentry>::decode(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(CfsError::Corrupt("trailing bytes".into()));
        }
        let mut p = MetaPartition::new(config);
        p.max_inode = max_inode;
        p.free_list = free_list;
        for ino in inodes {
            p.inode_tree.insert(ino.id, ino);
        }
        for d in dentries {
            p.dentry_tree.insert((d.parent_id, d.name.clone()), d);
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(start: u64, end: u64) -> MetaPartition {
        MetaPartition::new(MetaPartitionConfig {
            partition_id: PartitionId(1),
            volume_id: VolumeId(1),
            start: InodeId(start),
            end: InodeId(end),
        })
    }

    #[test]
    fn inode_allocation_is_sequential_within_range() {
        let mut p = part(1, u64::MAX);
        let a = p.create_inode(FileType::Dir, b"", 0).unwrap();
        let b = p.create_inode(FileType::File, b"", 0).unwrap();
        assert_eq!(a.id, InodeId(1));
        assert_eq!(b.id, InodeId(2));
        assert_eq!(p.max_inode(), InodeId(2));
        assert_eq!(a.nlink, 2, "directory starts with nlink 2");
        assert_eq!(b.nlink, 1, "file starts with nlink 1");
    }

    #[test]
    fn allocation_respects_split_range() {
        let mut p = part(100, 102);
        assert_eq!(
            p.create_inode(FileType::File, b"", 0).unwrap().id,
            InodeId(100)
        );
        assert_eq!(
            p.create_inode(FileType::File, b"", 0).unwrap().id,
            InodeId(101)
        );
        assert_eq!(
            p.create_inode(FileType::File, b"", 0).unwrap().id,
            InodeId(102)
        );
        assert!(matches!(
            p.create_inode(FileType::File, b"", 0),
            Err(CfsError::PartitionFull(_))
        ));
    }

    #[test]
    fn update_end_cuts_range_per_algorithm_1() {
        let mut p = part(1, u64::MAX);
        for _ in 0..5 {
            p.create_inode(FileType::File, b"", 0).unwrap();
        }
        // Cut at maxInodeID + Δ.
        p.update_end(InodeId(5 + 100)).unwrap();
        assert_eq!(p.config().end, InodeId(105));
        // Cutting below maxInodeID is rejected.
        assert!(p.update_end(InodeId(3)).is_err());
        // Next allocation stays in the cut range.
        assert_eq!(
            p.create_inode(FileType::File, b"", 0).unwrap().id,
            InodeId(6)
        );
    }

    #[test]
    fn dentry_crud_and_readdir_order() {
        let mut p = part(1, u64::MAX);
        let dir = p.create_inode(FileType::Dir, b"", 0).unwrap();
        for name in ["zeta", "alpha", "mid"] {
            let f = p.create_inode(FileType::File, b"", 0).unwrap();
            p.create_dentry(dir.id, name, f.id, FileType::File).unwrap();
        }
        assert!(p
            .create_dentry(dir.id, "alpha", InodeId(9), FileType::File)
            .is_err());
        let names: Vec<String> = p.readdir(dir.id).into_iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        assert_eq!(p.dir_entry_count(dir.id), 3);

        let d = p.delete_dentry(dir.id, "mid").unwrap();
        assert_eq!(d.name, "mid");
        assert!(p.delete_dentry(dir.id, "mid").is_err());
        assert_eq!(p.dir_entry_count(dir.id), 2);
    }

    #[test]
    fn readdir_does_not_leak_across_parents() {
        let mut p = part(1, u64::MAX);
        let d1 = p.create_inode(FileType::Dir, b"", 0).unwrap();
        let d2 = p.create_inode(FileType::Dir, b"", 0).unwrap();
        let f = p.create_inode(FileType::File, b"", 0).unwrap();
        p.create_dentry(d1.id, "only-in-d1", f.id, FileType::File)
            .unwrap();
        p.create_dentry(d2.id, "only-in-d2", f.id, FileType::File)
            .unwrap();
        assert_eq!(p.readdir(d1.id).len(), 1);
        assert_eq!(p.readdir(d1.id)[0].name, "only-in-d1");
        assert_eq!(p.readdir(d2.id)[0].name, "only-in-d2");
    }

    #[test]
    fn link_unlink_lifecycle() {
        let mut p = part(1, u64::MAX);
        let f = p.create_inode(FileType::File, b"", 0).unwrap();
        assert_eq!(p.inode_link(f.id).unwrap().nlink, 2);
        assert_eq!(p.inode_unlink(f.id, 1).unwrap().nlink, 1);
        assert_eq!(p.inode_unlink(f.id, 2).unwrap().nlink, 0);
        // Saturates, never underflows.
        assert_eq!(p.inode_unlink(f.id, 3).unwrap().nlink, 0);
    }

    #[test]
    fn evict_moves_to_free_list() {
        let mut p = part(1, u64::MAX);
        let f = p.create_inode(FileType::File, b"", 0).unwrap();
        p.evict_inode(f.id).unwrap();
        assert!(p.get_inode(f.id).is_err());
        assert_eq!(p.free_list(), &[f.id]);
        assert!(p.evict_inode(f.id).is_err(), "double evict");
        assert_eq!(p.drain_free_list(), vec![f.id]);
        assert!(p.free_list().is_empty());
    }

    #[test]
    fn extents_and_truncate() {
        let mut p = part(1, u64::MAX);
        let f = p.create_inode(FileType::File, b"", 0).unwrap();
        let keys: Vec<ExtentKey> = (0..4)
            .map(|i| ExtentKey {
                file_offset: i * 100,
                partition_id: PartitionId(2),
                extent_id: cfs_types::ExtentId(i + 1),
                extent_offset: 0,
                size: 100,
            })
            .collect();
        p.append_extents(f.id, &keys, 400, 5).unwrap();
        let ino = p.get_inode(f.id).unwrap();
        assert_eq!(ino.size, 400);
        assert_eq!(ino.extents.len(), 4);

        // Truncate to 150: extents at 200,300 removed; extent at 100
        // clamped to 50 bytes.
        let removed = p.truncate(f.id, 150, 6).unwrap();
        assert_eq!(removed.len(), 2);
        let ino = p.get_inode(f.id).unwrap();
        assert_eq!(ino.size, 150);
        assert_eq!(ino.extents.len(), 2);
        assert_eq!(ino.extents[1].size, 50);
        assert_eq!(ino.generation, 1);
    }

    #[test]
    fn batch_get_skips_missing() {
        let mut p = part(1, u64::MAX);
        let a = p.create_inode(FileType::File, b"", 0).unwrap();
        let b = p.create_inode(FileType::File, b"", 0).unwrap();
        let got = p.batch_get_inodes(&[a.id, InodeId(999), b.id]);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].id, a.id);
        assert_eq!(got[1].id, b.id);
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let mut p = part(1, u64::MAX);
        let dir = p.create_inode(FileType::Dir, b"", 7).unwrap();
        for i in 0..50 {
            let f = p.create_inode(FileType::File, b"", 7).unwrap();
            p.create_dentry(dir.id, &format!("f{i:03}"), f.id, FileType::File)
                .unwrap();
        }
        let victim = p.readdir(dir.id)[0].inode;
        p.evict_inode(victim).unwrap();
        let link = p.create_inode(FileType::Symlink, b"/target", 9).unwrap();

        let bytes = p.snapshot_bytes();
        let q = MetaPartition::from_snapshot(PartitionId(1), &bytes).unwrap();
        assert_eq!(q.item_count(), p.item_count());
        assert_eq!(q.max_inode(), p.max_inode());
        assert_eq!(q.free_list(), p.free_list());
        assert_eq!(q.readdir(dir.id).len(), 50);
        assert_eq!(q.get_inode(link.id).unwrap().link_target, b"/target");
        assert!(q.get_inode(victim).is_err());
    }

    #[test]
    fn corrupt_snapshot_rejected_with_partition_context() {
        let p = part(1, u64::MAX);
        let mut bytes = p.snapshot_bytes();
        bytes.push(0xff);
        let err = MetaPartition::from_snapshot(PartitionId(1), &bytes).unwrap_err();
        assert!(
            err.to_string().contains("p1"),
            "error names the partition: {err}"
        );
        let err = MetaPartition::from_snapshot(PartitionId(1), &bytes[..3]).unwrap_err();
        assert!(err.to_string().contains("p1"), "{err}");
        // A valid image restored under the wrong id is corrupt too.
        let err = MetaPartition::from_snapshot(PartitionId(9), &p.snapshot_bytes()).unwrap_err();
        assert!(matches!(err, CfsError::Corrupt(_)));
    }

    #[test]
    fn create_inode_at_pins_id_and_advances_max() {
        let mut p = part(1, u64::MAX);
        let pinned = p
            .create_inode_at(InodeId(7), FileType::File, b"", 42)
            .unwrap();
        assert_eq!(pinned.id, InodeId(7));
        assert_eq!(p.max_inode(), InodeId(7));
        // Fresh allocation after a pin never collides.
        assert_eq!(
            p.create_inode(FileType::File, b"", 0).unwrap().id,
            InodeId(8)
        );
        // A taken id is a deterministic Exists outcome.
        assert!(matches!(
            p.create_inode_at(InodeId(7), FileType::File, b"", 43),
            Err(CfsError::Exists(_))
        ));
        // Pins beyond the range cut are rejected like allocations.
        let mut q = part(1, 10);
        assert!(matches!(
            q.create_inode_at(InodeId(11), FileType::File, b"", 0),
            Err(CfsError::PartitionFull(_))
        ));
    }

    #[test]
    fn conditional_fixups_only_touch_their_own_victim() {
        let mut p = part(1, u64::MAX);
        let dir = p.create_inode(FileType::Dir, b"", 0).unwrap();
        let f = p.create_inode(FileType::File, b"", 5).unwrap();
        p.create_dentry(dir.id, "x", f.id, FileType::File).unwrap();

        // Wrong target inode: no-op, dentry survives.
        assert!(p
            .remove_dentry_if(dir.id, "x", InodeId(999))
            .unwrap()
            .is_none());
        assert!(p.get_dentry(dir.id, "x").is_ok());
        // Matching target: removed, and the replay is a no-op.
        assert!(p.remove_dentry_if(dir.id, "x", f.id).unwrap().is_some());
        assert!(p.remove_dentry_if(dir.id, "x", f.id).unwrap().is_none());

        // evict_if: stamp mismatch (id reallocated by someone else) is a
        // no-op; matching stamp evicts; replay is a no-op.
        assert!(p.evict_if(f.id, 6).unwrap().is_none());
        assert!(p.get_inode(f.id).is_ok());
        assert!(p.evict_if(f.id, 5).unwrap().is_some());
        assert!(p.evict_if(f.id, 5).unwrap().is_none());
        assert!(p.get_inode(f.id).is_err());
        // A linked-up inode (nlink above its birth count) is never
        // evicted by the fixup.
        let g = p.create_inode(FileType::File, b"", 9).unwrap();
        p.inode_link(g.id).unwrap();
        assert!(p.evict_if(g.id, 9).unwrap().is_none());

        // An orphan directory is evictable at its *initial* nlink of 2 —
        // a flat `<= 1` guard would strand it forever.
        let d2 = p.create_inode(FileType::Dir, b"", 12).unwrap();
        assert_eq!(d2.nlink, 2);
        assert!(p.evict_if(d2.id, 12).unwrap().is_some());
        assert!(p.get_inode(d2.id).is_err());
    }

    #[test]
    fn mark_deleted_sets_flag() {
        let mut p = part(1, u64::MAX);
        let f = p.create_inode(FileType::File, b"", 0).unwrap();
        let ino = p.mark_deleted(f.id).unwrap();
        assert!(ino.flag.is_mark_deleted());
        assert!(ino.is_reclaimable());
    }
}
