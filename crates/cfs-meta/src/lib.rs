//! The metadata subsystem (§2.1): an in-memory distributed datastore of
//! inodes and dentries.
//!
//! * [`MetaPartition`] owns one inode-id range of one volume and keeps two
//!   copy-on-write B-trees — `inodeTree` (by inode id) and `dentryTree` (by
//!   `(parent inode id, name)`). It is a deterministic state machine: every
//!   mutation is a [`MetaCommand`] applied through Raft, so replicas stay
//!   identical, and reads are served at the Raft leader.
//! * [`MetaNode`] hosts many partitions behind one [`cfs_raft::MultiRaft`]
//!   instance, persists them via Raft snapshots + log compaction (§2.1.3),
//!   and serves the client RPCs ([`MetaRequest`]).
//!
//! The paper's relaxed metadata atomicity (§2.6) lives *above* this crate:
//! a file's inode and dentry may be on different partitions/nodes, and the
//! client orchestrates the create/link/unlink workflows with retries and
//! orphan-inode lists. This crate only guarantees per-partition atomicity
//! of each command.

mod command;
mod intent;
mod node;
mod partition;
#[cfg(test)]
mod prop_tests;

pub use command::{MetaCommand, MetaRead, MetaValue};
pub use intent::{CompensationRecord, IntentContext, IntentRecord};
pub use node::{MetaNode, MetaNodePersist, MetaRequest, MetaResponse, PartitionInfo};
pub use partition::{MetaPartition, MetaPartitionConfig};
