//! Property-based tests of the meta partition: arbitrary command
//! sequences against an in-memory model, plus snapshot/restore and
//! determinism invariants.

use std::collections::BTreeMap;

use proptest::prelude::*;

use cfs_types::{FileType, InodeId, PartitionId, VolumeId};

use crate::command::MetaCommand;
use crate::intent::{compensation_fixups, IntentContext};
use crate::partition::{MetaPartition, MetaPartitionConfig};

#[derive(Debug, Clone)]
enum Op {
    CreateInode(bool), // dir?
    CreateDentry {
        parent_ix: u8,
        name: u8,
        target_ix: u8,
    },
    DeleteDentry {
        parent_ix: u8,
        name: u8,
    },
    Link(u8),
    Unlink(u8),
    Evict(u8),
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<bool>().prop_map(Op::CreateInode),
        3 => (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(p, n, t)| Op::CreateDentry {
            parent_ix: p,
            name: n % 16,
            target_ix: t,
        }),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(p, n)| Op::DeleteDentry {
            parent_ix: p,
            name: n % 16,
        }),
        1 => any::<u8>().prop_map(Op::Link),
        2 => any::<u8>().prop_map(Op::Unlink),
        1 => any::<u8>().prop_map(Op::Evict),
        1 => Just(Op::Snapshot),
    ]
}

fn partition() -> MetaPartition {
    MetaPartition::new(MetaPartitionConfig {
        partition_id: PartitionId(1),
        volume_id: VolumeId(1),
        start: InodeId(1),
        end: InodeId::MAX,
    })
}

/// Decode a fuzz triple stream into a command log (shared by the replay
/// properties below so they explore the same command space).
fn build_log(seeds: &[(u8, u8, u8)]) -> Vec<MetaCommand> {
    let mut log: Vec<MetaCommand> = Vec::new();
    for &(a, b, c) in seeds {
        match a % 5 {
            0 => log.push(MetaCommand::CreateInode {
                file_type: if b % 2 == 0 {
                    FileType::File
                } else {
                    FileType::Dir
                },
                link_target: vec![],
                now_ns: c as u64,
            }),
            1 => log.push(MetaCommand::CreateDentry {
                parent: InodeId(1 + (b % 8) as u64),
                name: format!("f{}", c % 8),
                inode: InodeId(1 + (c % 8) as u64),
                file_type: FileType::File,
            }),
            2 => log.push(MetaCommand::DeleteDentry {
                parent: InodeId(1 + (b % 8) as u64),
                name: format!("f{}", c % 8),
            }),
            3 => log.push(MetaCommand::Unlink {
                inode: InodeId(1 + (b % 8) as u64),
                now_ns: c as u64,
            }),
            _ => log.push(MetaCommand::Link {
                inode: InodeId(1 + (b % 8) as u64),
            }),
        }
    }
    log
}

/// Freeze the newest partition at `maxInodeID + delta` and spawn its
/// successor owning `(cut, MAX]` — the Algorithm 1 range handoff, minus
/// the replication machinery (covered by the node/cluster tests).
fn do_split(parts: &mut Vec<MetaPartition>, delta: u64) {
    let newest = parts.last_mut().expect("at least one partition");
    let base = newest
        .max_inode()
        .raw()
        .max(newest.config().start.raw() - 1);
    let cut = InodeId(base + delta);
    newest.update_end(cut).expect("cut is >= maxInodeID");
    let next = MetaPartitionConfig {
        partition_id: PartitionId(parts.len() as u64 + 1),
        volume_id: VolumeId(1),
        start: InodeId(cut.raw() + 1),
        end: InodeId::MAX,
    };
    parts.push(MetaPartition::new(next));
}

/// Apply one command in the split world, routed the way the client
/// routes: creates go to the lowest partition with allocation headroom,
/// everything else to the partition whose range owns the target inode
/// (dentries live with their parent).
fn route_apply(
    parts: &mut [MetaPartition],
    cmd: &MetaCommand,
) -> cfs_types::Result<crate::command::MetaValue> {
    use cfs_types::CfsError;
    let target = match cmd {
        MetaCommand::CreateInode { .. } => {
            let mut full = None;
            for p in parts.iter_mut() {
                match cmd.apply(p) {
                    Err(e @ CfsError::PartitionFull(_)) => full = Some(Err(e)),
                    other => return other,
                }
            }
            return full.expect("at least one partition");
        }
        MetaCommand::CreateDentry { parent, .. } | MetaCommand::DeleteDentry { parent, .. } => {
            *parent
        }
        MetaCommand::Link { inode }
        | MetaCommand::Unlink { inode, .. }
        | MetaCommand::MarkDeleted { inode }
        | MetaCommand::Evict { inode }
        | MetaCommand::AppendExtents { inode, .. }
        | MetaCommand::Truncate { inode, .. } => *inode,
        MetaCommand::UpdateEnd { .. } => unreachable!("splits are driven by do_split"),
        MetaCommand::CreateInodeAt { .. }
        | MetaCommand::Tagged { .. }
        | MetaCommand::RemoveDentryIf { .. }
        | MetaCommand::EvictIf { .. } => {
            unreachable!("async-commit commands are exercised by the intent-journal properties")
        }
    };
    let owner = parts
        .iter_mut()
        .find(|p| p.config().start <= target && target <= p.config().end)
        .expect("contiguous ranges cover the id space");
    cmd.apply(owner)
}

/// A fuzzed async-commit client workflow (DESIGN §12): create plants an
/// inode intent plus a dentry intent (in either commit order — the two
/// halves live on independent partitions in the real system), unlink
/// journals a single delete intent, link commits its nlink increment
/// synchronously and journals the dentry intent.
#[derive(Debug, Clone)]
enum WfSpec {
    Create {
        parent_sel: u8,
        name: u8,
        dir: bool,
        flip: bool,
    },
    Unlink {
        sel: u8,
    },
    Link {
        target_sel: u8,
        parent_sel: u8,
        name: u8,
    },
}

fn wf_strategy() -> impl Strategy<Value = WfSpec> {
    prop_oneof![
        4 => (any::<u8>(), any::<u8>(), any::<bool>(), any::<bool>()).prop_map(
            |(p, n, dir, flip)| WfSpec::Create { parent_sel: p, name: n, dir, flip }
        ),
        2 => any::<u8>().prop_map(|s| WfSpec::Unlink { sel: s }),
        2 => (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(t, p, n)| WfSpec::Link {
            target_sel: t,
            parent_sel: p,
            name: n,
        }),
    ]
}

/// One journaled intent: the pinned command plus the context its
/// compensation fixups derive from — exactly what `IntentRecord` stores.
struct PlannedIntent {
    cmd: MetaCommand,
    ctx: IntentContext,
}

/// A planned workflow: synchronous commands (committed before the ack,
/// so they always survive the crash) plus the indices of its intents in
/// the global journal order.
struct PlannedWf {
    sync: Vec<MetaCommand>,
    intents: Vec<usize>,
    kind: WfKind,
}

enum WfKind {
    /// `ino` is the pinned inode id, `inode_half` the journal index of
    /// its `CreateInodeAt` intent — needed to model the rescue rule.
    Create {
        ino: InodeId,
        inode_half: usize,
    },
    Unlink,
    Link {
        target: InodeId,
    },
}

enum Step {
    Sync(MetaCommand),
    Intent(usize),
}

/// Plan the fuzzed workflows the way `write_async` does: speculatively
/// against an overlay world where every acked op succeeds, pinning
/// nondeterminism (inode ids, ctimes) into the journaled commands. A
/// workflow the overlay would refuse (name already taken) is skipped —
/// the real node answers `SyncFallback`/an error instead of acking.
fn plan_workflows(
    specs: &[WfSpec],
) -> (
    Vec<MetaCommand>,
    Vec<Step>,
    Vec<PlannedIntent>,
    Vec<PlannedWf>,
) {
    let setup = vec![
        MetaCommand::CreateInode {
            file_type: FileType::Dir,
            link_target: vec![],
            now_ns: 1,
        },
        MetaCommand::CreateInode {
            file_type: FileType::Dir,
            link_target: vec![],
            now_ns: 2,
        },
    ];
    let mut planner = partition();
    for c in &setup {
        c.apply(&mut planner).unwrap();
    }
    let mut dirs = vec![InodeId(1), InodeId(2)];
    let mut files: Vec<(InodeId, String, InodeId)> = Vec::new();
    let mut steps = Vec::new();
    let mut intents: Vec<PlannedIntent> = Vec::new();
    let mut wfs: Vec<PlannedWf> = Vec::new();

    for (i, spec) in specs.iter().enumerate() {
        match spec {
            WfSpec::Create {
                parent_sel,
                name,
                dir,
                flip,
            } => {
                let ctime = 1_000 + i as u64;
                let parent = dirs[*parent_sel as usize % dirs.len()];
                let nm = format!("f{}", name % 12);
                if planner.get_dentry(parent, &nm).is_ok() {
                    continue;
                }
                let ft = if *dir { FileType::Dir } else { FileType::File };
                let ino = planner.create_inode(ft, b"", ctime).unwrap().id;
                planner.create_dentry(parent, &nm, ino, ft).unwrap();
                let inode_half = PlannedIntent {
                    cmd: MetaCommand::CreateInodeAt {
                        id: ino,
                        file_type: ft,
                        link_target: vec![],
                        now_ns: ctime,
                    },
                    ctx: IntentContext::PlannedDentry {
                        parent,
                        name: nm.clone(),
                    },
                };
                let dentry_half = PlannedIntent {
                    cmd: MetaCommand::CreateDentry {
                        parent,
                        name: nm.clone(),
                        inode: ino,
                        file_type: ft,
                    },
                    ctx: IntentContext::FreshInode { ctime_ns: ctime },
                };
                let base = intents.len();
                let inode_ix = if *flip { base + 1 } else { base };
                let pair = if *flip {
                    [dentry_half, inode_half]
                } else {
                    [inode_half, dentry_half]
                };
                let mut ixs = Vec::new();
                for half in pair {
                    steps.push(Step::Intent(intents.len()));
                    ixs.push(intents.len());
                    intents.push(half);
                }
                wfs.push(PlannedWf {
                    sync: vec![],
                    intents: ixs,
                    kind: WfKind::Create {
                        ino,
                        inode_half: inode_ix,
                    },
                });
                if *dir {
                    dirs.push(ino);
                }
                files.push((parent, nm, ino));
            }
            WfSpec::Unlink { sel } => {
                if files.is_empty() {
                    continue;
                }
                let (parent, nm, ino) = files.remove(*sel as usize % files.len());
                planner.delete_dentry(parent, &nm).unwrap();
                steps.push(Step::Intent(intents.len()));
                wfs.push(PlannedWf {
                    sync: vec![],
                    intents: vec![intents.len()],
                    kind: WfKind::Unlink,
                });
                intents.push(PlannedIntent {
                    cmd: MetaCommand::DeleteDentry { parent, name: nm },
                    ctx: IntentContext::UnlinkedInode { inode: ino },
                });
            }
            WfSpec::Link {
                target_sel,
                parent_sel,
                name,
            } => {
                if files.is_empty() {
                    continue;
                }
                let target = files[*target_sel as usize % files.len()].2;
                let parent = dirs[*parent_sel as usize % dirs.len()];
                let nm = format!("l{}", name % 12);
                if planner.get_dentry(parent, &nm).is_ok() {
                    continue;
                }
                planner.inode_link(target).unwrap();
                planner
                    .create_dentry(parent, &nm, target, FileType::File)
                    .unwrap();
                steps.push(Step::Sync(MetaCommand::Link { inode: target }));
                steps.push(Step::Intent(intents.len()));
                wfs.push(PlannedWf {
                    sync: vec![MetaCommand::Link { inode: target }],
                    intents: vec![intents.len()],
                    kind: WfKind::Link { target },
                });
                intents.push(PlannedIntent {
                    cmd: MetaCommand::CreateDentry {
                        parent,
                        name: nm.clone(),
                        inode: target,
                        file_type: FileType::File,
                    },
                    ctx: IntentContext::LinkedInode { inode: target },
                });
                files.push((parent, nm, target));
            }
        }
    }
    (setup, steps, intents, wfs)
}

#[derive(Clone, Copy, PartialEq)]
enum Outcome {
    /// The intent's frame committed and applied cleanly — retired.
    Applied,
    /// The frame committed but application failed (e.g. the name a dead
    /// sibling was supposed to free is still taken) — compensated.
    Failed,
    /// The frame never committed (lost to the crash) — compensated.
    Dead,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The partition agrees with a simple model on inode existence,
    /// nlink counts and the dentry namespace — and every snapshot
    /// restores byte-identically.
    #[test]
    fn partition_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut p = partition();
        // Model: inode id -> nlink; dentry (parent, name) -> inode.
        let mut inodes: Vec<InodeId> = Vec::new(); // allocation order
        let mut nlink: BTreeMap<InodeId, u32> = BTreeMap::new();
        let mut dentries: BTreeMap<(InodeId, String), InodeId> = BTreeMap::new();

        let pick = |v: &Vec<InodeId>, ix: u8| -> Option<InodeId> {
            if v.is_empty() { None } else { Some(v[ix as usize % v.len()]) }
        };

        for op in &ops {
            match op {
                Op::CreateInode(is_dir) => {
                    let ft = if *is_dir { FileType::Dir } else { FileType::File };
                    let ino = p.create_inode(ft, b"", 1).unwrap();
                    inodes.push(ino.id);
                    nlink.insert(ino.id, ft.initial_nlink());
                }
                Op::CreateDentry { parent_ix, name, target_ix } => {
                    let (Some(parent), Some(target)) =
                        (pick(&inodes, *parent_ix), pick(&inodes, *target_ix))
                    else { continue };
                    if !nlink.contains_key(&parent) || !nlink.contains_key(&target) {
                        continue;
                    }
                    let nm = format!("d{name}");
                    let got = p.create_dentry(parent, &nm, target, FileType::File);
                    match dentries.entry((parent, nm)) {
                        std::collections::btree_map::Entry::Occupied(_) => {
                            prop_assert!(got.is_err(), "duplicate dentry accepted");
                        }
                        std::collections::btree_map::Entry::Vacant(slot) => {
                            prop_assert!(got.is_ok());
                            slot.insert(target);
                        }
                    }
                }
                Op::DeleteDentry { parent_ix, name } => {
                    let Some(parent) = pick(&inodes, *parent_ix) else { continue };
                    let nm = format!("d{name}");
                    let got = p.delete_dentry(parent, &nm);
                    match dentries.remove(&(parent, nm)) {
                        Some(target) => {
                            prop_assert_eq!(got.unwrap().inode, target);
                        }
                        None => prop_assert!(got.is_err()),
                    }
                }
                Op::Link(ix) => {
                    let Some(ino) = pick(&inodes, *ix) else { continue };
                    if let Some(n) = nlink.get_mut(&ino) {
                        let got = p.inode_link(ino).unwrap();
                        *n += 1;
                        prop_assert_eq!(got.nlink, *n);
                    }
                }
                Op::Unlink(ix) => {
                    let Some(ino) = pick(&inodes, *ix) else { continue };
                    if let Some(n) = nlink.get_mut(&ino) {
                        let got = p.inode_unlink(ino, 2).unwrap();
                        *n = n.saturating_sub(1);
                        prop_assert_eq!(got.nlink, *n);
                    }
                }
                Op::Evict(ix) => {
                    let Some(ino) = pick(&inodes, *ix) else { continue };
                    if nlink.remove(&ino).is_some() {
                        prop_assert!(p.evict_inode(ino).is_ok());
                    } else {
                        prop_assert!(p.evict_inode(ino).is_err(), "double evict");
                    }
                }
                Op::Snapshot => {
                    let bytes = p.snapshot_bytes();
                    let q = MetaPartition::from_snapshot(PartitionId(1), &bytes).unwrap();
                    prop_assert_eq!(
                        q.snapshot_bytes(),
                        bytes,
                        "snapshot restore is byte-identical"
                    );
                    prop_assert_eq!(q.item_count(), p.item_count());
                }
            }
            // Global invariants after every op.
            prop_assert_eq!(
                p.item_count(),
                (nlink.len() + dentries.len()) as u64,
                "item count tracks model"
            );
        }

        // Final audit: every model inode and dentry is observable.
        for (ino, n) in &nlink {
            let got = p.get_inode(*ino).unwrap();
            prop_assert_eq!(got.nlink, *n);
        }
        for ((parent, name), target) in &dentries {
            let d = p.get_dentry(*parent, name).unwrap();
            prop_assert_eq!(d.inode, *target);
        }
    }

    /// Replaying a command log on a fresh partition yields an identical
    /// snapshot — the determinism Raft relies on.
    #[test]
    fn command_replay_is_deterministic(
        seeds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60)
    ) {
        let log = build_log(&seeds);
        let mut p1 = partition();
        let mut p2 = partition();
        for cmd in &log {
            let r1 = cmd.apply(&mut p1);
            let r2 = cmd.apply(&mut p2);
            prop_assert_eq!(r1, r2, "identical results incl. errors");
        }
        prop_assert_eq!(p1.snapshot_bytes(), p2.snapshot_bytes());
    }

    /// Group commit equivalence: shipping a command log through a real
    /// Raft batch frame (propose_batch → commit → decode) and applying
    /// the decoded sub-commands is observably identical to applying the
    /// same commands sequentially — same per-command results (including
    /// errors), same tree, same snapshot bytes.
    #[test]
    fn batched_frame_apply_equals_sequential_apply(
        seeds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60)
    ) {
        use cfs_raft::{decode_batch_frame, RaftConfig, RaftNode};
        use cfs_types::codec::{Decode, Encode};
        use cfs_types::NodeId;

        let log = build_log(&seeds);

        // Drive the frame through a real single-member Raft group.
        let mut node = RaftNode::new(
            NodeId(1),
            cfs_types::RaftGroupId(1),
            vec![NodeId(1)],
            RaftConfig::default(),
            7,
        );
        for _ in 0..RaftConfig::default().election_timeout_max {
            node.tick();
        }
        prop_assert!(node.is_leader());
        let index = node.propose_batch(log.iter().map(|c| c.to_bytes()).collect()).unwrap();
        let ready = node.take_ready();
        let entry = ready
            .committed
            .into_iter()
            .find(|e| e.index == index)
            .expect("frame committed");
        let decoded = decode_batch_frame(&entry.data).expect("is a frame").unwrap();
        prop_assert_eq!(decoded.len(), log.len());

        let mut batched = partition();
        let mut sequential = partition();
        for (bytes, cmd) in decoded.iter().zip(&log) {
            let from_frame = MetaCommand::from_bytes(bytes).unwrap();
            let r_batch = from_frame.apply(&mut batched);
            let r_seq = cmd.apply(&mut sequential);
            prop_assert_eq!(r_batch, r_seq, "per-command result parity");
        }
        prop_assert_eq!(batched.item_count(), sequential.item_count());
        prop_assert_eq!(
            batched.snapshot_bytes(),
            sequential.snapshot_bytes(),
            "frame roundtrip preserves the whole tree"
        );
    }

    /// Crash-replay equivalence (§2.1.3): apply a prefix of the log, take
    /// a snapshot ("crash"), restore a new replica from it, then apply the
    /// suffix — the restored replica must behave and end up byte-identical
    /// to a replica that lived through the whole log.
    #[test]
    fn crash_replay_from_snapshot_matches_live(
        seeds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60),
        cut_sel in any::<u16>(),
    ) {
        let log = build_log(&seeds);
        let cut = cut_sel as usize % (log.len() + 1);

        let mut live = partition();
        for cmd in &log {
            let _ = cmd.apply(&mut live);
        }

        let mut pre = partition();
        for cmd in &log[..cut] {
            let _ = cmd.apply(&mut pre);
        }
        let image = pre.snapshot_bytes();
        let mut restored = MetaPartition::from_snapshot(PartitionId(1), &image).unwrap();
        for cmd in &log[cut..] {
            // Suffix commands must produce the same results (including
            // errors) on the survivor and on the restored replica.
            let r_pre = cmd.apply(&mut pre);
            let r_restored = cmd.apply(&mut restored);
            prop_assert_eq!(r_pre, r_restored, "suffix result parity after restore");
        }
        prop_assert_eq!(
            restored.snapshot_bytes(),
            live.snapshot_bytes(),
            "prefix + snapshot + suffix equals the uninterrupted history"
        );
    }

    /// Split equivalence (Algorithm 1): a command log interleaved with
    /// online splits at arbitrary points and arbitrary `Δ` headroom is
    /// observably identical to the same log on one unsplit partition —
    /// per-command results (including errors) match, the union of the
    /// halves is the unsplit tree, every inode and dentry is owned by
    /// exactly one partition (the invariant the chaos fsck checks at
    /// cluster scale), and no split ever copies an item between halves.
    #[test]
    fn split_interleaving_matches_unsplit(
        seeds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..80),
        cut_plan in proptest::collection::vec((any::<u16>(), 0u64..5), 1..4),
    ) {
        let log = build_log(&seeds);
        // Normalise the fuzzed cut plan to (op index, Δ), sorted so the
        // splits fire in schedule order. Δ = 0 freezes the predecessor
        // with no headroom — the next create spills straight over.
        let mut cuts: Vec<(usize, u64)> = cut_plan
            .iter()
            .map(|&(pos, d)| (pos as usize % (log.len() + 1), d))
            .collect();
        cuts.sort_unstable();

        let mut mono = partition();
        let mut parts: Vec<MetaPartition> = vec![partition()];

        for (i, cmd) in log.iter().enumerate() {
            for &(_, delta) in cuts.iter().filter(|&&(pos, _)| pos == i) {
                do_split(&mut parts, delta);
            }
            // Clients only hang dentries under a parent inode they hold
            // (§2.6), and every allocated inode id is ≤ maxInodeID ≤ the
            // next cut — which is what keeps a dentry co-located with
            // its parent across splits. Skip fuzzed dentries under
            // never-allocated parents; the node-level fence rejects such
            // routing with RangeMoved in the real system.
            if let MetaCommand::CreateDentry { parent, .. } = cmd {
                if *parent > mono.max_inode() {
                    continue;
                }
            }
            let r_mono = cmd.apply(&mut mono);
            let r_split = route_apply(&mut parts, cmd);
            prop_assert_eq!(r_mono, r_split, "result parity for op {}", i);
        }
        for &(_, delta) in cuts.iter().filter(|&&(pos, _)| pos == log.len()) {
            do_split(&mut parts, delta);
        }
        prop_assert!(parts.len() >= 2, "plan performed at least one split");

        // Exactly-once ownership: every item sits inside its partition's
        // range, and the sorted union reassembles the unsplit tree (any
        // double-owned or lost item breaks the equality, since the
        // unsplit tree holds each exactly once).
        let mut union_inodes = Vec::new();
        let mut union_dentries = Vec::new();
        for p in &parts {
            for ino in p.all_inodes() {
                prop_assert!(
                    p.config().start <= ino.id && ino.id <= p.config().end,
                    "inode {} outside its owner's range", ino.id
                );
                union_inodes.push(ino);
            }
            union_dentries.extend(p.all_dentries());
        }
        union_inodes.sort_by_key(|i| i.id);
        union_dentries.sort_by(|a, b| {
            (a.parent_id, &a.name).cmp(&(b.parent_id, &b.name))
        });
        prop_assert_eq!(union_inodes, mono.all_inodes(), "inode union");
        prop_assert_eq!(union_dentries.clone(), mono.all_dentries(), "dentry union");
        let total: u64 = parts.iter().map(|p| p.item_count()).sum();
        prop_assert_eq!(total, mono.item_count(), "no item copied or lost");

        // Readdir exactly-once: each directory's listing comes entirely
        // from the partition owning the parent and matches the unsplit
        // listing.
        let parents: std::collections::BTreeSet<InodeId> =
            union_dentries.iter().map(|d| d.parent_id).collect();
        for parent in parents {
            let owner = parts
                .iter()
                .find(|p| p.config().start <= parent && parent <= p.config().end)
                .expect("ranges cover the id space");
            prop_assert_eq!(owner.readdir(parent), mono.readdir(parent));
        }
    }

    /// Crash-cut equivalence for the async-commit journal (DESIGN §12,
    /// chaos invariant (i)): journal a fuzzed stream of client workflows,
    /// crash after an arbitrary prefix of group commits, and run the
    /// compensation engine over every dead or failed intent. The visible
    /// tree (inodes incl. nlink/ctime, dentries) must equal a synchronous
    /// execution of exactly the workflows whose every intent committed
    /// and applied cleanly — with one asymmetry by design: an acked
    /// unlink whose intent died is *forward-completed*, so the name ends
    /// absent either way. Bookkeeping the reference never saw (max
    /// inode id, burned ids of compensated creates) is excluded — ids
    /// are never reused, not reclaimed. Fixups must also be idempotent:
    /// replaying the whole compensation batch is a no-op, which is what
    /// lets the orphan sweep retry them across further crashes.
    #[test]
    fn compensated_crash_cut_equals_synchronous_prefix(
        specs in proptest::collection::vec(wf_strategy(), 1..40),
        cut_sel in any::<u16>(),
    ) {
        let (setup, steps, intents, wfs) = plan_workflows(&specs);
        let k = cut_sel as usize % (intents.len() + 1);

        // Subject: the survivor tree. Synchronous commands always
        // committed (they precede the ack); intents committed only up to
        // the cut. A committed intent whose application fails is
        // compensated exactly like a dead one (apply_one's error path).
        let mut subject = partition();
        for c in &setup {
            c.apply(&mut subject).unwrap();
        }
        let mut outcome = vec![Outcome::Dead; intents.len()];
        for step in &steps {
            match step {
                Step::Sync(c) => {
                    let _ = c.apply(&mut subject);
                }
                Step::Intent(i) if *i < k => {
                    outcome[*i] = if intents[*i].cmd.apply(&mut subject).is_ok() {
                        Outcome::Applied
                    } else {
                        Outcome::Failed
                    };
                }
                Step::Intent(_) => {}
            }
        }
        let fixups: Vec<(InodeId, MetaCommand)> = intents
            .iter()
            .enumerate()
            .filter(|(i, _)| outcome[*i] != Outcome::Applied)
            .flat_map(|(_, pi)| compensation_fixups(&pi.cmd, &pi.ctx))
            .collect();
        // Mirror the orphan sweep's two-pass order: dentry removals and
        // nlink rollbacks first, conditional evictions second — a dead
        // link's not-yet-rolled-back increment must not make a sibling
        // EvictIf refuse the orphan for good.
        let is_evict = |f: &MetaCommand| matches!(f, MetaCommand::EvictIf { .. });
        for (_, f) in fixups.iter().filter(|(_, f)| !is_evict(f)) {
            let _ = f.apply(&mut subject);
        }
        for (_, f) in fixups.iter().filter(|(_, f)| is_evict(f)) {
            let _ = f.apply(&mut subject);
        }

        // Reference: synchronous execution of exactly the clean
        // workflows, plus forward-completion of broken unlinks, plus the
        // rescue rule: a compensated create whose inode half committed
        // stays alive if a *clean* link hard-linked it first — EvictIf's
        // nlink guard deliberately refuses to destroy a linked-up file,
        // leaving it reachable under the link's name.
        let clean =
            |wf: &PlannedWf| wf.intents.iter().all(|&i| outcome[i] == Outcome::Applied);
        let mut reference = partition();
        for c in &setup {
            c.apply(&mut reference).unwrap();
        }
        for wf in &wfs {
            if clean(wf) {
                for c in &wf.sync {
                    let _ = c.apply(&mut reference);
                }
                for &i in &wf.intents {
                    let _ = intents[i].cmd.apply(&mut reference);
                }
                continue;
            }
            match &wf.kind {
                WfKind::Unlink => {
                    let i = wf.intents[0];
                    for (_, f) in compensation_fixups(&intents[i].cmd, &intents[i].ctx) {
                        let _ = f.apply(&mut reference);
                    }
                }
                WfKind::Create { ino, inode_half } => {
                    let rescued = outcome[*inode_half] == Outcome::Applied
                        && wfs.iter().any(|w| {
                            clean(w) && matches!(w.kind, WfKind::Link { target } if target == *ino)
                        });
                    if rescued {
                        let _ = intents[*inode_half].cmd.apply(&mut reference);
                    }
                }
                WfKind::Link { .. } => {}
            }
        }

        // mtime is excluded: a rollback legitimately stamps the inode
        // with a repair time the synchronous history never saw.
        let norm = |p: &MetaPartition| {
            p.all_inodes()
                .into_iter()
                .map(|mut i| {
                    i.mtime_ns = 0;
                    i
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(
            norm(&subject),
            norm(&reference),
            "compensated survivor's inodes (incl. nlink rollback) equal the clean prefix"
        );
        prop_assert_eq!(
            subject.all_dentries(),
            reference.all_dentries(),
            "compensated survivor's namespace equals the clean prefix"
        );

        // Idempotence: the sweep may re-execute a conditional fixup after
        // another crash; the tree must not move. (The non-conditional
        // link rollback is excluded — the sweep's ack lifecycle runs it
        // exactly once per record.)
        let inodes_before = subject.all_inodes();
        let dentries_before = subject.all_dentries();
        for (_, f) in &fixups {
            if matches!(
                f,
                MetaCommand::RemoveDentryIf { .. } | MetaCommand::EvictIf { .. }
            ) {
                let _ = f.apply(&mut subject);
            }
        }
        prop_assert_eq!(subject.all_inodes(), inodes_before, "fixup replay is a no-op");
        prop_assert_eq!(subject.all_dentries(), dentries_before);
    }
}
