//! Property-based tests of the meta partition: arbitrary command
//! sequences against an in-memory model, plus snapshot/restore and
//! determinism invariants.

use std::collections::BTreeMap;

use proptest::prelude::*;

use cfs_types::{FileType, InodeId, PartitionId, VolumeId};

use crate::command::MetaCommand;
use crate::partition::{MetaPartition, MetaPartitionConfig};

#[derive(Debug, Clone)]
enum Op {
    CreateInode(bool), // dir?
    CreateDentry {
        parent_ix: u8,
        name: u8,
        target_ix: u8,
    },
    DeleteDentry {
        parent_ix: u8,
        name: u8,
    },
    Link(u8),
    Unlink(u8),
    Evict(u8),
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<bool>().prop_map(Op::CreateInode),
        3 => (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(p, n, t)| Op::CreateDentry {
            parent_ix: p,
            name: n % 16,
            target_ix: t,
        }),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(p, n)| Op::DeleteDentry {
            parent_ix: p,
            name: n % 16,
        }),
        1 => any::<u8>().prop_map(Op::Link),
        2 => any::<u8>().prop_map(Op::Unlink),
        1 => any::<u8>().prop_map(Op::Evict),
        1 => Just(Op::Snapshot),
    ]
}

fn partition() -> MetaPartition {
    MetaPartition::new(MetaPartitionConfig {
        partition_id: PartitionId(1),
        volume_id: VolumeId(1),
        start: InodeId(1),
        end: InodeId::MAX,
    })
}

/// Decode a fuzz triple stream into a command log (shared by the replay
/// properties below so they explore the same command space).
fn build_log(seeds: &[(u8, u8, u8)]) -> Vec<MetaCommand> {
    let mut log: Vec<MetaCommand> = Vec::new();
    for &(a, b, c) in seeds {
        match a % 5 {
            0 => log.push(MetaCommand::CreateInode {
                file_type: if b % 2 == 0 {
                    FileType::File
                } else {
                    FileType::Dir
                },
                link_target: vec![],
                now_ns: c as u64,
            }),
            1 => log.push(MetaCommand::CreateDentry {
                parent: InodeId(1 + (b % 8) as u64),
                name: format!("f{}", c % 8),
                inode: InodeId(1 + (c % 8) as u64),
                file_type: FileType::File,
            }),
            2 => log.push(MetaCommand::DeleteDentry {
                parent: InodeId(1 + (b % 8) as u64),
                name: format!("f{}", c % 8),
            }),
            3 => log.push(MetaCommand::Unlink {
                inode: InodeId(1 + (b % 8) as u64),
                now_ns: c as u64,
            }),
            _ => log.push(MetaCommand::Link {
                inode: InodeId(1 + (b % 8) as u64),
            }),
        }
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The partition agrees with a simple model on inode existence,
    /// nlink counts and the dentry namespace — and every snapshot
    /// restores byte-identically.
    #[test]
    fn partition_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut p = partition();
        // Model: inode id -> nlink; dentry (parent, name) -> inode.
        let mut inodes: Vec<InodeId> = Vec::new(); // allocation order
        let mut nlink: BTreeMap<InodeId, u32> = BTreeMap::new();
        let mut dentries: BTreeMap<(InodeId, String), InodeId> = BTreeMap::new();

        let pick = |v: &Vec<InodeId>, ix: u8| -> Option<InodeId> {
            if v.is_empty() { None } else { Some(v[ix as usize % v.len()]) }
        };

        for op in &ops {
            match op {
                Op::CreateInode(is_dir) => {
                    let ft = if *is_dir { FileType::Dir } else { FileType::File };
                    let ino = p.create_inode(ft, b"", 1).unwrap();
                    inodes.push(ino.id);
                    nlink.insert(ino.id, ft.initial_nlink());
                }
                Op::CreateDentry { parent_ix, name, target_ix } => {
                    let (Some(parent), Some(target)) =
                        (pick(&inodes, *parent_ix), pick(&inodes, *target_ix))
                    else { continue };
                    if !nlink.contains_key(&parent) || !nlink.contains_key(&target) {
                        continue;
                    }
                    let nm = format!("d{name}");
                    let got = p.create_dentry(parent, &nm, target, FileType::File);
                    match dentries.entry((parent, nm)) {
                        std::collections::btree_map::Entry::Occupied(_) => {
                            prop_assert!(got.is_err(), "duplicate dentry accepted");
                        }
                        std::collections::btree_map::Entry::Vacant(slot) => {
                            prop_assert!(got.is_ok());
                            slot.insert(target);
                        }
                    }
                }
                Op::DeleteDentry { parent_ix, name } => {
                    let Some(parent) = pick(&inodes, *parent_ix) else { continue };
                    let nm = format!("d{name}");
                    let got = p.delete_dentry(parent, &nm);
                    match dentries.remove(&(parent, nm)) {
                        Some(target) => {
                            prop_assert_eq!(got.unwrap().inode, target);
                        }
                        None => prop_assert!(got.is_err()),
                    }
                }
                Op::Link(ix) => {
                    let Some(ino) = pick(&inodes, *ix) else { continue };
                    if let Some(n) = nlink.get_mut(&ino) {
                        let got = p.inode_link(ino).unwrap();
                        *n += 1;
                        prop_assert_eq!(got.nlink, *n);
                    }
                }
                Op::Unlink(ix) => {
                    let Some(ino) = pick(&inodes, *ix) else { continue };
                    if let Some(n) = nlink.get_mut(&ino) {
                        let got = p.inode_unlink(ino, 2).unwrap();
                        *n = n.saturating_sub(1);
                        prop_assert_eq!(got.nlink, *n);
                    }
                }
                Op::Evict(ix) => {
                    let Some(ino) = pick(&inodes, *ix) else { continue };
                    if nlink.remove(&ino).is_some() {
                        prop_assert!(p.evict_inode(ino).is_ok());
                    } else {
                        prop_assert!(p.evict_inode(ino).is_err(), "double evict");
                    }
                }
                Op::Snapshot => {
                    let bytes = p.snapshot_bytes();
                    let q = MetaPartition::from_snapshot(PartitionId(1), &bytes).unwrap();
                    prop_assert_eq!(
                        q.snapshot_bytes(),
                        bytes,
                        "snapshot restore is byte-identical"
                    );
                    prop_assert_eq!(q.item_count(), p.item_count());
                }
            }
            // Global invariants after every op.
            prop_assert_eq!(
                p.item_count(),
                (nlink.len() + dentries.len()) as u64,
                "item count tracks model"
            );
        }

        // Final audit: every model inode and dentry is observable.
        for (ino, n) in &nlink {
            let got = p.get_inode(*ino).unwrap();
            prop_assert_eq!(got.nlink, *n);
        }
        for ((parent, name), target) in &dentries {
            let d = p.get_dentry(*parent, name).unwrap();
            prop_assert_eq!(d.inode, *target);
        }
    }

    /// Replaying a command log on a fresh partition yields an identical
    /// snapshot — the determinism Raft relies on.
    #[test]
    fn command_replay_is_deterministic(
        seeds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60)
    ) {
        let log = build_log(&seeds);
        let mut p1 = partition();
        let mut p2 = partition();
        for cmd in &log {
            let r1 = cmd.apply(&mut p1);
            let r2 = cmd.apply(&mut p2);
            prop_assert_eq!(r1, r2, "identical results incl. errors");
        }
        prop_assert_eq!(p1.snapshot_bytes(), p2.snapshot_bytes());
    }

    /// Group commit equivalence: shipping a command log through a real
    /// Raft batch frame (propose_batch → commit → decode) and applying
    /// the decoded sub-commands is observably identical to applying the
    /// same commands sequentially — same per-command results (including
    /// errors), same tree, same snapshot bytes.
    #[test]
    fn batched_frame_apply_equals_sequential_apply(
        seeds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60)
    ) {
        use cfs_raft::{decode_batch_frame, RaftConfig, RaftNode};
        use cfs_types::codec::{Decode, Encode};
        use cfs_types::NodeId;

        let log = build_log(&seeds);

        // Drive the frame through a real single-member Raft group.
        let mut node = RaftNode::new(
            NodeId(1),
            cfs_types::RaftGroupId(1),
            vec![NodeId(1)],
            RaftConfig::default(),
            7,
        );
        for _ in 0..RaftConfig::default().election_timeout_max {
            node.tick();
        }
        prop_assert!(node.is_leader());
        let index = node.propose_batch(log.iter().map(|c| c.to_bytes()).collect()).unwrap();
        let ready = node.take_ready();
        let entry = ready
            .committed
            .into_iter()
            .find(|e| e.index == index)
            .expect("frame committed");
        let decoded = decode_batch_frame(&entry.data).expect("is a frame").unwrap();
        prop_assert_eq!(decoded.len(), log.len());

        let mut batched = partition();
        let mut sequential = partition();
        for (bytes, cmd) in decoded.iter().zip(&log) {
            let from_frame = MetaCommand::from_bytes(bytes).unwrap();
            let r_batch = from_frame.apply(&mut batched);
            let r_seq = cmd.apply(&mut sequential);
            prop_assert_eq!(r_batch, r_seq, "per-command result parity");
        }
        prop_assert_eq!(batched.item_count(), sequential.item_count());
        prop_assert_eq!(
            batched.snapshot_bytes(),
            sequential.snapshot_bytes(),
            "frame roundtrip preserves the whole tree"
        );
    }

    /// Crash-replay equivalence (§2.1.3): apply a prefix of the log, take
    /// a snapshot ("crash"), restore a new replica from it, then apply the
    /// suffix — the restored replica must behave and end up byte-identical
    /// to a replica that lived through the whole log.
    #[test]
    fn crash_replay_from_snapshot_matches_live(
        seeds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60),
        cut_sel in any::<u16>(),
    ) {
        let log = build_log(&seeds);
        let cut = cut_sel as usize % (log.len() + 1);

        let mut live = partition();
        for cmd in &log {
            let _ = cmd.apply(&mut live);
        }

        let mut pre = partition();
        for cmd in &log[..cut] {
            let _ = cmd.apply(&mut pre);
        }
        let image = pre.snapshot_bytes();
        let mut restored = MetaPartition::from_snapshot(PartitionId(1), &image).unwrap();
        for cmd in &log[cut..] {
            // Suffix commands must produce the same results (including
            // errors) on the survivor and on the restored replica.
            let r_pre = cmd.apply(&mut pre);
            let r_restored = cmd.apply(&mut restored);
            prop_assert_eq!(r_pre, r_restored, "suffix result parity after restore");
        }
        prop_assert_eq!(
            restored.snapshot_bytes(),
            live.snapshot_bytes(),
            "prefix + snapshot + suffix equals the uninterrupted history"
        );
    }
}
