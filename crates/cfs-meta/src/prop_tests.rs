//! Property-based tests of the meta partition: arbitrary command
//! sequences against an in-memory model, plus snapshot/restore and
//! determinism invariants.

use std::collections::BTreeMap;

use proptest::prelude::*;

use cfs_types::{FileType, InodeId, PartitionId, VolumeId};

use crate::command::MetaCommand;
use crate::partition::{MetaPartition, MetaPartitionConfig};

#[derive(Debug, Clone)]
enum Op {
    CreateInode(bool), // dir?
    CreateDentry {
        parent_ix: u8,
        name: u8,
        target_ix: u8,
    },
    DeleteDentry {
        parent_ix: u8,
        name: u8,
    },
    Link(u8),
    Unlink(u8),
    Evict(u8),
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<bool>().prop_map(Op::CreateInode),
        3 => (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(p, n, t)| Op::CreateDentry {
            parent_ix: p,
            name: n % 16,
            target_ix: t,
        }),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(p, n)| Op::DeleteDentry {
            parent_ix: p,
            name: n % 16,
        }),
        1 => any::<u8>().prop_map(Op::Link),
        2 => any::<u8>().prop_map(Op::Unlink),
        1 => any::<u8>().prop_map(Op::Evict),
        1 => Just(Op::Snapshot),
    ]
}

fn partition() -> MetaPartition {
    MetaPartition::new(MetaPartitionConfig {
        partition_id: PartitionId(1),
        volume_id: VolumeId(1),
        start: InodeId(1),
        end: InodeId::MAX,
    })
}

/// Decode a fuzz triple stream into a command log (shared by the replay
/// properties below so they explore the same command space).
fn build_log(seeds: &[(u8, u8, u8)]) -> Vec<MetaCommand> {
    let mut log: Vec<MetaCommand> = Vec::new();
    for &(a, b, c) in seeds {
        match a % 5 {
            0 => log.push(MetaCommand::CreateInode {
                file_type: if b % 2 == 0 {
                    FileType::File
                } else {
                    FileType::Dir
                },
                link_target: vec![],
                now_ns: c as u64,
            }),
            1 => log.push(MetaCommand::CreateDentry {
                parent: InodeId(1 + (b % 8) as u64),
                name: format!("f{}", c % 8),
                inode: InodeId(1 + (c % 8) as u64),
                file_type: FileType::File,
            }),
            2 => log.push(MetaCommand::DeleteDentry {
                parent: InodeId(1 + (b % 8) as u64),
                name: format!("f{}", c % 8),
            }),
            3 => log.push(MetaCommand::Unlink {
                inode: InodeId(1 + (b % 8) as u64),
                now_ns: c as u64,
            }),
            _ => log.push(MetaCommand::Link {
                inode: InodeId(1 + (b % 8) as u64),
            }),
        }
    }
    log
}

/// Freeze the newest partition at `maxInodeID + delta` and spawn its
/// successor owning `(cut, MAX]` — the Algorithm 1 range handoff, minus
/// the replication machinery (covered by the node/cluster tests).
fn do_split(parts: &mut Vec<MetaPartition>, delta: u64) {
    let newest = parts.last_mut().expect("at least one partition");
    let base = newest
        .max_inode()
        .raw()
        .max(newest.config().start.raw() - 1);
    let cut = InodeId(base + delta);
    newest.update_end(cut).expect("cut is >= maxInodeID");
    let next = MetaPartitionConfig {
        partition_id: PartitionId(parts.len() as u64 + 1),
        volume_id: VolumeId(1),
        start: InodeId(cut.raw() + 1),
        end: InodeId::MAX,
    };
    parts.push(MetaPartition::new(next));
}

/// Apply one command in the split world, routed the way the client
/// routes: creates go to the lowest partition with allocation headroom,
/// everything else to the partition whose range owns the target inode
/// (dentries live with their parent).
fn route_apply(
    parts: &mut [MetaPartition],
    cmd: &MetaCommand,
) -> cfs_types::Result<crate::command::MetaValue> {
    use cfs_types::CfsError;
    let target = match cmd {
        MetaCommand::CreateInode { .. } => {
            let mut full = None;
            for p in parts.iter_mut() {
                match cmd.apply(p) {
                    Err(e @ CfsError::PartitionFull(_)) => full = Some(Err(e)),
                    other => return other,
                }
            }
            return full.expect("at least one partition");
        }
        MetaCommand::CreateDentry { parent, .. } | MetaCommand::DeleteDentry { parent, .. } => {
            *parent
        }
        MetaCommand::Link { inode }
        | MetaCommand::Unlink { inode, .. }
        | MetaCommand::MarkDeleted { inode }
        | MetaCommand::Evict { inode }
        | MetaCommand::AppendExtents { inode, .. }
        | MetaCommand::Truncate { inode, .. } => *inode,
        MetaCommand::UpdateEnd { .. } => unreachable!("splits are driven by do_split"),
    };
    let owner = parts
        .iter_mut()
        .find(|p| p.config().start <= target && target <= p.config().end)
        .expect("contiguous ranges cover the id space");
    cmd.apply(owner)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The partition agrees with a simple model on inode existence,
    /// nlink counts and the dentry namespace — and every snapshot
    /// restores byte-identically.
    #[test]
    fn partition_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut p = partition();
        // Model: inode id -> nlink; dentry (parent, name) -> inode.
        let mut inodes: Vec<InodeId> = Vec::new(); // allocation order
        let mut nlink: BTreeMap<InodeId, u32> = BTreeMap::new();
        let mut dentries: BTreeMap<(InodeId, String), InodeId> = BTreeMap::new();

        let pick = |v: &Vec<InodeId>, ix: u8| -> Option<InodeId> {
            if v.is_empty() { None } else { Some(v[ix as usize % v.len()]) }
        };

        for op in &ops {
            match op {
                Op::CreateInode(is_dir) => {
                    let ft = if *is_dir { FileType::Dir } else { FileType::File };
                    let ino = p.create_inode(ft, b"", 1).unwrap();
                    inodes.push(ino.id);
                    nlink.insert(ino.id, ft.initial_nlink());
                }
                Op::CreateDentry { parent_ix, name, target_ix } => {
                    let (Some(parent), Some(target)) =
                        (pick(&inodes, *parent_ix), pick(&inodes, *target_ix))
                    else { continue };
                    if !nlink.contains_key(&parent) || !nlink.contains_key(&target) {
                        continue;
                    }
                    let nm = format!("d{name}");
                    let got = p.create_dentry(parent, &nm, target, FileType::File);
                    match dentries.entry((parent, nm)) {
                        std::collections::btree_map::Entry::Occupied(_) => {
                            prop_assert!(got.is_err(), "duplicate dentry accepted");
                        }
                        std::collections::btree_map::Entry::Vacant(slot) => {
                            prop_assert!(got.is_ok());
                            slot.insert(target);
                        }
                    }
                }
                Op::DeleteDentry { parent_ix, name } => {
                    let Some(parent) = pick(&inodes, *parent_ix) else { continue };
                    let nm = format!("d{name}");
                    let got = p.delete_dentry(parent, &nm);
                    match dentries.remove(&(parent, nm)) {
                        Some(target) => {
                            prop_assert_eq!(got.unwrap().inode, target);
                        }
                        None => prop_assert!(got.is_err()),
                    }
                }
                Op::Link(ix) => {
                    let Some(ino) = pick(&inodes, *ix) else { continue };
                    if let Some(n) = nlink.get_mut(&ino) {
                        let got = p.inode_link(ino).unwrap();
                        *n += 1;
                        prop_assert_eq!(got.nlink, *n);
                    }
                }
                Op::Unlink(ix) => {
                    let Some(ino) = pick(&inodes, *ix) else { continue };
                    if let Some(n) = nlink.get_mut(&ino) {
                        let got = p.inode_unlink(ino, 2).unwrap();
                        *n = n.saturating_sub(1);
                        prop_assert_eq!(got.nlink, *n);
                    }
                }
                Op::Evict(ix) => {
                    let Some(ino) = pick(&inodes, *ix) else { continue };
                    if nlink.remove(&ino).is_some() {
                        prop_assert!(p.evict_inode(ino).is_ok());
                    } else {
                        prop_assert!(p.evict_inode(ino).is_err(), "double evict");
                    }
                }
                Op::Snapshot => {
                    let bytes = p.snapshot_bytes();
                    let q = MetaPartition::from_snapshot(PartitionId(1), &bytes).unwrap();
                    prop_assert_eq!(
                        q.snapshot_bytes(),
                        bytes,
                        "snapshot restore is byte-identical"
                    );
                    prop_assert_eq!(q.item_count(), p.item_count());
                }
            }
            // Global invariants after every op.
            prop_assert_eq!(
                p.item_count(),
                (nlink.len() + dentries.len()) as u64,
                "item count tracks model"
            );
        }

        // Final audit: every model inode and dentry is observable.
        for (ino, n) in &nlink {
            let got = p.get_inode(*ino).unwrap();
            prop_assert_eq!(got.nlink, *n);
        }
        for ((parent, name), target) in &dentries {
            let d = p.get_dentry(*parent, name).unwrap();
            prop_assert_eq!(d.inode, *target);
        }
    }

    /// Replaying a command log on a fresh partition yields an identical
    /// snapshot — the determinism Raft relies on.
    #[test]
    fn command_replay_is_deterministic(
        seeds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60)
    ) {
        let log = build_log(&seeds);
        let mut p1 = partition();
        let mut p2 = partition();
        for cmd in &log {
            let r1 = cmd.apply(&mut p1);
            let r2 = cmd.apply(&mut p2);
            prop_assert_eq!(r1, r2, "identical results incl. errors");
        }
        prop_assert_eq!(p1.snapshot_bytes(), p2.snapshot_bytes());
    }

    /// Group commit equivalence: shipping a command log through a real
    /// Raft batch frame (propose_batch → commit → decode) and applying
    /// the decoded sub-commands is observably identical to applying the
    /// same commands sequentially — same per-command results (including
    /// errors), same tree, same snapshot bytes.
    #[test]
    fn batched_frame_apply_equals_sequential_apply(
        seeds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60)
    ) {
        use cfs_raft::{decode_batch_frame, RaftConfig, RaftNode};
        use cfs_types::codec::{Decode, Encode};
        use cfs_types::NodeId;

        let log = build_log(&seeds);

        // Drive the frame through a real single-member Raft group.
        let mut node = RaftNode::new(
            NodeId(1),
            cfs_types::RaftGroupId(1),
            vec![NodeId(1)],
            RaftConfig::default(),
            7,
        );
        for _ in 0..RaftConfig::default().election_timeout_max {
            node.tick();
        }
        prop_assert!(node.is_leader());
        let index = node.propose_batch(log.iter().map(|c| c.to_bytes()).collect()).unwrap();
        let ready = node.take_ready();
        let entry = ready
            .committed
            .into_iter()
            .find(|e| e.index == index)
            .expect("frame committed");
        let decoded = decode_batch_frame(&entry.data).expect("is a frame").unwrap();
        prop_assert_eq!(decoded.len(), log.len());

        let mut batched = partition();
        let mut sequential = partition();
        for (bytes, cmd) in decoded.iter().zip(&log) {
            let from_frame = MetaCommand::from_bytes(bytes).unwrap();
            let r_batch = from_frame.apply(&mut batched);
            let r_seq = cmd.apply(&mut sequential);
            prop_assert_eq!(r_batch, r_seq, "per-command result parity");
        }
        prop_assert_eq!(batched.item_count(), sequential.item_count());
        prop_assert_eq!(
            batched.snapshot_bytes(),
            sequential.snapshot_bytes(),
            "frame roundtrip preserves the whole tree"
        );
    }

    /// Crash-replay equivalence (§2.1.3): apply a prefix of the log, take
    /// a snapshot ("crash"), restore a new replica from it, then apply the
    /// suffix — the restored replica must behave and end up byte-identical
    /// to a replica that lived through the whole log.
    #[test]
    fn crash_replay_from_snapshot_matches_live(
        seeds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60),
        cut_sel in any::<u16>(),
    ) {
        let log = build_log(&seeds);
        let cut = cut_sel as usize % (log.len() + 1);

        let mut live = partition();
        for cmd in &log {
            let _ = cmd.apply(&mut live);
        }

        let mut pre = partition();
        for cmd in &log[..cut] {
            let _ = cmd.apply(&mut pre);
        }
        let image = pre.snapshot_bytes();
        let mut restored = MetaPartition::from_snapshot(PartitionId(1), &image).unwrap();
        for cmd in &log[cut..] {
            // Suffix commands must produce the same results (including
            // errors) on the survivor and on the restored replica.
            let r_pre = cmd.apply(&mut pre);
            let r_restored = cmd.apply(&mut restored);
            prop_assert_eq!(r_pre, r_restored, "suffix result parity after restore");
        }
        prop_assert_eq!(
            restored.snapshot_bytes(),
            live.snapshot_bytes(),
            "prefix + snapshot + suffix equals the uninterrupted history"
        );
    }

    /// Split equivalence (Algorithm 1): a command log interleaved with
    /// online splits at arbitrary points and arbitrary `Δ` headroom is
    /// observably identical to the same log on one unsplit partition —
    /// per-command results (including errors) match, the union of the
    /// halves is the unsplit tree, every inode and dentry is owned by
    /// exactly one partition (the invariant the chaos fsck checks at
    /// cluster scale), and no split ever copies an item between halves.
    #[test]
    fn split_interleaving_matches_unsplit(
        seeds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..80),
        cut_plan in proptest::collection::vec((any::<u16>(), 0u64..5), 1..4),
    ) {
        let log = build_log(&seeds);
        // Normalise the fuzzed cut plan to (op index, Δ), sorted so the
        // splits fire in schedule order. Δ = 0 freezes the predecessor
        // with no headroom — the next create spills straight over.
        let mut cuts: Vec<(usize, u64)> = cut_plan
            .iter()
            .map(|&(pos, d)| (pos as usize % (log.len() + 1), d))
            .collect();
        cuts.sort_unstable();

        let mut mono = partition();
        let mut parts: Vec<MetaPartition> = vec![partition()];

        for (i, cmd) in log.iter().enumerate() {
            for &(_, delta) in cuts.iter().filter(|&&(pos, _)| pos == i) {
                do_split(&mut parts, delta);
            }
            // Clients only hang dentries under a parent inode they hold
            // (§2.6), and every allocated inode id is ≤ maxInodeID ≤ the
            // next cut — which is what keeps a dentry co-located with
            // its parent across splits. Skip fuzzed dentries under
            // never-allocated parents; the node-level fence rejects such
            // routing with RangeMoved in the real system.
            if let MetaCommand::CreateDentry { parent, .. } = cmd {
                if *parent > mono.max_inode() {
                    continue;
                }
            }
            let r_mono = cmd.apply(&mut mono);
            let r_split = route_apply(&mut parts, cmd);
            prop_assert_eq!(r_mono, r_split, "result parity for op {}", i);
        }
        for &(_, delta) in cuts.iter().filter(|&&(pos, _)| pos == log.len()) {
            do_split(&mut parts, delta);
        }
        prop_assert!(parts.len() >= 2, "plan performed at least one split");

        // Exactly-once ownership: every item sits inside its partition's
        // range, and the sorted union reassembles the unsplit tree (any
        // double-owned or lost item breaks the equality, since the
        // unsplit tree holds each exactly once).
        let mut union_inodes = Vec::new();
        let mut union_dentries = Vec::new();
        for p in &parts {
            for ino in p.all_inodes() {
                prop_assert!(
                    p.config().start <= ino.id && ino.id <= p.config().end,
                    "inode {} outside its owner's range", ino.id
                );
                union_inodes.push(ino);
            }
            union_dentries.extend(p.all_dentries());
        }
        union_inodes.sort_by_key(|i| i.id);
        union_dentries.sort_by(|a, b| {
            (a.parent_id, &a.name).cmp(&(b.parent_id, &b.name))
        });
        prop_assert_eq!(union_inodes, mono.all_inodes(), "inode union");
        prop_assert_eq!(union_dentries.clone(), mono.all_dentries(), "dentry union");
        let total: u64 = parts.iter().map(|p| p.item_count()).sum();
        prop_assert_eq!(total, mono.item_count(), "no item copied or lost");

        // Readdir exactly-once: each directory's listing comes entirely
        // from the partition owning the parent and matches the unsplit
        // listing.
        let parents: std::collections::BTreeSet<InodeId> =
            union_dentries.iter().map(|d| d.parent_id).collect();
        for parent in parents {
            let owner = parts
                .iter()
                .find(|p| p.config().start <= parent && parent <= p.config().end)
                .expect("ranges cover the id space");
            prop_assert_eq!(owner.readdir(parent), mono.readdir(parent));
        }
    }
}
