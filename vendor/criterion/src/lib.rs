//! Offline shim of `criterion`. Implements the subset this workspace uses:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{throughput, bench_function, finish}`, and
//! `Bencher::{iter, iter_batched}` with `BatchSize` / `Throughput`.
//!
//! Measurement is a plain wall-clock loop (warm-up then a timed window)
//! printing mean time per iteration and derived throughput. When invoked by
//! `cargo test` (cargo passes `--test` to `harness = false` bench targets)
//! every benchmark body runs exactly once so the tier-1 suite stays fast.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup; the shim times every batch
/// individually so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input (the only variant this workspace uses).
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver (one per process).
pub struct Criterion {
    test_mode: bool,
    measure_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            measure_window: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Honour the arguments cargo passes to `harness = false` targets:
    /// `--test` (from `cargo test`) switches to run-once mode.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Print the closing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark and print its result.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            measure_window: self.criterion.measure_window,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(name, &b);
        self
    }

    /// End the group (no-op beyond ending the borrow).
    pub fn finish(&mut self) {}

    fn report(&self, name: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{name}: no iterations recorded", self.name);
            return;
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.0} elem/s", n as f64 / per_iter)
            }
            None => String::new(),
        };
        println!(
            "{}/{name}: {} iters, {}{rate}",
            self.name,
            b.iters,
            format_time(per_iter),
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s/iter")
    } else if secs >= 1e-3 {
        format!("{:.3} ms/iter", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us/iter", secs * 1e6)
    } else {
        format!("{:.1} ns/iter", secs * 1e9)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    measure_window: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over a warm-up pass and a measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.iters = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let warm_until = Instant::now() + self.measure_window / 10;
        loop {
            std::hint::black_box(routine());
            if Instant::now() >= warm_until {
                break;
            }
        }
        let t0 = Instant::now();
        while t0.elapsed() < self.measure_window || self.iters < 10 {
            std::hint::black_box(routine());
            self.iters += 1;
        }
        self.elapsed = t0.elapsed();
    }

    /// Like [`Bencher::iter`], but `setup` runs outside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Timing per batch: run setup untimed, pass its output in by value.
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            self.iters = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let warm_until = Instant::now() + self.measure_window / 10;
        loop {
            std::hint::black_box(routine(setup()));
            if Instant::now() >= warm_until {
                break;
            }
        }
        let started = Instant::now();
        while self.elapsed < self.measure_window || self.iters < 10 {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if started.elapsed() > self.measure_window * 20 {
                break; // setup dominates; don't stall the whole suite
            }
        }
    }
}

/// Bundle benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg.configure_from_args();
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_batched_counts_iterations() {
        let mut c = Criterion {
            test_mode: false,
            measure_window: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u64; 4],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            measure_window: Duration::from_millis(5),
        };
        let mut calls = 0u32;
        let mut g = c.benchmark_group("shim");
        g.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }
}
