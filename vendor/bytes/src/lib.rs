//! Offline shim of the `bytes` crate: a reference-counted, sliceable,
//! immutable byte buffer. Only the surface this workspace uses is
//! provided; semantics match the real crate (clones and slices share one
//! allocation, no copying).

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable and sliceable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation shared with anything).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Buffer backed by a static slice (the shim copies it once; the real
    /// crate borrows it, but callers cannot observe the difference).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view of this buffer sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice [{begin}, {end}) out of bounds of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"{} bytes\"", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self[..] == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(Arc::strong_count(&b.data), 2);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn equality_and_empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"abc"), Bytes::from(b"abc".to_vec()));
    }
}
