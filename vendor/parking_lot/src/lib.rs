//! Offline shim of `parking_lot`: the same non-poisoning lock API, backed
//! by `std::sync` primitives. A panicked holder does not poison the lock
//! (matching parking_lot semantics): poison errors are swallowed via
//! `into_inner`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// A mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. The inner `Option` is only ever `None`
/// transiently inside `Condvar::wait`, never observable by callers.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// New unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// A reader-writer lock (non-poisoning `read()`/`write()`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// New unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Result of a timed wait: did it time out?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`] (parking_lot-style
/// `wait(&mut guard)` signature).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a holder panicked");
    }
}
