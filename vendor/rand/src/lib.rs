//! Offline shim of `rand` 0.8: the `Rng`/`SeedableRng` traits and
//! `rngs::SmallRng`, deterministic and dependency-free. Only the API
//! surface this workspace uses is provided (`gen_range`, `gen_bool`,
//! `seed_from_u64`).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over [`RngCore`] (auto-implemented).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0,1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random mantissa bits → uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample. Panics on an empty range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny bias
                // is irrelevant for test/bench workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let x = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + x * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**-style).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same = (0..16).all(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000));
        assert!(!same, "different seeds diverge");
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
        // usize::MAX-ish spans don't overflow.
        let v = r.gen_range(0u64..u64::MAX);
        assert!(v < u64::MAX);
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
    }
}
