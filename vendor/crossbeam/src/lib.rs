//! Offline shim of `crossbeam`. No workspace code currently imports any
//! crossbeam item; this crate exists so the declared workspace dependency
//! resolves without network access. `scope` mirrors `crossbeam::scope` on
//! top of `std::thread::scope` for any future use.

/// Scoped threads: run `f` with a [`Scope`] whose spawned threads are joined
/// before `scope` returns (same contract as `crossbeam::scope`).
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Handle for spawning scoped threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread that may borrow from `'env`.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(f)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_spawned_threads() {
        let mut total = 0u32;
        super::scope(|s| {
            let h = s.spawn(|| 21u32);
            total = h.join().unwrap() * 2;
        })
        .unwrap();
        assert_eq!(total, 42);
    }
}
