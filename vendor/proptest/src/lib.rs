//! Offline shim of `proptest`: deterministic random-input property testing
//! with the API subset this workspace uses — the `proptest!` macro,
//! `Strategy` with `prop_map`, `prop_oneof!`, `Just`, `any::<T>()`,
//! `collection::vec`, and range/tuple/regex-string strategies.
//!
//! Differences from the real crate: failing cases are NOT shrunk (the
//! failing input is printed as-is), and string "regex" strategies generate
//! unconstrained strings (every workspace use is `".*"`).

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// `prop_assert!` — plain `assert!` (no shrinking machinery to unwind).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (or unweighted) union of strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// The `proptest!` block: wraps each contained `fn name(input in strategy)`
/// into a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let fn_seed = $crate::test_runner::fnv1a(stringify!($name).as_bytes());
            for case in 0..cfg.cases {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_case(fn_seed, case as u64);
                $crate::__proptest_bind!(__proptest_rng, $($args)*);
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr $(,)?) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)+) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
    ($rng:ident, $name:ident : $ty:ty $(,)?) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)+) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
}
