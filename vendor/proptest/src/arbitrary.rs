//! `any::<T>()` and the `Arbitrary` trait for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// One arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('?')
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
