//! Collection strategies (`collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Number-of-elements specification: an exact count or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with *up to* `size` elements
/// (duplicates collapse, matching the real crate's behaviour).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = std::collections::BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_length_respects_spec() {
        let mut rng = TestRng::for_case(8, 0);
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = vec(any::<bool>(), 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }
}
