//! The `Strategy` trait and the combinators this workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] (for [`BoxedStrategy`]).
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Union over `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

// ---------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

// ---------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------
// String "regex" strategy
// ---------------------------------------------------------------------

/// String literals act as regex strategies in proptest; this shim ignores
/// the pattern (every workspace use is `".*"`) and generates arbitrary
/// strings mixing ASCII and multi-byte code points.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(33);
        let mut s = String::new();
        for _ in 0..len {
            let c = match rng.below(8) {
                0 => char::from_u32(0x00C0 + rng.below(0x1F) as u32).unwrap_or('é'),
                1 => char::from_u32(0x4E00 + rng.below(0x500) as u32).unwrap_or('字'),
                2 => char::from_u32(0x1F300 + rng.below(0x80) as u32).unwrap_or('🌀'),
                _ => (0x20 + rng.below(0x5F) as u8) as char,
            };
            s.push(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_maps_compose() {
        let mut rng = TestRng::for_case(3, 1);
        let s = (0u8..10, 5u64..6).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn union_respects_zero_weight_arms() {
        let mut rng = TestRng::for_case(4, 2);
        let u = Union::new(vec![(0, (0u8..1).boxed()), (5, (10u8..11).boxed())]);
        for _ in 0..50 {
            assert_eq!(u.generate(&mut rng), 10);
        }
    }

    #[test]
    fn string_strategy_generates_valid_utf8() {
        let mut rng = TestRng::for_case(5, 3);
        for _ in 0..50 {
            let s = ".*".generate(&mut rng);
            assert!(s.chars().count() <= 32);
        }
    }
}
