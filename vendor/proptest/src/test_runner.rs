//! Deterministic per-case RNG and run configuration.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a hash, used to derive a per-property seed from its name so every
/// property explores a different deterministic sequence.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The generator handed to strategies (splitmix64: full 64-bit period,
/// deterministic per (property, case)).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one property.
    pub fn for_case(fn_seed: u64, case: u64) -> Self {
        TestRng {
            state: fn_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let mut a = TestRng::for_case(1, 0);
        let mut b = TestRng::for_case(1, 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case(1, 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::for_case(9, 9);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
