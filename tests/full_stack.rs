//! Workspace-level integration tests: the whole system (resource manager,
//! meta/data subsystems, clients) under concurrency and fault injection.

use std::sync::Arc;

use cfs::{CfsError, ClusterBuilder};

#[test]
fn concurrent_clients_from_real_threads() {
    let cluster = Arc::new(ClusterBuilder::new().data_nodes(4).build().unwrap());
    cluster.create_volume("mt", 1, 4).unwrap();

    // Four OS threads, each its own mounted client, disjoint directories.
    let mut handles = Vec::new();
    for t in 0..4 {
        let cluster = Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            let client = cluster.mount("mt").unwrap();
            let root = client.root();
            let dir = client.mkdir(root, &format!("t{t}")).unwrap();
            for i in 0..12 {
                let name = format!("f{i}");
                client.create(dir.id, &name).unwrap();
                let mut fh = client.open(dir.id, &name).unwrap();
                let body = vec![(t * 16 + i) as u8; 10_000];
                client.write(&mut fh, &body).unwrap();
            }
            // Verify our own files.
            for i in 0..12 {
                let mut fh = client.open(dir.id, &format!("f{i}")).unwrap();
                let body = client.read(&mut fh, 20_000).unwrap();
                assert_eq!(body.len(), 10_000);
                assert!(body.iter().all(|&b| b == (t * 16 + i) as u8));
            }
            t
        }));
    }
    for h in handles {
        h.join().expect("thread panicked");
    }

    // Cross-check from a fifth client: every directory is complete.
    let observer = cluster.mount("mt").unwrap();
    let root = observer.root();
    assert_eq!(observer.readdir(root).unwrap().len(), 4);
    for t in 0..4 {
        let dir = observer.lookup(root, &format!("t{t}")).unwrap().inode;
        assert_eq!(observer.readdir(dir).unwrap().len(), 12);
    }
}

#[test]
fn dentries_always_reference_live_inodes_under_failures() {
    // The §2.6 invariant: whatever fails, a dentry must always point at an
    // existing inode (orphan inodes are allowed; dangling dentries are
    // not).
    let cluster = ClusterBuilder::new().meta_nodes(4).build().unwrap();
    cluster.create_volume("inv", 2, 3).unwrap();
    let client = cluster.mount("inv").unwrap();
    let root = client.root();

    // Interleave creates/links/unlinks with meta-node failures.
    let mut created: Vec<String> = Vec::new();
    for round in 0..6 {
        // Kill / revive a rotating meta node between rounds.
        let victim = cluster.meta_nodes()[round % 4].id();
        cluster.faults().set_down(victim, true);
        cluster.settle(1_200); // allow elections

        for i in 0..8 {
            let name = format!("r{round}-f{i}");
            match client.create(root, &name) {
                Ok(_) => created.push(name),
                Err(e) => assert!(
                    e.is_retryable()
                        || matches!(e, CfsError::RetriesExhausted { .. } | CfsError::Exists(_)),
                    "unexpected error class: {e}"
                ),
            }
        }
        if round % 2 == 0 {
            if let Some(name) = created.pop() {
                let _ = client.unlink(root, &name);
            }
        }
        cluster.faults().set_down(victim, false);
        cluster.settle(1_200);
    }
    cluster.faults().heal_all();
    cluster.settle(2_000);

    // The invariant check: stat every listed dentry.
    for d in client.readdir(root).unwrap() {
        let ino = client.stat(d.inode);
        assert!(
            ino.is_ok(),
            "dangling dentry {} -> {} ({:?})",
            d.name,
            d.inode,
            ino.err()
        );
    }
    // Orphans may exist; they are cleanable.
    client.flush_orphans();
}

#[test]
fn volume_refill_when_partitions_fill_up() {
    // Tiny extent limit so data partitions fill fast; the heartbeat's
    // maintenance sweep must refill the volume (§2.3.1).
    let config = cfs::ClusterConfig {
        data_partition_extent_limit: 4,
        partitions_per_allocation: 3,
        ..cfs::ClusterConfig::default()
    };
    let cluster = ClusterBuilder::new()
        .data_nodes(4)
        .config(config)
        .build()
        .unwrap();
    cluster.create_volume("fill", 1, 2).unwrap();
    let client = cluster.mount("fill").unwrap();
    let root = client.root();

    // Write enough large files to exhaust BOTH partitions' extent caps
    // (refill triggers only when the writable fraction drops below the
    // watermark).
    for i in 0..16 {
        let name = format!("big{i}");
        client.create(root, &name).unwrap();
        let mut fh = client.open(root, &name).unwrap();
        // > small threshold so each write allocates a dedicated extent.
        if client.write(&mut fh, &vec![1u8; 200_000]).is_err() {
            break; // partitions exhausted; heartbeat will fix it
        }
    }
    let tasks = cluster.heartbeat().unwrap();
    assert!(tasks > 0, "maintenance allocated fresh partitions");

    client.refresh_partition_table().unwrap();
    client.create(root, "after-refill").unwrap();
    let mut fh = client.open(root, "after-refill").unwrap();
    client.write(&mut fh, &vec![2u8; 200_000]).unwrap();
    let mut check = client.open(root, "after-refill").unwrap();
    assert_eq!(client.read(&mut check, 300_000).unwrap().len(), 200_000);
}

#[test]
fn master_replica_failover_keeps_cluster_manageable() {
    let cluster = ClusterBuilder::new().master_replicas(3).build().unwrap();
    cluster.create_volume("m", 1, 2).unwrap();

    let leader = cluster.master_leader().unwrap();
    cluster.faults().set_down(leader.id(), true);
    cluster.settle(3_000);

    // A new master leader serves volume creation and mounts.
    cluster.create_volume("post-failover", 1, 2).unwrap();
    let client = cluster.mount("post-failover").unwrap();
    client.create(client.root(), "works").unwrap();
    cluster.faults().set_down(leader.id(), false);
}

#[test]
fn sequential_consistency_for_nonoverlapping_writers() {
    // §2.7/§3.3: two clients writing NON-overlapping parts of one file
    // must both be visible; CFS promises nothing for overlapping writes.
    let cluster = ClusterBuilder::new().build().unwrap();
    cluster.create_volume("c", 1, 3).unwrap();
    let a = cluster.mount("c").unwrap();
    let b = cluster.mount("c").unwrap();
    let root = a.root();
    a.create(root, "shared.bin").unwrap();

    // A writes the first half; then B (after re-open, seeing A's size)
    // appends the second half.
    let mut fa = a.open(root, "shared.bin").unwrap();
    a.write(&mut fa, &vec![0xA1u8; 150_000]).unwrap();
    let mut fb = b.open(root, "shared.bin").unwrap();
    assert_eq!(fb.size(), 150_000);
    fb.seek(150_000);
    b.write(&mut fb, &vec![0xB2u8; 150_000]).unwrap();

    let reader = cluster.mount("c").unwrap();
    let mut fr = reader.open(root, "shared.bin").unwrap();
    let body = reader.read(&mut fr, 400_000).unwrap();
    assert_eq!(body.len(), 300_000);
    assert!(body[..150_000].iter().all(|&x| x == 0xA1));
    assert!(body[150_000..].iter().all(|&x| x == 0xB2));
}

#[test]
fn hundred_partition_volume_spreads_load() {
    // A CFS-style many-partition volume: ops spread across partitions and
    // across nodes.
    let cluster = ClusterBuilder::new()
        .meta_nodes(5)
        .data_nodes(5)
        .build()
        .unwrap();
    cluster.create_volume("wide", 4, 12).unwrap();
    let client = cluster.mount("wide").unwrap();
    let root = client.root();
    for i in 0..60 {
        client.create(root, &format!("f{i:02}")).unwrap();
    }
    cluster.settle(300);
    // Every meta node ended up hosting something (replication counts).
    let loads: Vec<u64> = cluster
        .meta_nodes()
        .iter()
        .map(|n| n.total_items())
        .collect();
    assert!(loads.iter().filter(|&&l| l > 0).count() >= 3, "{loads:?}");
    // Listing returns everything exactly once, sorted.
    let names: Vec<String> = client
        .readdir(root)
        .unwrap()
        .into_iter()
        .map(|d| d.name)
        .collect();
    assert_eq!(names.len(), 60);
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
}

#[test]
fn fsck_reclaims_orphans_left_by_a_dead_client() {
    // §2.6: a client that crashes before flushing its orphan list leaves
    // orphan inodes behind; the administrator repairs with fsck.
    let cluster = ClusterBuilder::new().build().unwrap();
    cluster.create_volume("repair", 1, 2).unwrap();
    let doomed = cluster.mount("repair").unwrap();
    let root = doomed.root();

    doomed.create(root, "kept").unwrap();
    // Manufacture orphans: failed creates put speculative inodes on the
    // client's LOCAL orphan list (Fig. 3a failure path)…
    for _ in 0..3 {
        assert!(doomed.create(root, "kept").is_err());
    }
    assert_eq!(doomed.orphan_count(), 3);
    // …and the client dies without evicting them.
    drop(doomed);

    // An admin client audits, then repairs.
    let admin = cluster.mount("repair").unwrap();
    let audit = admin.fsck(false).unwrap();
    assert_eq!(audit.orphans_found, 3, "{audit:?}");
    assert_eq!(audit.dangling_dentries, 0, "S2.6 invariant holds");
    assert_eq!(audit.orphans_reclaimed, 0, "dry run reclaims nothing");

    let repair = admin.fsck(true).unwrap();
    assert_eq!(repair.orphans_reclaimed, 3, "{repair:?}");

    // Clean after repair; the live file is untouched.
    let after = admin.fsck(false).unwrap();
    assert_eq!(after.orphans_found, 0, "{after:?}");
    assert!(admin.lookup(root, "kept").is_ok());
}

#[test]
fn pipelined_append_issues_fewer_waits_than_packets() {
    // §2.7.1 streaming: with a window of 4 packets in flight, a 64 MB
    // sequential append blocks once per window, not once per packet.
    let cluster = ClusterBuilder::new().data_nodes(4).build().unwrap();
    cluster.create_volume("pipe", 1, 4).unwrap();
    let depth4 = cluster
        .mount_with_options(
            "pipe",
            cfs::ClientOptions {
                pipeline_depth: 4,
                meta_sync_every: 8,
                ..cfs::ClientOptions::default()
            },
        )
        .unwrap();
    let root = depth4.root();

    let packet = 128 * 1024usize;
    let total = 64 * 1024 * 1024usize; // 512 packets
    let body: Vec<u8> = (0..total).map(|i| (i / packet) as u8).collect();

    depth4.create(root, "big.bin").unwrap();
    let mut fh = depth4.open(root, "big.bin").unwrap();
    depth4
        .write_bytes(&mut fh, bytes::Bytes::from(body.clone()))
        .unwrap();
    depth4.close(&mut fh).unwrap();

    let s = depth4.data_path_stats();
    assert_eq!(s.packets_sent, (total / packet) as u64);
    assert!(
        s.window_waits < s.packets_sent,
        "pipelining must wait fewer times ({}) than packets sent ({})",
        s.window_waits,
        s.packets_sent
    );
    assert_eq!(s.window_waits, (total / packet / 4) as u64);

    // Depth 1 is the synchronous baseline: one blocking wait per packet.
    let depth1 = cluster
        .mount_with_options(
            "pipe",
            cfs::ClientOptions {
                pipeline_depth: 1,
                ..cfs::ClientOptions::default()
            },
        )
        .unwrap();
    depth1.create(root, "sync.bin").unwrap();
    let mut fs1 = depth1.open(root, "sync.bin").unwrap();
    depth1
        .write_bytes(&mut fs1, bytes::Bytes::from(vec![7u8; 8 * packet]))
        .unwrap();
    let s1 = depth1.data_path_stats();
    assert_eq!(s1.window_waits, s1.packets_sent);

    // Batched meta sync: 16 one-packet write calls, keys synced every 8
    // packets instead of every call.
    depth4.create(root, "batched.bin").unwrap();
    let mut fb = depth4.open(root, "batched.bin").unwrap();
    let syncs_before = depth4.data_path_stats().meta_syncs;
    // First call is 2 packets (> small-file threshold), then singles.
    depth4
        .write_bytes(&mut fb, bytes::Bytes::from(vec![0u8; 2 * packet]))
        .unwrap();
    for i in 2..4 {
        depth4
            .write_bytes(&mut fb, bytes::Bytes::from(vec![i as u8; packet]))
            .unwrap();
    }
    // Cadence not reached: keys accumulate locally, no meta round trip.
    assert_eq!(depth4.data_path_stats().meta_syncs, syncs_before);
    assert!(!fb.pending_meta_keys().is_empty());
    for i in 4..16 {
        depth4
            .write_bytes(&mut fb, bytes::Bytes::from(vec![i as u8; packet]))
            .unwrap();
    }
    assert_eq!(depth4.data_path_stats().meta_syncs - syncs_before, 2);
    depth4.close(&mut fb).unwrap();

    // Read back through a fresh client: only meta-recorded state counts.
    let observer = cluster.mount("pipe").unwrap();
    let fr = observer.open(root, "big.bin").unwrap();
    assert_eq!(fr.size(), total as u64);
    let tail = observer
        .read_at(&fr, (total - 3 * packet) as u64, 3 * packet)
        .unwrap();
    assert_eq!(&tail[..], &body[total - 3 * packet..]);
    let fbr = observer.open(root, "batched.bin").unwrap();
    assert_eq!(fbr.size(), 16 * packet as u64);
}

#[test]
fn midstream_replica_failure_preserves_committed_prefix() {
    // §2.2.5: a replica dies while a pipelined window is in flight. The
    // committed prefix stays where it was written; only the suffix is
    // resent to a different partition; no acked byte is lost and no
    // unrecorded (stale) byte is ever served.
    let cluster = ClusterBuilder::new().data_nodes(9).build().unwrap();
    cluster.create_volume("fail", 1, 6).unwrap();
    let client = cluster
        .mount_with_options(
            "fail",
            cfs::ClientOptions {
                pipeline_depth: 4,
                meta_sync_every: 4,
                ..cfs::ClientOptions::default()
            },
        )
        .unwrap();
    let root = client.root();

    let packet = 128 * 1024usize;
    fn pat(i: usize) -> u8 {
        (i % 251) as u8
    }

    // Establish the file on its first partition (192 KB > the small-file
    // threshold, so this takes the extent path).
    client.create(root, "victim.bin").unwrap();
    let mut fh = client.open(root, "victim.bin").unwrap();
    let prefix_len = packet + packet / 2;
    let prefix: Vec<u8> = (0..prefix_len).map(pat).collect();
    client
        .write_bytes(&mut fh, bytes::Bytes::from(prefix))
        .unwrap();
    let first_partition = fh.extents()[0].partition_id;
    let members = client.data_partition_members(first_partition).unwrap();

    // Kill the chain tail, then stream 8 more packets: the in-flight
    // window fails, and the client moves the suffix to a new partition.
    cluster.faults().set_down(members[2], true);
    let suffix_len = 8 * packet;
    let suffix: Vec<u8> = (prefix_len..prefix_len + suffix_len).map(pat).collect();
    client
        .write_bytes(&mut fh, bytes::Bytes::from(suffix))
        .unwrap();
    client.close(&mut fh).unwrap();

    // The prefix stayed on the original partition; the suffix landed on a
    // different one (§2.2.5: "written to a new partition").
    assert_eq!(fh.extents()[0].partition_id, first_partition);
    let partitions: std::collections::BTreeSet<_> =
        fh.extents().iter().map(|k| k.partition_id).collect();
    assert!(partitions.len() >= 2, "suffix moved: {:?}", fh.extents());

    // Watermark invariant, checked from a fresh client after healing:
    // exactly the acked bytes are served, bit-for-bit.
    cluster.faults().heal_all();
    cluster.settle(2_000);
    let observer = cluster.mount("fail").unwrap();
    let fr = observer.open(root, "victim.bin").unwrap();
    assert_eq!(fr.size(), (prefix_len + suffix_len) as u64);
    let body = observer.read_at(&fr, 0, prefix_len + suffix_len).unwrap();
    assert_eq!(body.len(), prefix_len + suffix_len);
    for (i, &b) in body.iter().enumerate() {
        assert_eq!(b, pat(i), "byte {i} corrupt");
    }
}

#[test]
fn concurrent_readers_with_one_pipelined_writer() {
    // One writer streams appends with a deep window while readers
    // continuously re-open and verify; every observed prefix must be
    // pattern-exact (committed-prefix semantics: readers never see torn
    // or stale bytes). Small extents force multi-extent parallel reads.
    let config = cfs::ClusterConfig {
        packet_size: 64 * 1024,
        small_file_threshold: 64 * 1024,
        extent_size_limit: 256 * 1024,
        ..cfs::ClusterConfig::default()
    };
    let cluster = Arc::new(
        ClusterBuilder::new()
            .data_nodes(5)
            .config(config)
            .build()
            .unwrap(),
    );
    cluster.create_volume("rw", 1, 6).unwrap();
    let writer = cluster
        .mount_with_options(
            "rw",
            cfs::ClientOptions {
                pipeline_depth: 4,
                meta_sync_every: 2,
                ..cfs::ClientOptions::default()
            },
        )
        .unwrap();
    let root = writer.root();

    fn pat(i: usize) -> u8 {
        (i as u64).wrapping_mul(31).wrapping_add(7) as u8
    }

    writer.create(root, "log.bin").unwrap();
    let mut fh = writer.open(root, "log.bin").unwrap();
    let first: Vec<u8> = (0..128 * 1024).map(pat).collect();
    writer
        .write_bytes(&mut fh, bytes::Bytes::from(first))
        .unwrap();

    let mut readers = Vec::new();
    for _ in 0..3 {
        let cluster = Arc::clone(&cluster);
        readers.push(std::thread::spawn(move || {
            let client = cluster.mount("rw").unwrap();
            let root = client.root();
            for _ in 0..15 {
                let f = client.open(root, "log.bin").unwrap();
                let body = client.read_at(&f, 0, f.size() as usize).unwrap();
                assert_eq!(body.len() as u64, f.size());
                for (i, &b) in body.iter().enumerate() {
                    assert_eq!(b, pat(i), "reader saw a non-committed byte at {i}");
                }
            }
        }));
    }

    let chunk = 96 * 1024usize;
    for c in 0..16 {
        let base = 128 * 1024 + c * chunk;
        let data: Vec<u8> = (base..base + chunk).map(pat).collect();
        writer
            .write_bytes(&mut fh, bytes::Bytes::from(data))
            .unwrap();
    }
    writer.close(&mut fh).unwrap();
    for r in readers {
        r.join().expect("reader panicked");
    }

    // Final read spans many small extents and fans out in parallel.
    let observer = cluster.mount("rw").unwrap();
    let f = observer.open(root, "log.bin").unwrap();
    let total = 128 * 1024 + 16 * chunk;
    assert_eq!(f.size(), total as u64);
    assert!(f.extents().len() > 4, "{} extents", f.extents().len());
    let body = observer.read_at(&f, 0, total).unwrap();
    for (i, &b) in body.iter().enumerate() {
        assert_eq!(b, pat(i), "byte {i} corrupt");
    }
    assert!(observer.data_path_stats().parallel_read_fanouts > 0);
}
