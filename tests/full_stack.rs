//! Workspace-level integration tests: the whole system (resource manager,
//! meta/data subsystems, clients) under concurrency and fault injection.

use std::sync::Arc;

use cfs::{CfsError, ClusterBuilder};

#[test]
fn concurrent_clients_from_real_threads() {
    let cluster = Arc::new(ClusterBuilder::new().data_nodes(4).build().unwrap());
    cluster.create_volume("mt", 1, 4).unwrap();

    // Four OS threads, each its own mounted client, disjoint directories.
    let mut handles = Vec::new();
    for t in 0..4 {
        let cluster = Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            let client = cluster.mount("mt").unwrap();
            let root = client.root();
            let dir = client.mkdir(root, &format!("t{t}")).unwrap();
            for i in 0..12 {
                let name = format!("f{i}");
                client.create(dir.id, &name).unwrap();
                let mut fh = client.open(dir.id, &name).unwrap();
                let body = vec![(t * 16 + i) as u8; 10_000];
                client.write(&mut fh, &body).unwrap();
            }
            // Verify our own files.
            for i in 0..12 {
                let mut fh = client.open(dir.id, &format!("f{i}")).unwrap();
                let body = client.read(&mut fh, 20_000).unwrap();
                assert_eq!(body.len(), 10_000);
                assert!(body.iter().all(|&b| b == (t * 16 + i) as u8));
            }
            t
        }));
    }
    for h in handles {
        h.join().expect("thread panicked");
    }

    // Cross-check from a fifth client: every directory is complete.
    let observer = cluster.mount("mt").unwrap();
    let root = observer.root();
    assert_eq!(observer.readdir(root).unwrap().len(), 4);
    for t in 0..4 {
        let dir = observer.lookup(root, &format!("t{t}")).unwrap().inode;
        assert_eq!(observer.readdir(dir).unwrap().len(), 12);
    }
}

#[test]
fn dentries_always_reference_live_inodes_under_failures() {
    // The §2.6 invariant: whatever fails, a dentry must always point at an
    // existing inode (orphan inodes are allowed; dangling dentries are
    // not).
    let cluster = ClusterBuilder::new().meta_nodes(4).build().unwrap();
    cluster.create_volume("inv", 2, 3).unwrap();
    let client = cluster.mount("inv").unwrap();
    let root = client.root();

    // Interleave creates/links/unlinks with meta-node failures.
    let mut created: Vec<String> = Vec::new();
    for round in 0..6 {
        // Kill / revive a rotating meta node between rounds.
        let victim = cluster.meta_nodes()[round % 4].id();
        cluster.faults().set_down(victim, true);
        cluster.settle(1_200); // allow elections

        for i in 0..8 {
            let name = format!("r{round}-f{i}");
            match client.create(root, &name) {
                Ok(_) => created.push(name),
                Err(e) => assert!(
                    e.is_retryable()
                        || matches!(e, CfsError::RetriesExhausted { .. } | CfsError::Exists(_)),
                    "unexpected error class: {e}"
                ),
            }
        }
        if round % 2 == 0 {
            if let Some(name) = created.pop() {
                let _ = client.unlink(root, &name);
            }
        }
        cluster.faults().set_down(victim, false);
        cluster.settle(1_200);
    }
    cluster.faults().heal_all();
    cluster.settle(2_000);

    // The invariant check: stat every listed dentry.
    for d in client.readdir(root).unwrap() {
        let ino = client.stat(d.inode);
        assert!(
            ino.is_ok(),
            "dangling dentry {} -> {} ({:?})",
            d.name,
            d.inode,
            ino.err()
        );
    }
    // Orphans may exist; they are cleanable.
    client.flush_orphans();
}

#[test]
fn volume_refill_when_partitions_fill_up() {
    // Tiny extent limit so data partitions fill fast; the heartbeat's
    // maintenance sweep must refill the volume (§2.3.1).
    let config = cfs::ClusterConfig {
        data_partition_extent_limit: 4,
        partitions_per_allocation: 3,
        ..cfs::ClusterConfig::default()
    };
    let cluster = ClusterBuilder::new()
        .data_nodes(4)
        .config(config)
        .build()
        .unwrap();
    cluster.create_volume("fill", 1, 2).unwrap();
    let client = cluster.mount("fill").unwrap();
    let root = client.root();

    // Write enough large files to exhaust BOTH partitions' extent caps
    // (refill triggers only when the writable fraction drops below the
    // watermark).
    for i in 0..16 {
        let name = format!("big{i}");
        client.create(root, &name).unwrap();
        let mut fh = client.open(root, &name).unwrap();
        // > small threshold so each write allocates a dedicated extent.
        if client.write(&mut fh, &vec![1u8; 200_000]).is_err() {
            break; // partitions exhausted; heartbeat will fix it
        }
    }
    let tasks = cluster.heartbeat().unwrap();
    assert!(tasks > 0, "maintenance allocated fresh partitions");

    client.refresh_partition_table().unwrap();
    client.create(root, "after-refill").unwrap();
    let mut fh = client.open(root, "after-refill").unwrap();
    client.write(&mut fh, &vec![2u8; 200_000]).unwrap();
    let mut check = client.open(root, "after-refill").unwrap();
    assert_eq!(client.read(&mut check, 300_000).unwrap().len(), 200_000);
}

#[test]
fn master_replica_failover_keeps_cluster_manageable() {
    let cluster = ClusterBuilder::new().master_replicas(3).build().unwrap();
    cluster.create_volume("m", 1, 2).unwrap();

    let leader = cluster.master_leader().unwrap();
    cluster.faults().set_down(leader.id(), true);
    cluster.settle(3_000);

    // A new master leader serves volume creation and mounts.
    cluster.create_volume("post-failover", 1, 2).unwrap();
    let client = cluster.mount("post-failover").unwrap();
    client.create(client.root(), "works").unwrap();
    cluster.faults().set_down(leader.id(), false);
}

#[test]
fn sequential_consistency_for_nonoverlapping_writers() {
    // §2.7/§3.3: two clients writing NON-overlapping parts of one file
    // must both be visible; CFS promises nothing for overlapping writes.
    let cluster = ClusterBuilder::new().build().unwrap();
    cluster.create_volume("c", 1, 3).unwrap();
    let a = cluster.mount("c").unwrap();
    let b = cluster.mount("c").unwrap();
    let root = a.root();
    a.create(root, "shared.bin").unwrap();

    // A writes the first half; then B (after re-open, seeing A's size)
    // appends the second half.
    let mut fa = a.open(root, "shared.bin").unwrap();
    a.write(&mut fa, &vec![0xA1u8; 150_000]).unwrap();
    let mut fb = b.open(root, "shared.bin").unwrap();
    assert_eq!(fb.size(), 150_000);
    fb.seek(150_000);
    b.write(&mut fb, &vec![0xB2u8; 150_000]).unwrap();

    let reader = cluster.mount("c").unwrap();
    let mut fr = reader.open(root, "shared.bin").unwrap();
    let body = reader.read(&mut fr, 400_000).unwrap();
    assert_eq!(body.len(), 300_000);
    assert!(body[..150_000].iter().all(|&x| x == 0xA1));
    assert!(body[150_000..].iter().all(|&x| x == 0xB2));
}

#[test]
fn hundred_partition_volume_spreads_load() {
    // A CFS-style many-partition volume: ops spread across partitions and
    // across nodes.
    let cluster = ClusterBuilder::new()
        .meta_nodes(5)
        .data_nodes(5)
        .build()
        .unwrap();
    cluster.create_volume("wide", 4, 12).unwrap();
    let client = cluster.mount("wide").unwrap();
    let root = client.root();
    for i in 0..60 {
        client.create(root, &format!("f{i:02}")).unwrap();
    }
    cluster.settle(300);
    // Every meta node ended up hosting something (replication counts).
    let loads: Vec<u64> = cluster
        .meta_nodes()
        .iter()
        .map(|n| n.total_items())
        .collect();
    assert!(loads.iter().filter(|&&l| l > 0).count() >= 3, "{loads:?}");
    // Listing returns everything exactly once, sorted.
    let names: Vec<String> = client
        .readdir(root)
        .unwrap()
        .into_iter()
        .map(|d| d.name)
        .collect();
    assert_eq!(names.len(), 60);
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
}

#[test]
fn fsck_reclaims_orphans_left_by_a_dead_client() {
    // §2.6: a client that crashes before flushing its orphan list leaves
    // orphan inodes behind; the administrator repairs with fsck.
    let cluster = ClusterBuilder::new().build().unwrap();
    cluster.create_volume("repair", 1, 2).unwrap();
    let doomed = cluster.mount("repair").unwrap();
    let root = doomed.root();

    doomed.create(root, "kept").unwrap();
    // Manufacture orphans: failed creates put speculative inodes on the
    // client's LOCAL orphan list (Fig. 3a failure path)…
    for _ in 0..3 {
        assert!(doomed.create(root, "kept").is_err());
    }
    assert_eq!(doomed.orphan_count(), 3);
    // …and the client dies without evicting them.
    drop(doomed);

    // An admin client audits, then repairs.
    let admin = cluster.mount("repair").unwrap();
    let audit = admin.fsck(false).unwrap();
    assert_eq!(audit.orphans_found, 3, "{audit:?}");
    assert_eq!(audit.dangling_dentries, 0, "S2.6 invariant holds");
    assert_eq!(audit.orphans_reclaimed, 0, "dry run reclaims nothing");

    let repair = admin.fsck(true).unwrap();
    assert_eq!(repair.orphans_reclaimed, 3, "{repair:?}");

    // Clean after repair; the live file is untouched.
    let after = admin.fsck(false).unwrap();
    assert_eq!(after.orphans_found, 0, "{after:?}");
    assert!(admin.lookup(root, "kept").is_ok());
}
