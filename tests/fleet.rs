//! Multi-tenant fleet fairness on the event-driven fabric.
//!
//! The paper's platform serves thousands of containers per cluster (§1);
//! the event fabric makes that size practical in-process (no thread per
//! RPC). These tests mount a real fleet, drive it through the token-bucket
//! admission model (`cfs::fleet`), and pin three properties:
//!
//!  * scale: every mount is a live client and the fabrics spawn zero
//!    threads regardless of fleet size;
//!  * fairness: with admission buckets, an abusive tenant (8× its fair
//!    demand) cannot push a well-behaved tenant's p99 queue wait beyond
//!    [`FAIRNESS_FACTOR`] × its solo baseline;
//!  * detectability: the same abuse *without* buckets visibly starves the
//!    well-behaved tenant — proving the fairness metric isn't vacuous.
//!
//! The smoke test (512 mounts) runs in tier-1 CI; the 10,000-mount run is
//! the nightly twin, gated on `FLEET_FULL=1`.

use cfs::fleet::{run_fleet, run_fleet_sim, BucketConfig, FleetConfig, TenantSpec};
use cfs::ClusterBuilder;

/// Combined p99 must stay within this factor of the solo baseline.
const FAIRNESS_FACTOR: u64 = 2;
const ROUND_NS: u64 = 1_000_000;

/// Steady tenant: one op per mount per round, no bucket needed — it never
/// exceeds its fair share.
fn steady(mounts: usize) -> TenantSpec {
    TenantSpec {
        name: "steady",
        mounts,
        demand_per_mount: 1,
        bucket: None,
    }
}

/// Abusive tenant: 8× per-mount demand, clipped (or not) by `bucket`.
fn abusive(mounts: usize, bucket: Option<BucketConfig>) -> TenantSpec {
    TenantSpec {
        name: "abusive",
        mounts,
        demand_per_mount: 8,
        bucket,
    }
}

fn cfg(rounds: u64, capacity_per_round: u64) -> FleetConfig {
    FleetConfig {
        rounds,
        capacity_per_round,
        round_ns: ROUND_NS,
    }
}

/// Run the fairness scenario at `scale` total mounts: 3/4 steady, 1/4
/// abusive, service capacity equal to the bucketed aggregate demand.
fn run_fairness_at(scale: usize) {
    let steady_mounts = scale * 3 / 4;
    let abusive_mounts = scale - steady_mounts;
    // The bucket grants the abuser exactly its mount share: the combined
    // admitted load then matches the service capacity.
    let bucket = BucketConfig {
        burst: abusive_mounts as u64,
        refill_per_round: abusive_mounts as u64,
    };
    let capacity = (steady_mounts + abusive_mounts) as u64;
    let rounds = 16;

    // Solo baseline: the steady tenant alone on the same queue (pure
    // model — the waits are model quantities either way).
    let solo = run_fleet_sim(&[steady(steady_mounts)], &cfg(rounds, capacity));
    let solo_p99 = solo.reports[0].wait_p99_ns;
    assert!(solo_p99 > 0, "solo baseline must service ops");

    // Combined, bucketed: the real fleet. Every serviced slot executes a
    // metadata op on a live mount.
    let cluster = ClusterBuilder::new().build().unwrap();
    let specs = [steady(steady_mounts), abusive(abusive_mounts, Some(bucket))];
    let report = run_fleet(&cluster, &specs, &cfg(rounds, capacity)).unwrap();

    assert_eq!(report.mounts, scale, "every mount is a live client");
    assert_eq!(report.op_failures, 0, "healthy cluster: no op may fail");
    assert_eq!(
        report.threads_spawned, 0,
        "the fabrics must not spawn threads at any fleet size"
    );
    let serviced_total: u64 = report.reports.iter().map(|r| r.serviced).sum();
    assert_eq!(
        report.ops_executed, serviced_total,
        "every serviced slot became a real op"
    );

    let steady_report = &report.reports[0];
    let abusive_report = &report.reports[1];
    assert!(
        steady_report.wait_p99_ns <= FAIRNESS_FACTOR * solo_p99,
        "fairness regression: steady p99 {}ns vs solo {}ns (factor {})",
        steady_report.wait_p99_ns,
        solo_p99,
        FAIRNESS_FACTOR
    );
    assert!(
        abusive_report.throttled > 0,
        "the bucket must clip the abuser"
    );
    assert_eq!(steady_report.throttled, 0, "steady tenant is never clipped");

    // The fairness numbers are observable from the registry, not just the
    // report: per-tenant ops, throttles and wait distributions.
    let snap = cluster.metrics_snapshot();
    assert_eq!(
        snap.counter("tenant.ops{tenant=steady}"),
        steady_report.serviced
    );
    assert_eq!(
        snap.counter("tenant.throttled{tenant=abusive}"),
        abusive_report.throttled
    );
    let waits = snap
        .histograms
        .get("tenant.wait_ns{tenant=steady}")
        .expect("steady wait histogram registered");
    assert_eq!(waits.count, steady_report.serviced);

    // Starvation twin (pure model): the same abuse without a bucket must
    // blow the steady tenant's p99 past the fairness bound — the metric
    // detects what the bucket prevents.
    let unbucketed = run_fleet_sim(
        &[steady(steady_mounts), abusive(abusive_mounts, None)],
        &cfg(rounds, capacity),
    );
    assert!(
        unbucketed.reports[0].wait_p99_ns > FAIRNESS_FACTOR * solo_p99,
        "starvation twin: unbucketed abuse must be visible (p99 {}ns vs solo {}ns)",
        unbucketed.reports[0].wait_p99_ns,
        solo_p99
    );
}

/// Tier-1 smoke: 512 live mounts (the CI-sized twin of the 10k nightly).
#[test]
fn fleet_fairness_smoke_512_mounts() {
    run_fairness_at(512);
}

/// Nightly: the full 10,000-mount fleet from the issue's acceptance bar.
/// Gated on `FLEET_FULL=1` — it mounts ten thousand real clients.
#[test]
fn fleet_fairness_full_10k_mounts() {
    if std::env::var("FLEET_FULL").as_deref() == Ok("1") {
        run_fairness_at(10_000);
    }
}
