//! Split regression tests: the client/view/lease edges of Algorithm 1
//! (§2.3.2) that the chaos battery exercises statistically, pinned here
//! as deterministic repros.
//!
//!  * A client holding a pre-split partition view must never be served
//!    wrong data for an inode that lives in the successor: the frozen
//!    half fences the read with `RangeMoved`, the client refreshes its
//!    view and re-routes.
//!  * During dual-serve the predecessor keeps answering lease-protected
//!    reads for its own range, but an out-of-range read is fenced even
//!    on the lease fast path — never answered stale.
//!  * A split whose task delivery is lost entirely (master crash right
//!    after the commit) is finished by heartbeat reconciliation alone.

use cfs::{
    CfsError, ClusterBuilder, InodeId, MetaRead, MetaRequest, MetaResponse, PartitionId,
    PartitionInfo,
};

/// Files created before each split so the predecessor has real state.
const FILES: u64 = 24;

/// Leader-reported infos, one per partition (the replica that leads).
fn leader_infos(cluster: &cfs::Cluster) -> Vec<PartitionInfo> {
    let mut out: Vec<PartitionInfo> = Vec::new();
    for n in cluster.meta_nodes() {
        if let Ok(MetaResponse::Report(infos)) = n.handle(MetaRequest::Report) {
            for info in infos {
                if info.is_leader && !out.iter().any(|i| i.partition_id == info.partition_id) {
                    out.push(info);
                }
            }
        }
    }
    out.sort_by_key(|i| i.partition_id);
    out
}

/// Create files through `client` until one's inode lands beyond `cut`
/// (i.e. in the split successor's range).
fn create_in_successor(client: &cfs::Client, root: InodeId, cut: InodeId) -> (String, InodeId) {
    for i in 0..64 {
        let name = format!("succ{i}");
        let ino = client.create(root, &name).unwrap().id;
        if ino > cut {
            return (name, ino);
        }
    }
    panic!("no create landed in the successor range (cut {cut})");
}

#[test]
fn stale_view_fences_and_refreshes_across_a_split() {
    let cluster = ClusterBuilder::new().build().unwrap();
    let vol = cluster.create_volume("split-view", 1, 4).unwrap();
    let fresh = cluster.mount("split-view").unwrap();
    let stale = cluster.mount("split-view").unwrap();
    let root = fresh.root();
    let mut old_inos = Vec::new();
    for i in 0..FILES {
        old_inos.push(fresh.create(root, &format!("f{i}")).unwrap().id);
    }
    cluster.settle(200);
    // Pin the stale client's generation: its cached table still shows one
    // partition owning the whole id space.
    stale.refresh_partition_table().unwrap();

    assert_eq!(cluster.split_newest_meta_partition(vol, true).unwrap(), 2);
    cluster.settle(200);
    fresh.refresh_partition_table().unwrap();
    let infos = leader_infos(&cluster);
    assert_eq!(infos.len(), 2, "both halves lead: {infos:?}");
    let cut = infos[0].end;
    assert!(cut < InodeId::MAX, "predecessor froze its range");
    let (name, new_ino) = create_in_successor(&fresh, root, cut);

    // The stale client routes the new inode to the frozen half, gets
    // fenced, refreshes, and re-routes — wrong data is never served.
    let before = cluster.metrics_snapshot();
    let got = stale.stat(new_ino).unwrap();
    assert_eq!(got.id, new_ino);
    let window = cluster.metrics_snapshot().diff(&before);
    assert!(
        window.counter("meta.split.fences") >= 1,
        "the frozen half fenced the stale route"
    );
    assert!(
        window.counter("client.view_refresh") >= 1,
        "the fence forced a view refresh"
    );

    // The dentry still lives with its parent (root, frozen half): a
    // stale lookup resolves it there, then stats through the refreshed
    // view.
    assert_eq!(stale.lookup(root, &name).unwrap().inode, new_ino);
    for &ino in &old_inos {
        assert_eq!(stale.stat(ino).unwrap().id, ino);
    }
}

#[test]
fn lease_reads_keep_serving_during_dual_serve_and_never_go_stale() {
    let cluster = ClusterBuilder::new().build().unwrap();
    let vol = cluster.create_volume("split-lease", 1, 4).unwrap();
    let client = cluster.mount("split-lease").unwrap();
    let root = client.root();
    let old_ino = client.create(root, "old").unwrap().id;
    for i in 0..FILES {
        client.create(root, &format!("f{i}")).unwrap();
    }
    cluster.settle(200);

    assert_eq!(cluster.split_newest_meta_partition(vol, true).unwrap(), 2);
    cluster.settle(200);
    client.refresh_partition_table().unwrap();
    let infos = leader_infos(&cluster);
    assert_eq!(infos.len(), 2);
    let pre = &infos[0];
    let (_, new_ino) = create_in_successor(&client, root, pre.end);

    // Dual-serve steady state: reads of the frozen half's own range ride
    // the lease fast path, no quorum barriers.
    let before = cluster.metrics_snapshot();
    const STATS: u64 = 20;
    for _ in 0..STATS {
        client.stat(old_ino).unwrap();
    }
    let window = cluster.metrics_snapshot().diff(&before);
    assert_eq!(window.counter("meta.lease_reads"), STATS);
    assert_eq!(window.counter("meta.quorum_reads"), 0);

    // But the frozen half never answers for the successor's range — not
    // even on the lease path. A direct read at the predecessor's leader
    // replica is fenced with RangeMoved, not NotFound and not a value.
    let leader = cluster
        .meta_nodes()
        .iter()
        .find(|n| match n.handle(MetaRequest::Report) {
            Ok(MetaResponse::Report(infos)) => infos
                .iter()
                .any(|i| i.partition_id == pre.partition_id && i.is_leader),
            _ => false,
        })
        .cloned()
        .expect("predecessor leader replica");
    let err = leader
        .handle(MetaRequest::Read {
            partition: pre.partition_id,
            read: MetaRead::GetInode { inode: new_ino },
        })
        .expect_err("out-of-range read on the frozen half must be fenced");
    assert!(
        matches!(err, CfsError::RangeMoved { partition, inode }
            if partition == pre.partition_id && inode == new_ino),
        "expected RangeMoved, got {err:?}"
    );
}

#[test]
fn heartbeat_reconciliation_finishes_a_split_whose_tasks_were_lost() {
    let cluster = ClusterBuilder::new().build().unwrap();
    let vol = cluster.create_volume("split-reconcile", 1, 4).unwrap();
    let client = cluster.mount("split-reconcile").unwrap();
    let root = client.root();
    let mut old_inos = Vec::new();
    for i in 0..FILES {
        old_inos.push(client.create(root, &format!("f{i}")).unwrap().id);
    }
    cluster.settle(200);

    // The master commits the split but every task is lost — the exact
    // shape of a master crash right after the Raft commit. No meta node
    // heard about the cut or the successor.
    assert_eq!(cluster.split_newest_meta_partition(vol, false).unwrap(), 2);
    let infos = leader_infos(&cluster);
    assert_eq!(infos.len(), 1, "no node hosts the successor yet");
    assert_eq!(infos[0].end, InodeId::MAX, "the cut never reached the node");

    // Heartbeat rounds drive the reconciliation sweep: the cut is
    // re-emitted until the predecessor reports its planned end, and the
    // successor is re-created once it stays unreported long enough.
    for _ in 0..6 {
        cluster.heartbeat().unwrap();
        cluster.settle(200);
    }

    let infos = leader_infos(&cluster);
    assert_eq!(infos.len(), 2, "reconciliation delivered both halves");
    assert!(infos[0].end < InodeId::MAX, "the cut landed");
    assert_eq!(
        infos[1].start,
        InodeId(infos[0].end.raw() + 1),
        "the halves tile the id space"
    );
    let succ_pid: PartitionId = infos[1].partition_id;
    assert_eq!(infos[1].item_count, 0, "the handoff copied nothing");

    // The finished handoff serves: old files read back, new creates land
    // (some in the successor), and fsck sees every item exactly once.
    client.refresh_partition_table().unwrap();
    for &ino in &old_inos {
        assert_eq!(client.stat(ino).unwrap().id, ino);
    }
    let (_, new_ino) = create_in_successor(&client, root, infos[0].end);
    assert!(new_ino > infos[0].end, "a create landed in {succ_pid}");
    let report = client.fsck(false).unwrap();
    assert_eq!(report.duplicate_inodes, 0);
    assert_eq!(report.duplicate_dentries, 0);
    assert_eq!(report.dangling_dentries, 0);

    let snap = cluster.metrics_snapshot();
    assert!(
        snap.counter("master.splits.planned") >= 1,
        "the reconciliation re-emissions are visible in master.splits.planned"
    );
}
