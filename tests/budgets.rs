//! Behavioral-budget regression tests: lock in the data-path pipelining
//! wins (windowed appends, batched meta sync) and the metadata hot-path
//! wins (Raft group commit, lease-protected reads, cached leader routing)
//! with *exact* metric budgets, so a refactor that quietly serializes the
//! window, re-chattifies the meta sync, un-batches the commit path, or
//! silently falls back to quorum reads fails loudly.
//!
//! The budgets come straight from the client design (§2.7.1):
//!  * `n` packet appends at `meta_sync_every = k` issue exactly
//!    `ceil(n/k) + 1` meta sync RPCs (cadence flushes + the close flush,
//!    plus the small-file write's unconditional sync);
//!  * at most `pipeline_depth` append packets are ever in flight;
//!  * each 3-replica chain append costs exactly 3 fabric calls (client →
//!    head, head → middle, middle → tail).
//!
//! The storage-engine recovery budget pins the LSM design down the same
//! way: a whole-cluster restart after a long op history replays only the
//! WAL records appended since each engine's last memtable flush — never
//! the total history — because a flush persists its records into sorted
//! runs and truncates the WAL behind them.

use std::sync::Arc;
use std::time::Duration;

use cfs::{
    ClientOptions, Cluster, ClusterBuilder, ClusterConfig, FileType, MetaCommand, MetaNode,
    MetaRequest, MetaResponse, MetricsSnapshot, PartitionId,
};
use cfs_kvwal::{LsmEngine, LsmOptions, TypedCf};
use cfs_types::testutil::TempDir;

const PACKET: u64 = 4096;
const DEPTH: u32 = 4;
const SYNC_EVERY: u32 = 32;
const PACKETS: u64 = 100;
const REPLICAS: u64 = 3;
const CREATES: u64 = 32;
const MAX_COMMIT_ROUNDS: u64 = 4;
const STATS: u64 = 50;

/// The append-path budget over one measured window of work. Factored out
/// so the forced-failure test below can prove it actually rejects
/// perturbed counters.
fn check_append_budget(window: &MetricsSnapshot, packets: u64, syncs: u64, depth: i64) {
    let sent = window.counter("client.packets_sent");
    assert!(
        sent == packets,
        "append budget regression: {sent} packets sent, expected exactly {packets}"
    );
    let m = window.counter("client.meta_syncs");
    assert!(
        m == syncs,
        "append budget regression: {m} meta syncs, expected exactly {syncs}"
    );
    if let Some(g) = window.gauge("client.inflight_packets") {
        assert!(
            g.high_water <= depth,
            "append budget regression: {} packets in flight, window allows {depth}",
            g.high_water
        );
    }
}

#[test]
fn pipelined_append_meta_sync_budget() {
    let config = ClusterConfig {
        packet_size: PACKET,
        small_file_threshold: PACKET,
        ..ClusterConfig::default()
    };
    let cluster = ClusterBuilder::new().config(config).build().unwrap();
    cluster.create_volume("budget", 1, 4).unwrap();
    let client = cluster
        .mount_with_options(
            "budget",
            ClientOptions {
                pipeline_depth: DEPTH,
                meta_sync_every: SYNC_EVERY,
                ..ClientOptions::default()
            },
        )
        .unwrap();
    // Give every append a real round trip so window packets genuinely
    // overlap (the gauge's high-water mark must still respect the depth).
    cluster.set_data_latency(Duration::from_millis(2));

    let root = client.root();
    client.create(root, "f").unwrap();
    let mut fh = client.open(root, "f").unwrap();

    let before = cluster.metrics_snapshot();

    // One small-file write (aggregated-extent path, syncs immediately),
    // then 100 packets appended as 25 window-sized writes.
    client.write(&mut fh, &vec![1u8; 1024]).unwrap();
    for i in 0..(PACKETS / DEPTH as u64) {
        let body = vec![i as u8; (PACKET * DEPTH as u64) as usize];
        client.write(&mut fh, &body).unwrap();
    }
    client.close(&mut fh).unwrap();

    cluster.set_data_latency(Duration::ZERO);
    let window = cluster.metrics_snapshot().diff(&before);

    // floor(100/32) = 3 cadence flushes + 1 close flush + 1 small-file
    // sync = ceil(100/32) + 1.
    let expected_syncs = PACKETS.div_ceil(SYNC_EVERY as u64) + 1;
    check_append_budget(&window, PACKETS, expected_syncs, DEPTH as i64);

    // The window genuinely pipelined: strictly fewer blocking waits than
    // packets, and more than one packet actually in flight at once.
    assert_eq!(
        window.counter("client.window_waits"),
        PACKETS / DEPTH as u64
    );
    let inflight = window.gauge("client.inflight_packets").unwrap();
    assert!(
        inflight.high_water >= 2,
        "no overlap observed: high water {}",
        inflight.high_water
    );

    // Chain fan-out is visible per route: every packet costs exactly one
    // fabric call per replica (client → head → middle → tail), and the
    // small-file write forwards down its chain as plain appends (the two
    // follower hops).
    assert_eq!(
        window.counter("net.calls{fabric=data,route=data.append}"),
        PACKETS * REPLICAS + (REPLICAS - 1)
    );

    // The registry view and the legacy per-client stats agree.
    let stats = client.data_path_stats();
    assert_eq!(stats.packets_sent, PACKETS);
    assert_eq!(stats.meta_syncs, expected_syncs);
}

#[test]
fn append_budget_check_rejects_perturbed_counters() {
    // Prove the budget assertion actually fails when the counters drift:
    // one extra meta sync (a chattier client) must trip it.
    let registry = cfs::Registry::new();
    registry.counter("client.packets_sent").add(PACKETS);
    registry.counter("client.meta_syncs").add(6); // budget says 5
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_append_budget(&snap, PACKETS, 5, DEPTH as i64))
        .expect_err("perturbed meta-sync count must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("append budget regression"),
        "unexpected panic message: {msg}"
    );

    // And an over-deep window must trip the in-flight bound.
    let registry = cfs::Registry::new();
    registry.counter("client.packets_sent").add(PACKETS);
    registry.counter("client.meta_syncs").add(5);
    registry
        .gauge("client.inflight_packets")
        .add(DEPTH as i64 + 1);
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_append_budget(&snap, PACKETS, 5, DEPTH as i64))
        .expect_err("over-deep window must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("packets in flight"),
        "unexpected panic message: {msg}"
    );
}

/// The event-fabric budget: `rpcs` submitted RPCs must ride the
/// scheduled-delivery queue — zero threads spawned, every token drained
/// (submits == completions), and the in-flight high water bounded by the
/// append window plus the chain's nested forwards (head → middle → tail
/// hops count as in-flight while the window is open).
fn check_fabric_budget(window: &MetricsSnapshot, rpcs: u64, max_inflight: i64) {
    let threads = window.counter("fabric.threads{fabric=data}");
    assert!(
        threads == 0,
        "fabric budget regression: {threads} threads spawned for {rpcs} \
         RPCs, the completion model allows 0"
    );
    let submits = window.counter("fabric.submits{fabric=data}");
    let completions = window.counter("fabric.completions{fabric=data}");
    assert!(
        submits >= rpcs,
        "fabric budget regression: only {submits} submits, expected at least {rpcs}"
    );
    assert!(
        submits == completions,
        "fabric budget regression: {submits} submits but {completions} \
         completions — tokens leaked in the delivery queue"
    );
    if let Some(g) = window.gauge("fabric.inflight{fabric=data}") {
        assert!(
            g.high_water <= max_inflight,
            "fabric budget regression: {} RPCs in flight at once, window + \
             chain allows {max_inflight}",
            g.high_water
        );
        assert!(
            g.value == 0,
            "fabric budget regression: {} RPCs still in flight after drain",
            g.value
        );
    }
}

#[test]
fn fabric_completion_budget() {
    const FABRIC_PACKETS: u64 = 1_024;
    let config = ClusterConfig {
        packet_size: PACKET,
        small_file_threshold: PACKET,
        ..ClusterConfig::default()
    };
    let cluster = ClusterBuilder::new().config(config).build().unwrap();
    cluster.create_volume("budget-fabric", 1, 4).unwrap();
    let client = cluster
        .mount_with_options(
            "budget-fabric",
            ClientOptions {
                pipeline_depth: DEPTH,
                meta_sync_every: SYNC_EVERY,
                ..ClientOptions::default()
            },
        )
        .unwrap();
    cluster.set_data_latency(Duration::from_millis(1));

    let root = client.root();
    client.create(root, "f").unwrap();
    let mut fh = client.open(root, "f").unwrap();

    let before = cluster.metrics_snapshot();
    let virtual_before = cluster.virtual_now_ns();
    for i in 0..(FABRIC_PACKETS / DEPTH as u64) {
        let body = vec![i as u8; (PACKET * DEPTH as u64) as usize];
        client.write(&mut fh, &body).unwrap();
    }
    client.close(&mut fh).unwrap();
    cluster.set_data_latency(Duration::ZERO);
    let window = cluster.metrics_snapshot().diff(&before);

    // >1k packet RPCs rode the queue: depth-deep window, two extra chain
    // hops while the head/middle forward, zero fabric threads.
    check_fabric_budget(
        &window,
        FABRIC_PACKETS,
        DEPTH as i64 + (REPLICAS as i64 - 1),
    );

    // The latency was charged to the virtual clock, not the wall clock:
    // 1024 packets × 1ms minimum (chain hops add more).
    let virtual_elapsed = cluster.virtual_now_ns() - virtual_before;
    assert!(
        virtual_elapsed >= FABRIC_PACKETS * 1_000_000,
        "virtual clock only advanced {virtual_elapsed}ns"
    );
}

#[test]
fn fabric_budget_check_rejects_perturbed_counters() {
    // A single spawned thread must trip the zero-thread pin.
    let registry = cfs::Registry::new();
    registry.counter("fabric.submits{fabric=data}").add(1_024);
    registry
        .counter("fabric.completions{fabric=data}")
        .add(1_024);
    registry.counter("fabric.threads{fabric=data}").add(1);
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_fabric_budget(&snap, 1_024, 6))
        .expect_err("a spawned fabric thread must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("threads spawned"),
        "unexpected panic message: {msg}"
    );

    // A leaked completion token must trip the drain identity.
    let registry = cfs::Registry::new();
    registry.counter("fabric.submits{fabric=data}").add(1_024);
    registry
        .counter("fabric.completions{fabric=data}")
        .add(1_023);
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_fabric_budget(&snap, 1_024, 6))
        .expect_err("a leaked token must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("tokens leaked"),
        "unexpected panic message: {msg}"
    );

    // An over-deep in-flight high water must trip the window bound.
    let registry = cfs::Registry::new();
    registry.counter("fabric.submits{fabric=data}").add(1_024);
    registry
        .counter("fabric.completions{fabric=data}")
        .add(1_024);
    registry.gauge("fabric.inflight{fabric=data}").add(7);
    registry.gauge("fabric.inflight{fabric=data}").sub(7);
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_fabric_budget(&snap, 1_024, 6))
        .expect_err("an over-deep in-flight high water must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("in flight at once"),
        "unexpected panic message: {msg}"
    );
}

/// The meta-commit budget (§2.1.3 hot path): `creates` concurrent writes
/// on one partition must coalesce into at most `max_rounds` Raft rounds.
fn check_meta_commit_budget(window: &MetricsSnapshot, creates: u64, max_rounds: u64) {
    let rounds = window.counter("raft.proposals");
    assert!(
        rounds <= max_rounds,
        "meta commit budget regression: {creates} concurrent creates took \
         {rounds} raft rounds, budget allows {max_rounds}"
    );
    let frames = window.counter("raft.batch.commits");
    assert!(
        (1..=max_rounds).contains(&frames),
        "meta commit budget regression: {frames} group-commit frames for \
         {creates} creates, budget allows 1..={max_rounds}"
    );
}

/// The lease-read budget: a steady-state stat loop on a healthy leader
/// serves every read from the lease fast path — zero quorum barriers.
fn check_lease_read_budget(window: &MetricsSnapshot, reads: u64) {
    let quorum = window.counter("meta.quorum_reads");
    assert!(
        quorum == 0,
        "lease read budget regression: {quorum} quorum reads in a \
         steady-state stat loop, budget allows 0"
    );
    let lease = window.counter("meta.lease_reads");
    assert!(
        lease == reads,
        "lease read budget regression: {lease} lease reads for {reads} \
         stats, expected exactly {reads}"
    );
}

/// The async ack budget (DESIGN §12): a storm of async metadata ops is
/// acked straight from the durable intent journal — ZERO consensus
/// rounds on the ack path. The deferred group commit pays the rounds
/// later, behind the strong barrier.
fn check_meta_async_ack_budget(window: &MetricsSnapshot, acks: u64) {
    let rounds = window.counter("raft.proposals");
    assert!(
        rounds == 0,
        "async ack budget regression: {rounds} raft rounds on the ack path \
         for {acks} journal-acked ops, budget allows 0"
    );
    let a = window.counter("meta.async.acks");
    assert!(
        a == acks,
        "async ack budget regression: {a} journal acks for {acks} async \
         sub-ops, expected exactly {acks}"
    );
    let fb = window.counter("meta.async.sync_fallbacks");
    assert!(
        fb == 0,
        "async ack budget regression: {fb} sync fallbacks in a clean \
         window, budget allows 0"
    );
}

/// The (single) meta partition's current leader replica.
fn meta_partition_leader(cluster: &Cluster) -> (PartitionId, Arc<MetaNode>) {
    for n in cluster.meta_nodes() {
        if let Ok(MetaResponse::Report(infos)) = n.handle(MetaRequest::Report) {
            for info in infos {
                if info.is_leader {
                    return (info.partition_id, n.clone());
                }
            }
        }
    }
    panic!("no meta partition leader");
}

#[test]
fn meta_group_commit_budget() {
    let cluster = ClusterBuilder::new().build().unwrap();
    cluster.create_volume("budget-meta", 1, 4).unwrap();
    cluster.settle(200);
    let (pid, leader) = meta_partition_leader(&cluster);

    let before = cluster.metrics_snapshot();
    // Queue all 32 creates before any raft round runs — the exact shape
    // of a burst of concurrent client writes arriving within one round.
    let tickets: Vec<u64> = (0..CREATES)
        .map(|i| {
            leader
                .enqueue_write(
                    pid,
                    &MetaCommand::CreateInode {
                        file_type: FileType::File,
                        link_target: vec![],
                        now_ns: i,
                    },
                )
                .unwrap()
        })
        .collect();
    cluster.settle(200);
    for t in tickets {
        leader
            .take_write_result(t)
            .expect("ticket resolved")
            .expect("create applied");
    }

    let window = cluster.metrics_snapshot().diff(&before);
    check_meta_commit_budget(&window, CREATES, MAX_COMMIT_ROUNDS);
    assert_eq!(
        window.counter("raft.batch.entries"),
        CREATES * REPLICAS,
        "every sub-command applied on all replicas"
    );
}

#[test]
fn meta_async_ack_budget() {
    let cluster = ClusterBuilder::new().build().unwrap();
    cluster.create_volume("budget-async", 1, 4).unwrap();
    let client = cluster
        .mount_with_options(
            "budget-async",
            ClientOptions {
                async_meta: true,
                ..Default::default()
            },
        )
        .unwrap();
    let root = client.root();
    cluster.settle(200);

    // A 32-create storm: every create is two async sub-ops (inode +
    // dentry), both acked from the intent journal without a single
    // consensus round — the sim clock only advances on pumps, so any
    // raft proposal in this window would be a regression.
    let before = cluster.metrics_snapshot();
    for i in 0..CREATES {
        client.create(root, &format!("af{i}")).unwrap();
    }
    let at_ack = cluster.metrics_snapshot().diff(&before);
    check_meta_async_ack_budget(&at_ack, 2 * CREATES);
    assert_eq!(
        client.async_pending_count(),
        2 * CREATES as usize,
        "every acked sub-op still owes its barrier"
    );

    // The strong barrier pays the deferred rounds: everything group
    // commits, nothing is compensated, and every file is durable.
    client.drain_async_commits().unwrap();
    let after = cluster.metrics_snapshot().diff(&before);
    assert!(
        after.counter("raft.proposals") > 0,
        "the barrier must drive the deferred group commit"
    );
    assert_eq!(after.counter("meta.async.completions"), 2 * CREATES);
    assert_eq!(after.counter("meta.async.compensations"), 0);
    assert_eq!(client.async_pending_count(), 0);
    for i in 0..CREATES {
        client.lookup(root, &format!("af{i}")).unwrap();
    }
}

#[test]
fn lease_read_and_leader_cache_budget() {
    let cluster = ClusterBuilder::new().build().unwrap();
    cluster.create_volume("budget-lease", 1, 4).unwrap();
    let client = cluster.mount("budget-lease").unwrap();
    let root = client.root();
    let ino = client.create(root, "f").unwrap().id;
    // Let the leader catch up (applied == commit) and renew its lease so
    // the loop below measures the steady state, not the warm-up.
    cluster.settle(200);

    let before = cluster.metrics_snapshot();
    for _ in 0..STATS {
        client.stat(ino).unwrap();
    }
    let window = cluster.metrics_snapshot().diff(&before);
    check_lease_read_budget(&window, STATS);

    // Leader caching: every stat is exactly one fabric call, straight to
    // the cached partition leader — no NotLeader redirects, no probing.
    assert_eq!(
        window.counter("net.calls{fabric=meta,route=meta.read}"),
        STATS
    );
    // Client and servers agree on what was served (the chaos harness
    // checks the same identity after every fault schedule).
    assert_eq!(window.counter("client.meta_reads_served"), STATS);
}

#[test]
fn meta_hot_path_budget_checks_reject_perturbed_counters() {
    // An un-batched commit path (one round per create) must trip.
    let registry = cfs::Registry::new();
    registry.counter("raft.proposals").add(CREATES);
    registry.counter("raft.batch.commits").add(CREATES);
    let snap = registry.snapshot();
    let err =
        std::panic::catch_unwind(|| check_meta_commit_budget(&snap, CREATES, MAX_COMMIT_ROUNDS))
            .expect_err("un-batched commit path must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("meta commit budget regression"),
        "unexpected panic message: {msg}"
    );

    // A single quorum fallback in the steady-state loop must trip.
    let registry = cfs::Registry::new();
    registry.counter("meta.lease_reads").add(STATS - 1);
    registry.counter("meta.quorum_reads").add(1);
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_lease_read_budget(&snap, STATS))
        .expect_err("quorum fallback in steady state must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("lease read budget regression"),
        "unexpected panic message: {msg}"
    );

    // A consensus round sneaking onto the async ack path must trip.
    let registry = cfs::Registry::new();
    registry.counter("raft.proposals").add(1);
    registry.counter("meta.async.acks").add(2 * CREATES);
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_meta_async_ack_budget(&snap, 2 * CREATES))
        .expect_err("a raft round on the ack path must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("async ack budget regression"),
        "unexpected panic message: {msg}"
    );

    // A silent sync fallback (op served synchronously, not journaled)
    // must trip too — the storm would no longer measure the async path.
    let registry = cfs::Registry::new();
    registry.counter("meta.async.acks").add(2 * CREATES - 1);
    registry.counter("meta.async.sync_fallbacks").add(1);
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_meta_async_ack_budget(&snap, 2 * CREATES))
        .expect_err("a sync fallback inside the storm must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("async ack budget regression"),
        "unexpected panic message: {msg}"
    );
}

// ----- split cost & raft-set fan-out budgets ------------------------------

/// Files created before the split (the items the predecessor must keep
/// across the cut, plus the root inode).
const SPLIT_FILES: u64 = 48;
/// Post-split settle rounds (of [`SPLIT_SETTLE_TICKS`] sim ticks each)
/// within which reads on the frozen half, the root listing, and the
/// refreshed client view must all be back. Algorithm 1 moves a range
/// boundary, not data, so the handoff is administrative — a handful of
/// rounds, never a rebuild.
const SPLIT_ROUND_BUDGET: u64 = 10;
const SPLIT_SETTLE_TICKS: u64 = 50;
/// Raft-set topology for the fan-out budget: 9 meta nodes in sets of 3,
/// the seed partition split 9 times → 10x partitions.
const RAFTSET_SIZE: usize = 3;
const RAFTSET_META_NODES: usize = 9;
const RAFTSET_SPLITS: u64 = 9;

/// The split-cost budget: the cut committed, the predecessor kept every
/// item, the successor starts empty — §2.3.2 splits the inode-id range,
/// never copies the tree — and post-split unavailability fits the fixed
/// round budget.
fn check_split_cost_budget(
    cuts: u64,
    items_before: u64,
    predecessor_items: u64,
    successor_items: u64,
    unavailable_rounds: u64,
) {
    assert!(
        cuts >= 1,
        "split budget regression: the range cut never committed"
    );
    assert!(
        successor_items == 0,
        "split budget regression: the successor holds {successor_items} \
         items right after the handoff — Algorithm 1 moves the range \
         boundary, never the data"
    );
    assert!(
        predecessor_items == items_before,
        "split budget regression: the predecessor dropped from \
         {items_before} to {predecessor_items} items across the cut"
    );
    assert!(
        unavailable_rounds <= SPLIT_ROUND_BUDGET,
        "split budget regression: {unavailable_rounds} settle rounds of \
         post-split unavailability, budget allows {SPLIT_ROUND_BUDGET}"
    );
}

/// The raft-set budget (§2.5.1): every placement stays inside one set,
/// so each node's raft fan-out is bounded by its set — independent of
/// how many partitions the splits piled on.
fn check_raftset_fanout_budget(
    peers_per_node: &[usize],
    set_size: usize,
    partitions: u64,
    placements: u64,
    fallbacks: u64,
) {
    assert!(
        fallbacks == 0,
        "raft-set budget regression: {fallbacks} placements spilled \
         across raft-set boundaries"
    );
    assert!(
        placements >= partitions,
        "raft-set budget regression: only {placements} set-confined \
         placements recorded for {partitions} partitions"
    );
    let bound = set_size - 1;
    for (i, &p) in peers_per_node.iter().enumerate() {
        assert!(
            p <= bound,
            "raft-set budget regression: meta node #{i} fan-out is {p} \
             distinct raft peers at {partitions} partitions — set-confined \
             placement bounds it at {bound}, independent of partition count"
        );
    }
}

/// Leader-reported item count per meta partition.
fn meta_partition_items(cluster: &Cluster) -> std::collections::BTreeMap<PartitionId, u64> {
    let mut items = std::collections::BTreeMap::new();
    for n in cluster.meta_nodes() {
        if let Ok(MetaResponse::Report(infos)) = n.handle(MetaRequest::Report) {
            for info in infos {
                if info.is_leader {
                    items.insert(info.partition_id, info.item_count);
                }
            }
        }
    }
    items
}

#[test]
fn meta_split_cost_budget() {
    let cluster = ClusterBuilder::new().build().unwrap();
    let vol = cluster.create_volume("budget-split", 1, 4).unwrap();
    let client = cluster.mount("budget-split").unwrap();
    let root = client.root();
    let mut inos = Vec::new();
    for i in 0..SPLIT_FILES {
        inos.push(client.create(root, &format!("f{i}")).unwrap().id);
    }
    cluster.settle(200);

    let items_before: u64 = meta_partition_items(&cluster).values().sum();
    let before = cluster.metrics_snapshot();
    let planned = cluster.split_newest_meta_partition(vol, true).unwrap();
    assert_eq!(planned, 2, "a split plans exactly a cut and a successor");

    // Count settle rounds until service is fully back: a stat on the
    // frozen half, the complete root listing, and a client view refresh.
    let mut rounds = 0;
    loop {
        let ready = client.stat(inos[0]).is_ok()
            && client
                .readdir(root)
                .map(|d| d.len() as u64 == SPLIT_FILES)
                .unwrap_or(false)
            && client.refresh_partition_table().is_ok();
        if ready {
            break;
        }
        rounds += 1;
        assert!(
            rounds <= SPLIT_ROUND_BUDGET * 4,
            "service never came back after the split"
        );
        cluster.settle(SPLIT_SETTLE_TICKS);
    }
    // Let the successor's group elect and report before the item audit.
    cluster.settle(200);

    let window = cluster.metrics_snapshot().diff(&before);
    let items = meta_partition_items(&cluster);
    assert_eq!(items.len(), 2, "both halves report a leader: {items:?}");
    let predecessor_items = *items.values().next().unwrap();
    let successor_items = *items.values().last().unwrap();
    check_split_cost_budget(
        window.counter("meta.split.cuts"),
        items_before,
        predecessor_items,
        successor_items,
        rounds,
    );

    // Writes keep flowing after the handoff.
    client.create(root, "post-split").unwrap();
}

#[test]
fn raftset_fanout_budget_at_10x_partitions() {
    let config = ClusterConfig {
        raft_set_size: RAFTSET_SIZE,
        ..ClusterConfig::default()
    };
    let cluster = ClusterBuilder::new()
        .meta_nodes(RAFTSET_META_NODES)
        .config(config)
        .build()
        .unwrap();
    let vol = cluster.create_volume("budget-raftset", 1, 4).unwrap();
    cluster.settle(200);

    for _ in 0..RAFTSET_SPLITS {
        assert_eq!(cluster.split_newest_meta_partition(vol, true).unwrap(), 2);
        cluster.settle(100);
    }

    let snap = cluster.metrics_snapshot();
    let peers: Vec<usize> = cluster
        .meta_nodes()
        .iter()
        .map(|n| n.raft_distinct_peers())
        .collect();
    check_raftset_fanout_budget(
        &peers,
        RAFTSET_SIZE,
        1 + RAFTSET_SPLITS,
        snap.counter("master.raftset.placements"),
        snap.counter("master.raftset.fallbacks"),
    );
}

#[test]
fn split_and_raftset_budget_checks_reject_perturbed_counts() {
    let msg_of = |payload: Box<dyn std::any::Any + Send>| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    };

    // A split that copied the tree into the successor must trip.
    let err = std::panic::catch_unwind(|| check_split_cost_budget(3, 97, 97, 97, 0))
        .expect_err("a data-copying split must fail the budget");
    assert!(msg_of(err).contains("never the data"));

    // A handoff that blew the availability window must trip.
    let err =
        std::panic::catch_unwind(|| check_split_cost_budget(3, 97, 97, 0, SPLIT_ROUND_BUDGET + 1))
            .expect_err("a slow handoff must fail the budget");
    assert!(msg_of(err).contains("unavailability"));

    // A cut that never committed must trip.
    let err = std::panic::catch_unwind(|| check_split_cost_budget(0, 97, 97, 0, 0))
        .expect_err("a missing cut must fail the budget");
    assert!(msg_of(err).contains("never committed"));

    // One node whose fan-out outgrew its set must trip.
    let err = std::panic::catch_unwind(|| {
        check_raftset_fanout_budget(&[2, 2, 3], RAFTSET_SIZE, 10, 12, 0)
    })
    .expect_err("set-crossing fan-out must fail the budget");
    assert!(msg_of(err).contains("fan-out"));

    // A cross-set placement spill must trip.
    let err =
        std::panic::catch_unwind(|| check_raftset_fanout_budget(&[2; 9], RAFTSET_SIZE, 10, 12, 1))
            .expect_err("a cross-set spill must fail the budget");
    assert!(msg_of(err).contains("spilled"));
}

// ----- storage-engine recovery budget ------------------------------------

/// Client ops in the recovery history. Every chain append lands one WAL
/// record on each of its three replicas plus periodic meta/master
/// records, so the durable history comfortably exceeds the 10k records
/// the test pins below.
const RECOVERY_OPS: u64 = 3_000;
const RECOVERY_WAL_RECORDS: u64 = 10_000;
const RECOVERY_FILES: usize = 8;

/// The recovery budget: `total_appends` WAL records were written over
/// the cluster's whole history, at least one memtable flush happened,
/// and a whole-cluster power-loss restart replayed `replayed` records.
/// A flush persists its records into sorted runs and truncates the WAL
/// behind them, so replay is bounded by ops since the last flush —
/// pinned here as strictly under half the history, which a flushing
/// engine beats by a wide margin and a non-flushing engine (which
/// replays everything, every restart) cannot meet.
fn check_recovery_budget(total_appends: u64, flushes: u64, replayed: u64) {
    assert!(
        flushes >= 1,
        "recovery budget regression: {total_appends} WAL appends without a \
         single memtable flush — restart replay is unbounded"
    );
    assert!(
        replayed <= total_appends / 2,
        "recovery budget regression: restart replayed {replayed} of \
         {total_appends} WAL records ever appended; replay must be bounded \
         by ops since the last flush, not total history"
    );
}

#[test]
fn whole_cluster_recovery_budget() {
    let mut cluster = ClusterBuilder::new().build().unwrap();
    cluster.create_volume("budget-recovery", 1, 4).unwrap();
    let client = cluster.mount("budget-recovery").unwrap();
    let root = client.root();

    let mut handles = Vec::new();
    let mut expected = vec![Vec::new(); RECOVERY_FILES];
    for f in 0..RECOVERY_FILES {
        let nm = format!("recovery-f{f}");
        client.create(root, &nm).unwrap();
        handles.push(client.open(root, &nm).unwrap());
    }
    // A >10k-record acknowledged history: every append is durably acked
    // through its replica chain before the next op runs, landing WAL
    // records on all three data engines plus the meta/master engines the
    // sync cadence touches.
    for op in 0..RECOVERY_OPS {
        let f = (op % RECOVERY_FILES as u64) as usize;
        let body = vec![(op % 251) as u8; 256];
        let h = &mut handles[f];
        h.seek(h.size());
        client.write(h, &body).unwrap();
        expected[f].extend_from_slice(&body);
    }
    for h in &mut handles {
        client.fsync(h).unwrap();
    }

    let before = cluster.metrics_snapshot();
    assert!(
        before.counter("kvwal.wal_appends") >= RECOVERY_WAL_RECORDS,
        "the history must span at least {RECOVERY_WAL_RECORDS} WAL records \
         (got {})",
        before.counter("kvwal.wal_appends")
    );
    cluster.power_loss_restart().unwrap();
    let window = cluster.metrics_snapshot().diff(&before);

    check_recovery_budget(
        before.counter("kvwal.wal_appends"),
        before.counter("kvwal.flushes"),
        window.counter("kvwal.wal_replayed"),
    );
    // Recovery cost is instrumented: every rebooted engine recorded a
    // recover_ns sample inside the restart window.
    assert!(
        window.histograms["kvwal.recover_ns"].count >= 1,
        "no recovery samples recorded across the restart"
    );

    // The restart was real: leaders re-elect and every acknowledged byte
    // reads back from disk state alone.
    cluster.settle(600);
    client.refresh_partition_table().unwrap();
    for (f, h) in handles.iter_mut().enumerate() {
        let mut last = None;
        for _ in 0..6 {
            match client.read_at(h, 0, h.size() as usize) {
                Ok(r) => {
                    last = Some(r);
                    break;
                }
                Err(_) => cluster.settle(400),
            }
        }
        let r = last.expect("post-restart read");
        assert_eq!(r, expected[f], "file {f} content after power loss");
    }
}

/// The forced-failure twin: the same op volume with flushing disabled
/// leaves the whole history in the WAL, so recovery replays every record
/// ever appended and the budget check must reject it.
struct RecoveryCf;
impl TypedCf for RecoveryCf {
    const NAME: &'static str = "budget_recovery";
    type Key = u64;
    type Value = Vec<u8>;
}

#[test]
fn recovery_budget_fires_when_flushing_disabled() {
    let registry = cfs::Registry::new();
    let dir = TempDir::new("budget-noflush").unwrap();
    let opts = LsmOptions {
        flush_enabled: false,
        ..LsmOptions::default()
    };
    {
        let engine =
            LsmEngine::open_with_registry(dir.path(), opts.clone(), Some(&registry)).unwrap();
        for i in 0..RECOVERY_WAL_RECORDS {
            engine.put::<RecoveryCf>(&i, &vec![i as u8; 32]).unwrap();
        }
    }
    let before = registry.snapshot();
    let _engine = LsmEngine::open_with_registry(dir.path(), opts, Some(&registry)).unwrap();
    let window = registry.snapshot().diff(&before);

    let total = before.counter("kvwal.wal_appends");
    let flushes = before.counter("kvwal.flushes");
    let replayed = window.counter("kvwal.wal_replayed");
    assert_eq!(total, RECOVERY_WAL_RECORDS, "one WAL record per put");
    assert_eq!(flushes, 0, "flushing is disabled");
    assert_eq!(replayed, RECOVERY_WAL_RECORDS, "the whole history replays");

    let err = std::panic::catch_unwind(|| check_recovery_budget(total, flushes, replayed))
        .expect_err("a non-flushing engine must fail the recovery budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("recovery budget regression"),
        "unexpected panic message: {msg}"
    );
}

// ---------------------------------------------------------------------
// Small-file fast path budgets (DESIGN §13)
// ---------------------------------------------------------------------

const SMALL_FILES: u64 = 64;
const SMALL_BATCH: u32 = 16;
const READ_BLOCKS: u64 = 16;

/// The coalesced small-write budget over one measured window: N buffered
/// first-writes flush as exactly N/batch `WriteSmallBatch` submissions
/// and zero per-record `WriteSmall` RPCs.
fn check_smallfile_budget(window: &MetricsSnapshot, batches: u64, records: u64) {
    let b = window.counter("client.smallfile.batches");
    assert!(
        b == batches,
        "small-file budget regression: {b} batch flushes, expected exactly {batches}"
    );
    let r = window.counter("client.smallfile.batch_records");
    assert!(
        r == records,
        "small-file budget regression: {r} batched records, expected exactly {records}"
    );
    let per_record = window.counter("net.calls{fabric=data,route=data.write_small}");
    assert!(
        per_record == 0,
        "small-file budget regression: {per_record} per-record WriteSmall RPCs \
         with coalescing on, expected 0"
    );
}

/// The warmed-read budget: a fully cached sequential re-read costs zero
/// fabric read RPCs and serves every block from the cache.
fn check_warmed_read_budget(window: &MetricsSnapshot, hits: u64) {
    let reads = window.counter("net.calls{fabric=data,route=data.read}");
    assert!(
        reads == 0,
        "warmed-read budget regression: {reads} fabric reads from a fully \
         cached file, expected 0"
    );
    let h = window.counter("client.readcache.hit");
    assert!(
        h == hits,
        "warmed-read budget regression: {h} cache hits, expected exactly {hits}"
    );
}

#[test]
fn coalesced_small_write_budget() {
    let config = ClusterConfig {
        packet_size: PACKET,
        small_file_threshold: PACKET,
        ..ClusterConfig::default()
    };
    let cluster = ClusterBuilder::new()
        .config(config.clone())
        .build()
        .unwrap();
    cluster.create_volume("budget", 1, 4).unwrap();
    let client = cluster
        .mount_with_options(
            "budget",
            ClientOptions {
                coalesce_small_writes: true,
                small_batch_max_ops: SMALL_BATCH,
                ..ClientOptions::default()
            },
        )
        .unwrap();

    let root = client.root();
    let mut handles = Vec::new();
    for i in 0..SMALL_FILES {
        let nm = format!("s{i}");
        client.create(root, &nm).unwrap();
        handles.push(client.open(root, &nm).unwrap());
    }

    let before = cluster.metrics_snapshot();
    for (i, h) in handles.iter_mut().enumerate() {
        client.write(h, &vec![i as u8; 512]).unwrap();
    }
    // 64 writes at batch 16 tripped the ops bound exactly 4 times; the
    // buffer is empty, so the closes flush nothing further.
    assert_eq!(client.small_writes_buffered(), 0);
    for h in handles.iter_mut() {
        client.close(h).unwrap();
    }
    let window = cluster.metrics_snapshot().diff(&before);

    let batches = SMALL_FILES / SMALL_BATCH as u64;
    check_smallfile_budget(&window, batches, SMALL_FILES);
    assert_eq!(
        window.counter("net.calls{fabric=data,route=data.write_small_batch}"),
        batches
    );
    assert_eq!(window.counter("client.smallfile.coalesced"), SMALL_FILES);
    // Each batch forwards its aggregated segment down the chain once per
    // follower hop (no rotation at these sizes: one segment per batch).
    assert_eq!(
        window.counter("net.calls{fabric=data,route=data.append}"),
        batches * (REPLICAS - 1)
    );

    // Readback survives adoption: every file holds its own record.
    let mut h = client.open(root, "s7").unwrap();
    assert_eq!(client.read_at(&h, 0, 512).unwrap(), vec![7u8; 512]);
    client.close(&mut h).unwrap();

    // Ablation twin: the identical workload without coalescing costs one
    // chain submission per file — the fast path must be ≥2x cheaper.
    let base_cluster = ClusterBuilder::new().config(config).build().unwrap();
    base_cluster.create_volume("budget", 1, 4).unwrap();
    let base = base_cluster
        .mount_with_options("budget", ClientOptions::default())
        .unwrap();
    let root = base.root();
    let before = base_cluster.metrics_snapshot();
    for i in 0..SMALL_FILES {
        let nm = format!("s{i}");
        base.create(root, &nm).unwrap();
        let mut h = base.open(root, &nm).unwrap();
        base.write(&mut h, &vec![i as u8; 512]).unwrap();
        base.close(&mut h).unwrap();
    }
    let base_window = base_cluster.metrics_snapshot().diff(&before);
    let base_rounds = base_window.counter("net.calls{fabric=data,route=data.write_small}");
    assert_eq!(base_rounds, SMALL_FILES);
    assert!(
        base_rounds >= 2 * batches,
        "coalescing saved less than 2x: {base_rounds} baseline rounds vs \
         {batches} batched"
    );
}

#[test]
fn smallfile_budget_check_rejects_perturbed_counters() {
    // A chattier coalescer (one extra batch flush) must trip the budget.
    let registry = cfs::Registry::new();
    registry.counter("client.smallfile.batches").add(5); // budget says 4
    registry
        .counter("client.smallfile.batch_records")
        .add(SMALL_FILES);
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_smallfile_budget(&snap, 4, SMALL_FILES))
        .expect_err("perturbed batch count must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("small-file budget regression"),
        "unexpected panic message: {msg}"
    );

    // A coalescer that quietly falls back to per-record RPCs must trip it
    // even when the batch counters look right.
    let registry = cfs::Registry::new();
    registry.counter("client.smallfile.batches").add(4);
    registry
        .counter("client.smallfile.batch_records")
        .add(SMALL_FILES);
    registry
        .counter("net.calls{fabric=data,route=data.write_small}")
        .add(1);
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_smallfile_budget(&snap, 4, SMALL_FILES))
        .expect_err("per-record fallback must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("per-record WriteSmall"),
        "unexpected panic message: {msg}"
    );
}

#[test]
fn warmed_sequential_read_budget() {
    let config = ClusterConfig {
        packet_size: PACKET,
        small_file_threshold: PACKET,
        ..ClusterConfig::default()
    };
    let cluster = ClusterBuilder::new().config(config).build().unwrap();
    cluster.create_volume("budget", 1, 4).unwrap();
    let client = cluster
        .mount_with_options("budget", ClientOptions::default())
        .unwrap();

    let root = client.root();
    client.create(root, "f").unwrap();
    let mut fh = client.open(root, "f").unwrap();
    let len = (PACKET * READ_BLOCKS) as usize;
    let body: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
    client.write(&mut fh, &body).unwrap();
    client.close(&mut fh).unwrap();

    // Cold pass fills the cache (every block is a demand miss).
    let fh = client.open(root, "f").unwrap();
    let before = cluster.metrics_snapshot();
    assert_eq!(client.read_at(&fh, 0, len).unwrap(), body);
    let cold = cluster.metrics_snapshot().diff(&before);
    assert_eq!(cold.counter("client.readcache.miss"), READ_BLOCKS);
    assert_eq!(cold.counter("client.readcache.inserted"), READ_BLOCKS);

    // Warmed pass: zero fabric reads, every block a hit.
    let before = cluster.metrics_snapshot();
    assert_eq!(client.read_at(&fh, 0, len).unwrap(), body);
    let warm = cluster.metrics_snapshot().diff(&before);
    check_warmed_read_budget(&warm, READ_BLOCKS);

    // Invalidation: a truncate drops the cached blocks, so the next read
    // goes back to the fabric and conservation still balances.
    let mut fh = client.open(root, "f").unwrap();
    client.truncate_file(&mut fh, PACKET * 4).unwrap();
    let before = cluster.metrics_snapshot();
    assert_eq!(
        client.read_at(&fh, 0, len).unwrap(),
        body[..(PACKET * 4) as usize]
    );
    let after_truncate = cluster.metrics_snapshot().diff(&before);
    assert!(after_truncate.counter("net.calls{fabric=data,route=data.read}") > 0);
    let stats = client.data_path_stats();
    assert_eq!(
        stats.readcache_resident,
        stats.readcache_inserted as i64
            - stats.readcache_evicted as i64
            - stats.readcache_invalidated as i64
    );
    client.close(&mut fh).unwrap();
}

#[test]
fn warmed_read_budget_check_rejects_perturbed_counters() {
    // A cache that quietly leaks reads to the fabric must trip the budget
    // even when the hit counter looks right.
    let registry = cfs::Registry::new();
    registry.counter("client.readcache.hit").add(READ_BLOCKS);
    registry
        .counter("net.calls{fabric=data,route=data.read}")
        .add(1);
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_warmed_read_budget(&snap, READ_BLOCKS))
        .expect_err("leaked fabric read must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("warmed-read budget regression"),
        "unexpected panic message: {msg}"
    );

    // Short-served hits (a shrunken cache) must trip it too.
    let registry = cfs::Registry::new();
    registry
        .counter("client.readcache.hit")
        .add(READ_BLOCKS - 1);
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_warmed_read_budget(&snap, READ_BLOCKS))
        .expect_err("short hit count must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("cache hits"),
        "unexpected panic message: {msg}"
    );
}

#[test]
fn ceph_baseline_config_is_pinned_to_the_paper() {
    // The evaluation matrix (BENCH_eval.json) compares CFS against the
    // ceph-baseline model; a quiet change to any cost parameter would
    // move every "% improv" number without anyone noticing. Pin the
    // whole default config to the paper's §4.1/Table-1 setup so model
    // drift fails CI instead.
    let c = ceph_baseline::CephConfig::default();
    assert_eq!(c.nodes, 10, "Table 1: 10 server machines");
    assert_eq!(c.osds_per_node, 16, "§4.1: 16 OSDs per machine");
    assert_eq!(c.mds_per_node, 1, "§4.1: 1 MDS per machine");
    assert_eq!(c.client_nodes, 8, "Table 1: 8 client machines");
    assert_eq!(c.osd_shards, 6, "§4.3: osd_op_num_shards = 6");
    assert_eq!(c.osd_threads_per_shard, 4, "§4.3: 4 threads per shard");
    assert_eq!(c.replicas, 3, "3-way replication, as CFS");
    assert_eq!(c.object_size, 4 * 1024 * 1024, "4 MB RADOS objects");
    assert_eq!(c.mds_op_ns, 50_000);
    assert_eq!(c.mds_journal_ns, 250_000);
    assert_eq!(c.mds_cache_inodes, 100_000);
    assert_eq!(c.osd_shard_op_ns, 15_000);
    assert_eq!(c.onode_cache_per_node, 20_000);
    assert_eq!(c.client_op_ns, 80_000);
    assert_eq!(c.rebalance_threshold_ops, 300);
    assert_eq!(c.total_mds(), 10);

    // The shared hardware model underneath both systems (Table 1).
    let hw = &c.hw;
    assert_eq!(hw.nic_bandwidth_bps, 1_000_000_000, "1 Gbps NICs");
    assert_eq!(hw.net_oneway_ns, 60_000);
    assert_eq!(hw.net_per_msg_ns, 2_000);
    assert_eq!(hw.cores_per_node, 16, "Table 1: 16 cores");
    assert_eq!(hw.ssds_per_node, 16, "Table 1: 16 SSDs");
    assert_eq!(hw.ssd_read_ns, 80_000);
    assert_eq!(hw.ssd_write_ns, 50_000);
    assert_eq!(hw.ssd_fsync_ns, 250_000);
    assert_eq!(hw.rpc_handle_ns, 12_000);
    assert_eq!(hw.mem_index_op_ns, 1_500);

    // The fast-network variant used by fig8–fig10 differs ONLY in NIC
    // line rate.
    let fast = cfs_sim::HardwareModel::fast_network();
    assert_eq!(fast.nic_bandwidth_bps, 10_000_000_000, "10 Gbps NICs");
    assert_eq!(fast.net_oneway_ns, hw.net_oneway_ns);
    assert_eq!(fast.ssd_read_ns, hw.ssd_read_ns);
    assert_eq!(fast.ssd_fsync_ns, hw.ssd_fsync_ns);
}
