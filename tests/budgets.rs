//! Behavioral-budget regression tests: lock in the data-path pipelining
//! wins (windowed appends, batched meta sync) with *exact* metric
//! budgets, so a refactor that quietly serializes the window or
//! re-chattifies the meta sync fails loudly.
//!
//! The budgets come straight from the client design (§2.7.1):
//!  * `n` packet appends at `meta_sync_every = k` issue exactly
//!    `ceil(n/k) + 1` meta sync RPCs (cadence flushes + the close flush,
//!    plus the small-file write's unconditional sync);
//!  * at most `pipeline_depth` append packets are ever in flight;
//!  * each 3-replica chain append costs exactly 3 fabric calls (client →
//!    head, head → middle, middle → tail).

use std::time::Duration;

use cfs::{ClientOptions, ClusterBuilder, ClusterConfig, MetricsSnapshot};

const PACKET: u64 = 4096;
const DEPTH: u32 = 4;
const SYNC_EVERY: u32 = 32;
const PACKETS: u64 = 100;
const REPLICAS: u64 = 3;

/// The append-path budget over one measured window of work. Factored out
/// so the forced-failure test below can prove it actually rejects
/// perturbed counters.
fn check_append_budget(window: &MetricsSnapshot, packets: u64, syncs: u64, depth: i64) {
    let sent = window.counter("client.packets_sent");
    assert!(
        sent == packets,
        "append budget regression: {sent} packets sent, expected exactly {packets}"
    );
    let m = window.counter("client.meta_syncs");
    assert!(
        m == syncs,
        "append budget regression: {m} meta syncs, expected exactly {syncs}"
    );
    if let Some(g) = window.gauge("client.inflight_packets") {
        assert!(
            g.high_water <= depth,
            "append budget regression: {} packets in flight, window allows {depth}",
            g.high_water
        );
    }
}

#[test]
fn pipelined_append_meta_sync_budget() {
    let config = ClusterConfig {
        packet_size: PACKET,
        small_file_threshold: PACKET,
        ..ClusterConfig::default()
    };
    let cluster = ClusterBuilder::new().config(config).build().unwrap();
    cluster.create_volume("budget", 1, 4).unwrap();
    let client = cluster
        .mount_with_options(
            "budget",
            ClientOptions {
                pipeline_depth: DEPTH,
                meta_sync_every: SYNC_EVERY,
                ..ClientOptions::default()
            },
        )
        .unwrap();
    // Give every append a real round trip so window packets genuinely
    // overlap (the gauge's high-water mark must still respect the depth).
    cluster.set_data_latency(Duration::from_millis(2));

    let root = client.root();
    client.create(root, "f").unwrap();
    let mut fh = client.open(root, "f").unwrap();

    let before = cluster.metrics_snapshot();

    // One small-file write (aggregated-extent path, syncs immediately),
    // then 100 packets appended as 25 window-sized writes.
    client.write(&mut fh, &vec![1u8; 1024]).unwrap();
    for i in 0..(PACKETS / DEPTH as u64) {
        let body = vec![i as u8; (PACKET * DEPTH as u64) as usize];
        client.write(&mut fh, &body).unwrap();
    }
    client.close(&mut fh).unwrap();

    cluster.set_data_latency(Duration::ZERO);
    let window = cluster.metrics_snapshot().diff(&before);

    // floor(100/32) = 3 cadence flushes + 1 close flush + 1 small-file
    // sync = ceil(100/32) + 1.
    let expected_syncs = PACKETS.div_ceil(SYNC_EVERY as u64) + 1;
    check_append_budget(&window, PACKETS, expected_syncs, DEPTH as i64);

    // The window genuinely pipelined: strictly fewer blocking waits than
    // packets, and more than one packet actually in flight at once.
    assert_eq!(
        window.counter("client.window_waits"),
        PACKETS / DEPTH as u64
    );
    let inflight = window.gauge("client.inflight_packets").unwrap();
    assert!(
        inflight.high_water >= 2,
        "no overlap observed: high water {}",
        inflight.high_water
    );

    // Chain fan-out is visible per route: every packet costs exactly one
    // fabric call per replica (client → head → middle → tail), and the
    // small-file write forwards down its chain as plain appends (the two
    // follower hops).
    assert_eq!(
        window.counter("net.calls{fabric=data,route=data.append}"),
        PACKETS * REPLICAS + (REPLICAS - 1)
    );

    // The registry view and the legacy per-client stats agree.
    let stats = client.data_path_stats();
    assert_eq!(stats.packets_sent, PACKETS);
    assert_eq!(stats.meta_syncs, expected_syncs);
}

#[test]
fn append_budget_check_rejects_perturbed_counters() {
    // Prove the budget assertion actually fails when the counters drift:
    // one extra meta sync (a chattier client) must trip it.
    let registry = cfs::Registry::new();
    registry.counter("client.packets_sent").add(PACKETS);
    registry.counter("client.meta_syncs").add(6); // budget says 5
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_append_budget(&snap, PACKETS, 5, DEPTH as i64))
        .expect_err("perturbed meta-sync count must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("append budget regression"),
        "unexpected panic message: {msg}"
    );

    // And an over-deep window must trip the in-flight bound.
    let registry = cfs::Registry::new();
    registry.counter("client.packets_sent").add(PACKETS);
    registry.counter("client.meta_syncs").add(5);
    registry
        .gauge("client.inflight_packets")
        .add(DEPTH as i64 + 1);
    let snap = registry.snapshot();
    let err = std::panic::catch_unwind(|| check_append_budget(&snap, PACKETS, 5, DEPTH as i64))
        .expect_err("over-deep window must fail the budget");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("packets in flight"),
        "unexpected panic message: {msg}"
    );
}
