//! Deterministic full-stack chaos harness.
//!
//! Each test runs a batch of seeded [`FaultPlan`] schedules (generated in
//! `cfs_sim::schedule`) against a real in-process cluster: client workload
//! steps (create/append/read/truncate/unlink/fsync) interleaved with fault
//! events (node crash + recovery from persisted state, directed link cuts,
//! resource-manager leader churn, deferred consensus delivery, dropped
//! RPCs). All randomness flows from the seed, so a failing run prints a
//! one-line repro:
//!
//! ```text
//! CHAOS_SEED=17 cargo test -q --test chaos chaos_replay_env_seed
//! ```
//!
//! At every quiesce point the harness heals all faults, restarts crashed
//! nodes, runs §2.7.1 replica recovery, and checks four invariants:
//!
//! (a) read-your-committed-writes: every file reads back exactly the
//!     acknowledged content, plus at most a prefix of the single in-flight
//!     append whose ack was lost (never bytes beyond it, never torn);
//! (b) meta/data cross-consistency: `fsck` completes with zero dangling
//!     dentries (§2.6 — orphan inodes are legal and reclaimed, a dentry
//!     pointing at a missing inode is not);
//! (c) replica extent alignment: for every extent not subject to
//!     best-effort cleanup, all replicas agree with the primary's committed
//!     watermark in both length and CRC (§2.2.5/§2.7.1);
//! (d) meta snapshot/replay equivalence: every replica of a meta partition
//!     applies the same committed log, their state snapshots are
//!     byte-identical, and a snapshot restores to an identical snapshot
//!     (§2.1.3);
//! (e) fault/metric reconciliation: on every fabric the per-cause drop
//!     split partitions the drop total, the registry's per-route counters
//!     agree with the always-on fabric counters, and every hook-caused
//!     drop is one the seeded schedule's hooks actually fired — losses
//!     are fully explained by injected faults, never by silent routing
//!     bugs;
//! (f) full replication factor: after the self-healing pipeline runs
//!     (heartbeat-driven failure detection plus master-scheduled
//!     re-replication, §2.3.3), every partition lists `replica_count`
//!     live members — even when the schedule permanently killed a data
//!     node that will never restart.
//!
//! Schedules also contain [`ChaosStep::PowerLoss`] events (every plan
//! ends with one): the whole cluster — masters, meta and data nodes —
//! loses power at the same instant and every machine reboots from its
//! storage-engine directory alone, with zero in-memory carryover. The
//! executor checks a seventh invariant at each power cycle:
//!
//! (g) recovered ≡ acknowledged: the durable replica state visible
//!     right before the power cut (hosted partitions, chain membership,
//!     per-extent length / committed watermark / CRC) is byte-identical
//!     after the reboot — no lost committed metadata, no resurrected
//!     punched extents. The paired quiesce that follows then re-proves
//!     invariants (a)–(f) on the rebooted cluster.
//!
//! Schedules also contain [`FaultStep::SplitPartition`] events: the
//! master performs an Algorithm 1 online split of the volume's newest
//! meta partition while workload and faults race it — sometimes with the
//! cut/create tasks never delivered (a master crash mid-handoff), so the
//! heartbeat reconciliation sweep must finish the split on its own. The
//! quiesce sweep then checks an eighth invariant:
//!
//! (h) split handoff exactness: every dentry written before, during or
//!     after a split is visible exactly once (the root listing never
//!     loses or double-lists a name), and fsck finds zero inodes or
//!     dentries owned by more than one partition — the frozen half and
//!     the successor never both serve the same id.
//!
//! Every chaos mount runs with asynchronous metadata commit (DESIGN §12)
//! enabled, so create/link/unlink ack from the intent journal with zero
//! consensus rounds and the strong barrier only runs at fsync/close. The
//! quiesce sweep drains every outstanding intent and checks a ninth
//! invariant:
//!
//! (i) async commit atomicity: every acknowledged-then-crashed metadata
//!     op is, once the cluster quiesces, either fully applied or fully
//!     compensated — never half-visible (a dentry without its inode, a
//!     rolled-back create that still lists, an acked unlink whose name
//!     survives) — and the fsck orphan-intent audit finds zero
//!     journaled-but-uncompensated intents on any meta node.
//!
//! `CHAOS_SEED=<n>` replays any failing seed, including schedules whose
//! fault mix contains a `PermanentKill` (the kill is part of the plan, so
//! the repro regenerates it deterministically).

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cfs::{
    CfsError, Client, ClientOptions, Cluster, ClusterBuilder, ClusterConfig, DeliveryHook,
    DeliverySchedule, DeliveryVerdict, Dentry, DropCauses, ExtentId, FileHandle, InodeId,
    MetaPartition, MetricsSnapshot, NodeId, PartitionId, RaftConfig,
};
use cfs_sim::schedule::{ChaosStep, ClusterShape, FaultPlan, FaultStep, NodeRef, WorkloadStep};

/// Steps per generated schedule (plus the final quiesce).
const PLAN_LEN: usize = 120;

/// What invariant (g) compares across a power cycle: for every live
/// (data node, hosted partition), the chain membership plus each
/// extent's (id, size, committed watermark, CRC).
type DurableDataState =
    BTreeMap<(NodeId, PartitionId), (Vec<NodeId>, Vec<(ExtentId, u64, u64, u32)>)>;

/// Defers every odd-sequence consensus message by a fixed number of hub
/// rounds: messages arrive late and out of order, but all arrive.
struct DeferOdd {
    defer: u64,
}

impl DeliverySchedule for DeferOdd {
    fn defer_rounds(&self, seq: u64, _from: NodeId, _to: NodeId) -> u64 {
        if seq % 2 == 1 {
            self.defer
        } else {
            0
        }
    }
}

/// Drops every `one_in`-th client RPC on the fabric it is installed on,
/// counting each drop it actually fired so invariant (e) can reconcile
/// the fabric's loss counters against the schedule.
struct DropEvery {
    one_in: u64,
    fired: AtomicU64,
}

impl DeliveryHook for DropEvery {
    fn verdict(&self, seq: u64, _from: NodeId, _to: NodeId) -> DeliveryVerdict {
        if seq.is_multiple_of(self.one_in) {
            self.fired.fetch_add(1, Ordering::Relaxed);
            DeliveryVerdict::Drop
        } else {
            DeliveryVerdict::Deliver
        }
    }
}

/// What the model knows about one file slot. `Uncertain*` states mean the
/// client saw an error for an operation that may still have committed; the
/// next quiesce resolves them by consulting the (settled) file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileState {
    Absent,
    Present,
    UncertainCreate,
    UncertainUnlink,
    UncertainTrunc { cut: usize },
}

struct FileSlot {
    state: FileState,
    /// Acknowledged content: every byte here was reported committed.
    base: Vec<u8>,
    /// Body of the single failed append, if any. While non-empty the slot
    /// is frozen (no further mutations) until quiesce resolves how much of
    /// it actually landed.
    pending: Vec<u8>,
    handle: Option<FileHandle>,
    /// The create was acked from the intent journal (DESIGN §12) and no
    /// successful barrier has confirmed it since: the op may legally end
    /// rolled back, so quiesce resolves the slot by lookup before
    /// checking content (invariant (i)).
    unbarriered: bool,
}

impl FileSlot {
    fn new() -> FileSlot {
        FileSlot {
            state: FileState::Absent,
            base: Vec::new(),
            pending: Vec::new(),
            handle: None,
            unbarriered: false,
        }
    }
}

fn fname(file: usize) -> String {
    format!("chaos-f{file}")
}

/// Deterministic, position-tagged content so a mismatch pinpoints both the
/// originating append and the file offset.
fn pattern_bytes(file: usize, start: usize, len: usize, fill: u8) -> Vec<u8> {
    (0..len)
        .map(|i| fill ^ ((start + i) as u8) ^ (file as u8).wrapping_mul(31))
        .collect()
}

/// Invariant (a): `got` must extend the acknowledged `base` by at most a
/// prefix of the in-flight `pending` bytes.
fn check_read(seed: u64, file: usize, when: &str, got: &[u8], base: &[u8], pending: &[u8]) {
    if got.len() < base.len() {
        panic!(
            "invariant (a) violated ({when}, file {file}, seed {seed}): \
             read {} bytes but {} are committed",
            got.len(),
            base.len()
        );
    }
    if &got[..base.len()] != base {
        let i = got
            .iter()
            .zip(base.iter())
            .position(|(a, b)| a != b)
            .unwrap();
        panic!(
            "invariant (a) violated ({when}, file {file}, seed {seed}): \
             committed byte {i} differs (got {}, expected {})",
            got[i], base[i]
        );
    }
    let surplus = &got[base.len()..];
    if surplus.len() > pending.len() || surplus != &pending[..surplus.len()] {
        panic!(
            "invariant (a) violated ({when}, file {file}, seed {seed}): \
             {} bytes beyond the committed watermark don't match the in-flight append",
            surplus.len()
        );
    }
}

/// Invariant (e), per fabric: the registry's per-route/per-cause counters
/// must agree exactly with the fabric's always-on counters, and the cause
/// split must partition the drop total. Factored out so the forced-failure
/// test below can prove it rejects books that don't balance.
fn check_fabric_reconciliation(
    seed: u64,
    snap: &MetricsSnapshot,
    fabric: &str,
    calls: u64,
    drops: u64,
    causes: DropCauses,
    rejections: u64,
) {
    assert_eq!(
        causes.total(),
        drops,
        "invariant (e): {fabric} drop causes don't partition the drop total (seed {seed})"
    );
    let routed = snap.counter_sum(&format!("net.calls{{fabric={fabric}"));
    assert_eq!(
        routed, calls,
        "invariant (e): {fabric} per-route call counters disagree with the \
         fabric total (seed {seed})"
    );
    let cause_counters = snap.counter_sum(&format!("net.drops{{fabric={fabric}"));
    assert_eq!(
        cause_counters, drops,
        "invariant (e): {fabric} per-cause drop counters disagree with the \
         fabric total (seed {seed})"
    );
    assert_eq!(
        snap.counter(&format!("net.rejections{{fabric={fabric}}}")),
        rejections,
        "invariant (e): {fabric} rejection counter disagrees with the fabric \
         total (seed {seed})"
    );
    // Completion-model books: every call was a submit, every submit was
    // completed (a drop completes as a timeout — nothing stays queued),
    // and the in-flight gauge is back to zero once the fabric is quiet.
    let submits = snap.counter(&format!("fabric.submits{{fabric={fabric}}}"));
    assert_eq!(
        submits, calls,
        "invariant (e): {fabric} submit counter disagrees with the fabric \
         call total (seed {seed})"
    );
    let completions = snap.counter(&format!("fabric.completions{{fabric={fabric}}}"));
    assert_eq!(
        completions, submits,
        "invariant (e): {fabric} completions don't drain the submits (seed {seed})"
    );
    if let Some(g) = snap.gauge(&format!("fabric.inflight{{fabric={fabric}}}")) {
        assert_eq!(
            g.value, 0,
            "invariant (e): {fabric} still has RPCs in flight at quiesce (seed {seed})"
        );
    }
}

struct Chaos {
    seed: u64,
    cluster: Cluster,
    client: Client,
    files: Vec<FileSlot>,
    /// Extents subject to best-effort cleanup (truncate/unlink queued a
    /// punch or delete on them); exempt from invariant (c).
    exempt: BTreeSet<(PartitionId, ExtentId)>,
    crashed_meta: Option<usize>,
    crashed_data: Option<usize>,
    /// Permanently killed data node: never restarted — only the master's
    /// repair pipeline brings its partitions back to full replication.
    killed_data: Option<usize>,
    /// Directed link cuts currently installed. Healed individually — never
    /// via `heal_all`, which would also resurrect crashed nodes.
    cuts: Vec<(NodeId, NodeId)>,
    /// Every drop hook the schedule ever installed, kept so invariant (e)
    /// can total the drops the schedule actually fired.
    drop_hooks: Vec<Arc<DropEvery>>,
    /// Algorithm 1 splits the schedule successfully proposed (delivered
    /// or not); when non-zero, quiesce drives heartbeat reconciliation
    /// rounds so half-delivered handoffs finish before invariants run.
    splits: usize,
    /// Test knob: force a failure at the first quiesce so the repro-line
    /// plumbing can be exercised.
    sabotage: bool,
}

impl Chaos {
    fn new(seed: u64, shape: ClusterShape, sabotage: bool) -> Chaos {
        let config = ClusterConfig {
            // Small thresholds exercise packing, multi-packet appends and
            // per-packet meta syncs without large bodies.
            small_file_threshold: 1024,
            packet_size: 1024,
            pipeline_depth: 1,
            meta_sync_every: 1,
            ..Default::default()
        };
        let raft_config = RaftConfig {
            // Aggressive compaction so crash recovery restores from
            // snapshots, not just log replay.
            snapshot_threshold: 24,
            ..Default::default()
        };
        let cluster = ClusterBuilder::new()
            .meta_nodes(shape.meta_nodes)
            .data_nodes(shape.data_nodes)
            .master_replicas(shape.masters)
            .config(config)
            .raft_config(raft_config)
            .seed(seed)
            .build()
            .expect("cluster build");
        cluster.create_volume("chaos", 2, 4).expect("create volume");
        let client = cluster
            .mount_with_options(
                "chaos",
                ClientOptions {
                    seed: seed ^ 0x51DE_CA4E,
                    // Every chaos mount exercises DESIGN §12: mutations
                    // ack from the intent journal, quiesce must prove
                    // invariant (i).
                    async_meta: true,
                    ..Default::default()
                },
            )
            .expect("mount");
        Chaos {
            seed,
            cluster,
            client,
            files: (0..shape.files).map(|_| FileSlot::new()).collect(),
            exempt: BTreeSet::new(),
            crashed_meta: None,
            crashed_data: None,
            killed_data: None,
            cuts: Vec::new(),
            drop_hooks: Vec::new(),
            splits: 0,
            sabotage,
        }
    }

    fn run(&mut self, plan: &FaultPlan) {
        for step in &plan.steps {
            match *step {
                ChaosStep::Op(op) => self.do_op(op),
                ChaosStep::Fault(f) => self.do_fault(f),
                ChaosStep::PowerLoss => self.power_loss(),
                ChaosStep::Quiesce => self.quiesce(),
            }
        }
    }

    fn node_id(&self, r: NodeRef) -> NodeId {
        match r {
            NodeRef::Meta(i) => self.cluster.meta_nodes()[i].id(),
            NodeRef::Data(i) => self.cluster.data_nodes()[i].id(),
        }
    }

    // ----- workload steps ------------------------------------------------

    fn do_op(&mut self, op: WorkloadStep) {
        match op {
            WorkloadStep::Create { file } => {
                if self.files[file].state != FileState::Absent {
                    return;
                }
                let root = self.client.root();
                let nm = fname(file);
                match self.client.create(root, &nm) {
                    Ok(_) => {
                        self.files[file].handle = self.client.open(root, &nm).ok();
                        self.files[file].state = FileState::Present;
                        // An async ack is not yet a commitment: until a
                        // barrier succeeds, the create may legally end
                        // rolled back (invariant (i)).
                        self.files[file].unbarriered = self.client.async_pending_count() > 0;
                    }
                    // The create may or may not have committed a dentry
                    // (the client rolls the inode back on error, §2.6).
                    Err(_) => self.files[file].state = FileState::UncertainCreate,
                }
            }
            WorkloadStep::Append { file, len, fill } => {
                let client = &self.client;
                let slot = &mut self.files[file];
                if slot.state != FileState::Present || !slot.pending.is_empty() {
                    return;
                }
                let Some(h) = slot.handle.as_mut() else {
                    return;
                };
                let data = pattern_bytes(file, slot.base.len(), len, fill);
                h.seek(h.size());
                match client.write(h, &data) {
                    Ok(_) => slot.base.extend_from_slice(&data),
                    // The append failed partway; some prefix may have
                    // committed. Freeze the slot until quiesce.
                    Err(_) => slot.pending = data,
                }
            }
            WorkloadStep::Read { file } => {
                let slot = &self.files[file];
                if slot.state != FileState::Present {
                    return;
                }
                let Some(h) = slot.handle.as_ref() else {
                    return;
                };
                // Errors are tolerated mid-chaos (replicas may be down);
                // a successful read must still obey invariant (a).
                if let Ok(r) = self.client.read_at(h, 0, h.size() as usize) {
                    check_read(
                        self.seed,
                        file,
                        "mid-chaos read",
                        &r,
                        &slot.base,
                        &slot.pending,
                    );
                }
            }
            WorkloadStep::Truncate { file, keep_num } => {
                let client = &self.client;
                let slot = &mut self.files[file];
                if slot.state != FileState::Present || !slot.pending.is_empty() {
                    return;
                }
                let Some(h) = slot.handle.as_mut() else {
                    return;
                };
                let cut = slot.base.len() * keep_num as usize / 16;
                // Truncate queues best-effort punches/deletes for the cut
                // extents; exempt them from strict replica alignment.
                for k in h.extents() {
                    if k.file_offset >= cut as u64 {
                        self.exempt.insert((k.partition_id, k.extent_id));
                    }
                }
                match client.truncate_file(h, cut as u64) {
                    Ok(()) => slot.base.truncate(cut),
                    Err(_) => slot.state = FileState::UncertainTrunc { cut },
                }
            }
            WorkloadStep::Unlink { file } => {
                {
                    let slot = &self.files[file];
                    if slot.state != FileState::Present || !slot.pending.is_empty() {
                        return;
                    }
                    if let Some(h) = slot.handle.as_ref() {
                        for k in h.extents() {
                            self.exempt.insert((k.partition_id, k.extent_id));
                        }
                    }
                }
                let root = self.client.root();
                let nm = fname(file);
                self.files[file].handle = None;
                match self.client.unlink(root, &nm) {
                    Ok(()) => {
                        self.files[file].state = FileState::Absent;
                        self.files[file].base.clear();
                    }
                    Err(_) => self.files[file].state = FileState::UncertainUnlink,
                }
            }
            WorkloadStep::Fsync { file } => {
                let fsynced = {
                    let client = &self.client;
                    let slot = &mut self.files[file];
                    if slot.state != FileState::Present || !slot.pending.is_empty() {
                        return;
                    }
                    match slot.handle.as_mut() {
                        Some(h) => client.fsync(h).is_ok(),
                        None => false,
                    }
                };
                // fsync is the strong barrier: success means *every*
                // outstanding async intent (all files — the drain is
                // client-global) committed durably.
                if fsynced {
                    for slot in &mut self.files {
                        slot.unbarriered = false;
                    }
                }
            }
        }
    }

    // ----- fault steps ---------------------------------------------------

    fn do_fault(&mut self, f: FaultStep) {
        match f {
            FaultStep::CrashMeta { idx } => {
                if self.crashed_meta.is_none() {
                    self.cluster.crash_meta_node(idx).expect("crash meta node");
                    self.crashed_meta = Some(idx);
                }
            }
            FaultStep::RestartMeta { idx } => {
                if self.crashed_meta == Some(idx) {
                    self.cluster.restart_meta_node(idx);
                    self.crashed_meta = None;
                }
            }
            FaultStep::CrashData { idx } => {
                if self.crashed_data.is_none() && self.killed_data != Some(idx) {
                    self.cluster.crash_data_node(idx).expect("crash data node");
                    self.crashed_data = Some(idx);
                }
            }
            FaultStep::RestartData { idx } => {
                if self.crashed_data == Some(idx) && self.killed_data != Some(idx) {
                    self.cluster.restart_data_node(idx);
                    self.crashed_data = None;
                }
            }
            FaultStep::PermanentKill { idx } => {
                // Same mechanics as a crash, but the node is never
                // restarted: quiesce relies on the self-healing pipeline
                // (not this harness) to restore the replication factor.
                if self.killed_data.is_none() && self.crashed_data != Some(idx) {
                    self.cluster.crash_data_node(idx).expect("kill data node");
                    self.killed_data = Some(idx);
                }
            }
            FaultStep::CutLink { from, to } => {
                let (a, b) = (self.node_id(from), self.node_id(to));
                if a != b {
                    self.cluster.faults().set_link_cut(a, b, true);
                    self.cuts.push((a, b));
                }
            }
            FaultStep::HealLinks => self.heal_cuts(),
            FaultStep::MasterChurn => {
                if let Ok(leader) = self.cluster.master_leader() {
                    let id = leader.id();
                    self.cluster.faults().set_down(id, true);
                    self.cluster.settle(900);
                    self.cluster.faults().set_down(id, false);
                }
            }
            FaultStep::DelayConsensus { defer } => {
                self.cluster
                    .hub()
                    .set_delivery_schedule(Some(Arc::new(DeferOdd { defer })));
            }
            FaultStep::DropRpcs { one_in } => {
                let hook = Arc::new(DropEvery {
                    one_in: one_in as u64,
                    fired: AtomicU64::new(0),
                });
                self.drop_hooks.push(hook.clone());
                self.cluster
                    .fabrics()
                    .meta
                    .set_delivery_hook(Some(hook.clone()));
                self.cluster.fabrics().data.set_delivery_hook(Some(hook));
            }
            FaultStep::SplitPartition { deliver } => {
                // Algorithm 1, mid-fault: the proposal fails harmlessly
                // when the master is leaderless; with `deliver: false`
                // the split commits in the master's Raft group but no
                // cut/create task reaches a meta node (a master crash at
                // the worst instant) — the reconciliation sweep at
                // quiesce must finish the handoff on its own.
                if self
                    .cluster
                    .split_newest_meta_partition(self.client.volume(), deliver)
                    .is_ok()
                {
                    self.splits += 1;
                }
            }
        }
    }

    fn heal_cuts(&mut self) {
        let faults = self.cluster.faults();
        for (a, b) in self.cuts.drain(..) {
            faults.set_link_cut(a, b, false);
        }
    }

    // ----- whole-cluster power loss --------------------------------------

    /// Invariant (g): capture the durable replica state of every live
    /// data node, cut power on the entire cluster at once, boot every
    /// machine back from its engine directory, and require the recovered
    /// view to match the pre-cut view exactly. No settling happens
    /// between the two captures, so this isolates the storage engine:
    /// any difference is state that existed only in process memory.
    ///
    /// The schedule generator pairs every `PowerLoss` with an immediately
    /// following `Quiesce`, which re-elects leaders and re-checks
    /// invariants (a)–(f) on the rebooted cluster.
    fn power_loss(&mut self) {
        let acknowledged = self.durable_data_state();
        self.cluster
            .power_loss_restart()
            .unwrap_or_else(|e| panic!("power-loss reboot failed (seed {}): {e:?}", self.seed));
        let recovered = self.durable_data_state();
        assert_eq!(
            recovered, acknowledged,
            "invariant (g): whole-cluster power loss changed the durable \
             data state (seed {})",
            self.seed
        );
    }

    /// Per-live-data-node durable state: hosted partitions with their
    /// chain membership and each extent's (size, committed watermark,
    /// CRC), sorted so two captures compare positionally. Nodes the
    /// schedule has down stay fenced through the reboot and are skipped
    /// on both sides of the comparison.
    fn durable_data_state(&self) -> DurableDataState {
        let faults = self.cluster.faults();
        let mut state = BTreeMap::new();
        for node in self.cluster.data_nodes() {
            if faults.is_down(node.id()) {
                continue;
            }
            for (pid, members) in node.hosted_partitions() {
                let manifest = node
                    .extent_manifest(pid)
                    .expect("node hosts the partition it reported");
                let mut extents: Vec<_> = manifest
                    .iter()
                    .map(|e| (e.extent, e.size, e.committed, e.crc))
                    .collect();
                extents.sort_unstable();
                state.insert((node.id(), pid), (members, extents));
            }
        }
        state
    }

    // ----- quiesce + invariants ------------------------------------------

    fn quiesce(&mut self) {
        // 1. Lift every fault: restart crashed nodes from their persisted
        //    images, heal cuts, uninstall delivery faults.
        if let Some(idx) = self.crashed_meta.take() {
            self.cluster.restart_meta_node(idx);
        }
        if let Some(idx) = self.crashed_data.take() {
            self.cluster.restart_data_node(idx);
        }
        self.heal_cuts();
        self.cluster.hub().set_delivery_schedule(None);
        self.cluster.fabrics().meta.set_delivery_hook(None);
        self.cluster.fabrics().data.set_delivery_hook(None);

        // 2. Let consensus settle: every Raft group re-elects and drains
        //    deferred traffic.
        self.cluster.settle(600);

        // 2a. Split reconciliation — before the leader waits: a split
        //     whose create task reached only a minority of its members
        //     (crashed replica, cut links, dropped RPCs) leaves a
        //     quorumless group that can never elect until the maintenance
        //     sweep re-delivers the cut/create tasks. Heartbeat rounds
        //     drive the re-emission until every replica reports its
        //     planned range.
        if self.splits > 0 {
            for _ in 0..6 {
                self.retry("heartbeat", || self.cluster.heartbeat());
                self.cluster.settle(200);
            }
        }

        self.await_leaders();
        self.retry("refresh partition table", || {
            self.client.refresh_partition_table()
        });

        // 2b. Self-healing (§2.3.3): when a node was permanently killed,
        //     drive heartbeat rounds so the master detects it as dead and
        //     re-replicates its partitions onto the spare. The harness
        //     never recovers those partitions by hand — the repair
        //     pipeline (detect → decommission → join → confirm) must.
        if self.killed_data.is_some() {
            self.run_repair();
        }

        // 3. §2.7.1 recovery: align every data replica to the primary's
        //    committed watermark.
        self.recover_data();

        // 3b. DESIGN §12: drain every outstanding async intent through
        //     the strong barrier, then drive heartbeat orphan sweeps
        //     until no meta node holds a journaled-but-uncompensated
        //     intent — invariant (i).
        self.drain_async_intents();

        // 4. Invariant (a): resolve uncertain operations and verify
        //    read-your-committed-writes on every file.
        self.resolve_files();

        if self.sabotage {
            panic!("sabotage: injected invariant violation");
        }

        // 5. Drain deferred deletions (orphan eviction + extent cleanup) so
        //    fsck audits a stable state.
        self.client.process_deletions();
        self.cluster.process_all_deletes();

        // 6. Invariant (b): meta/data cross-consistency; invariant (f):
        //    every partition back at full replication factor (the audit
        //    counts only members the resource manager reports alive, so a
        //    killed node the repair pipeline failed to replace fails it).
        let report = self.retry("fsck", || self.client.fsck(false));
        assert_eq!(
            report.dangling_dentries, 0,
            "invariant (b): dangling dentries after quiesce (seed {})",
            self.seed
        );
        if self.killed_data.is_some() {
            assert!(
                report.under_replicated.is_empty(),
                "invariant (f): partitions below replication factor after \
                 quiesce (seed {}): {:?}",
                self.seed,
                report.under_replicated
            );
        }

        // 6b. Invariant (h): split handoff exactness — no two partitions
        //     both own an inode or serve a dentry, and the client-visible
        //     namespace matches the model exactly once per name.
        assert_eq!(
            report.duplicate_inodes, 0,
            "invariant (h): inodes owned by two partitions after quiesce (seed {})",
            self.seed
        );
        assert_eq!(
            report.duplicate_dentries, 0,
            "invariant (h): dentries served by two partitions after quiesce (seed {})",
            self.seed
        );
        self.check_split_visibility();

        // 7. Invariant (c): replica extent alignment.
        self.check_replica_alignment();

        // 8. Invariant (d): meta snapshot/replay equivalence.
        self.check_meta_snapshot_replay();

        // 9. Invariant (e): fault/metric reconciliation.
        self.check_net_reconciliation();

        // 10. Invariant (e), metadata hot path: group-commit sub-entries
        //     and leader-served reads reconcile exactly.
        self.check_meta_hot_path_reconciliation();

        // 11. Invariant (e), read cache (DESIGN §13): block conservation —
        //     every block ever inserted is still resident, was evicted, or
        //     was invalidated; nothing is lost or double-counted across
        //     truncates, overwrites, unlinks and view refreshes.
        self.check_readcache_reconciliation();
    }

    /// Invariant (i) machinery: barrier every acked-but-unbarriered
    /// intent (a *rollback* report is a legal outcome here — the crash
    /// beat the group commit — and surfaces as an error the slot
    /// resolution below absorbs), then run heartbeat rounds until the
    /// fsck orphan-intent audit is empty: every compensation journaled
    /// anywhere has been executed and acked by the resource manager's
    /// orphan sweep.
    fn drain_async_intents(&mut self) {
        for _ in 0..6 {
            if self.client.drain_async_commits().is_ok() {
                break;
            }
            self.cluster.settle(400);
        }
        assert_eq!(
            self.client.async_pending_count(),
            0,
            "invariant (i): async intents still queued after the quiesce \
             drain (seed {})",
            self.seed
        );
        for _ in 0..8 {
            let report = self.retry("fsck", || self.client.fsck(false));
            if report.orphan_intents.is_empty() {
                break;
            }
            self.retry("heartbeat", || self.cluster.heartbeat());
            self.cluster.settle(200);
        }
        let report = self.retry("fsck", || self.client.fsck(false));
        assert!(
            report.orphan_intents.is_empty(),
            "invariant (i): journaled-but-uncompensated intents survived \
             quiesce (seed {}): {:?}",
            self.seed,
            report.orphan_intents
        );
    }

    /// Wait until the masters and every meta/data partition have a leader.
    fn await_leaders(&self) {
        for _ in 0..50 {
            if self.cluster.master_leader().is_ok() {
                break;
            }
            self.cluster.settle(200);
        }
        self.cluster
            .master_leader()
            .expect("resource manager failed to elect a leader at quiesce");

        // A permanently killed node stays down through quiesce: its stale
        // partition/leadership views must not drive (or satisfy) the
        // election waits.
        let hub = self.cluster.hub();
        let faults = self.cluster.faults();
        let metas: Vec<_> = self
            .cluster
            .meta_nodes()
            .iter()
            .filter(|m| !faults.is_down(m.id()))
            .collect();
        let mut meta_pids = BTreeSet::new();
        for m in &metas {
            meta_pids.extend(m.partition_ids());
        }
        for pid in meta_pids {
            let ok = hub.pump_until(|| metas.iter().any(|m| m.is_leader_for(pid)), 20_000);
            assert!(
                ok,
                "meta partition {pid} failed to elect a leader at quiesce"
            );
        }

        let datas: Vec<_> = self
            .cluster
            .data_nodes()
            .iter()
            .filter(|d| !faults.is_down(d.id()))
            .collect();
        let mut data_pids = BTreeSet::new();
        for d in &datas {
            for (pid, _) in d.hosted_partitions() {
                data_pids.insert(pid);
            }
        }
        for pid in data_pids {
            let ok = hub.pump_until(|| datas.iter().any(|d| d.is_raft_leader_for(pid)), 20_000);
            assert!(
                ok,
                "data partition {pid} failed to elect a leader at quiesce"
            );
        }
    }

    /// Heartbeat-driven failure detection + repair: tick the master until
    /// the killed node crosses the dead threshold, then keep ticking (the
    /// scheduler is budgeted per sweep) until the replication audit is
    /// clean again.
    fn run_repair(&mut self) {
        for _ in 0..self.cluster.config().dead_after_missed {
            self.retry("heartbeat", || self.cluster.heartbeat());
            self.cluster.settle(200);
        }
        for _ in 0..8 {
            let clean = self
                .retry("replication audit", || self.client.fsck(false))
                .under_replicated
                .is_empty();
            if clean {
                return;
            }
            self.retry("heartbeat", || self.cluster.heartbeat());
            self.cluster.settle(300);
        }
        panic!(
            "self-healing failed to restore the replication factor (seed {})",
            self.seed
        );
    }

    fn recover_data(&self) {
        let mut reports = self.cluster.recover_data_partitions();
        for _ in 0..4 {
            if !reports.is_empty() && reports.iter().all(|r| r.ok()) {
                break;
            }
            self.cluster.settle(400);
            reports = self.cluster.recover_data_partitions();
        }
        assert!(
            !reports.is_empty(),
            "no data partition was reachable for recovery at quiesce (seed {})",
            self.seed
        );
        for r in &reports {
            assert!(
                r.ok(),
                "data partition {} recovery failed at quiesce (seed {}): \
                 head {:?}, outcome {:?}",
                r.partition,
                self.seed,
                r.head,
                r.result
            );
        }
    }

    /// Retry a client operation across transient post-heal hiccups; at a
    /// quiesce point it must eventually succeed.
    fn retry<T>(&self, what: &str, mut f: impl FnMut() -> cfs::Result<T>) -> T {
        let mut last: Option<CfsError> = None;
        for _ in 0..6 {
            match f() {
                Ok(v) => return v,
                Err(e) => {
                    last = Some(e);
                    self.cluster.settle(400);
                }
            }
        }
        panic!("{what} failed after quiesce (seed {}): {last:?}", self.seed)
    }

    /// Lookup that only distinguishes present/absent; transient errors are
    /// retried, anything persistent is a harness failure.
    fn lookup_settled(&self, parent: InodeId, name: &str) -> Option<Dentry> {
        let mut last: Option<CfsError> = None;
        for _ in 0..6 {
            match self.client.lookup(parent, name) {
                Ok(d) => return Some(d),
                Err(CfsError::NotFound(_)) => return None,
                Err(e) => {
                    last = Some(e);
                    self.cluster.settle(400);
                }
            }
        }
        panic!(
            "lookup {name} kept failing after quiesce (seed {}): {last:?}",
            self.seed
        )
    }

    fn resolve_files(&mut self) {
        let root = self.client.root();
        for idx in 0..self.files.len() {
            let nm = fname(idx);
            let mut slot = std::mem::replace(&mut self.files[idx], FileSlot::new());
            match slot.state {
                FileState::Absent => {}
                FileState::UncertainCreate => {
                    // The cluster has settled, so the questionable dentry
                    // either committed or never will.
                    if self.lookup_settled(root, &nm).is_some() {
                        // The dentry committed even though the client saw an
                        // error and rolled the inode back (nlink 0,
                        // orphan-listed). Remove it — a dentry the model
                        // considers absent must not linger, or fsck would
                        // flag it dangling once the orphan is reclaimed.
                        let _ = self.client.unlink(root, &nm);
                        if self.lookup_settled(root, &nm).is_some() {
                            self.retry("cleanup unlink", || self.client.unlink(root, &nm));
                            assert!(
                                self.lookup_settled(root, &nm).is_none(),
                                "uncertain create left an unremovable dentry (seed {})",
                                self.seed
                            );
                        }
                    }
                    slot = FileSlot::new();
                }
                FileState::UncertainUnlink => {
                    match self.lookup_settled(root, &nm) {
                        // The dentry delete committed; the inode is an
                        // orphan awaiting reclamation (checked via fsck).
                        None => slot = FileSlot::new(),
                        // The unlink never took effect: the file must be
                        // fully intact.
                        Some(_) => {
                            let mut h = self.retry("reopen", || self.client.open(root, &nm));
                            self.retry("fsync", || self.client.fsync(&mut h));
                            let r = self
                                .retry("read", || self.client.read_at(&h, 0, h.size() as usize));
                            check_read(self.seed, idx, "unlink rollback", &r, &slot.base, &[]);
                            slot.base = r;
                            slot.handle = Some(h);
                            slot.state = FileState::Present;
                        }
                    }
                }
                FileState::UncertainTrunc { cut } => {
                    // A truncate is atomic in the meta partition: after
                    // settling, the file has either the old or the new size.
                    let mut h = self.retry("reopen", || self.client.open(root, &nm));
                    self.retry("fsync", || self.client.fsync(&mut h));
                    let r = self.retry("read", || self.client.read_at(&h, 0, h.size() as usize));
                    if r != slot.base && r != slot.base[..cut.min(slot.base.len())] {
                        panic!(
                            "invariant (a) violated (truncate, file {idx}, seed {}): \
                             {} bytes read, expected the pre-image ({}) or the \
                             truncated image ({cut})",
                            self.seed,
                            r.len(),
                            slot.base.len()
                        );
                    }
                    slot.base = r;
                    slot.handle = Some(h);
                    slot.state = FileState::Present;
                }
                FileState::Present
                    if slot.unbarriered && self.lookup_settled(root, &nm).is_none() =>
                {
                    // Invariant (i), the "fully compensated" arm: the
                    // async-acked create was rolled back by the crash and
                    // its compensation removed every trace — the name is
                    // gone, so the model forgets the file entirely.
                    slot = FileSlot::new();
                }
                FileState::Present => {
                    // Keep the existing handle when we have one: fsync must
                    // flush any extent keys a failed append left pending.
                    let mut h = match slot.handle.take() {
                        Some(h) => h,
                        None => self.retry("reopen", || self.client.open(root, &nm)),
                    };
                    self.retry("fsync", || self.client.fsync(&mut h));
                    let r = self.retry("read", || self.client.read_at(&h, 0, h.size() as usize));
                    check_read(self.seed, idx, "quiesce", &r, &slot.base, &slot.pending);
                    slot.base = r;
                    slot.pending.clear();
                    slot.handle = Some(h);
                    slot.unbarriered = false;
                }
            }
            self.files[idx] = slot;
        }
    }

    /// Invariant (h), client view: the root listing shows every name
    /// exactly once, and each file slot's visibility matches the model —
    /// a dentry written before, during or after a split is never lost
    /// (0 sightings) and never double-served by both halves of a cut
    /// (2 sightings). Runs after `resolve_files`, so every slot is
    /// settled to `Present` or `Absent`.
    fn check_split_visibility(&self) {
        let listing = self.retry("readdir", || self.client.readdir(self.client.root()));
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for d in &listing {
            *counts.entry(d.name.clone()).or_default() += 1;
        }
        for (name, n) in &counts {
            assert_eq!(
                *n, 1,
                "invariant (h): dentry {name} listed {n} times (seed {})",
                self.seed
            );
        }
        for (idx, slot) in self.files.iter().enumerate() {
            let visible = counts.get(&fname(idx)).copied().unwrap_or(0);
            let expected = usize::from(slot.state == FileState::Present);
            assert_eq!(
                visible, expected,
                "invariant (h): file {idx} in state {:?} visible {visible} \
                 time(s) after quiesce (seed {})",
                slot.state, self.seed
            );
        }
    }

    fn check_replica_alignment(&self) {
        // Only live nodes count: a permanently killed node still holds a
        // stale image of its old partitions, but repair replaced it — the
        // live members (invariant (f) proved there are enough) must agree.
        let faults = self.cluster.faults();
        let datas: Vec<_> = self
            .cluster
            .data_nodes()
            .iter()
            .filter(|d| !faults.is_down(d.id()))
            .collect();
        let by_id = |id: NodeId| {
            datas
                .iter()
                .find(|d| d.id() == id)
                .unwrap_or_else(|| panic!("no live data node {id}"))
        };
        let mut seen = BTreeSet::new();
        for node in &datas {
            for (pid, members) in node.hosted_partitions() {
                if !seen.insert(pid) {
                    continue;
                }
                let leader = by_id(members[0]);
                let manifest = leader
                    .extent_manifest(pid)
                    .expect("primary hosts the partition");
                for info in &manifest {
                    if self.exempt.contains(&(pid, info.extent)) {
                        continue;
                    }
                    assert_eq!(
                        info.size, info.committed,
                        "invariant (c): {pid}/{:?} primary length vs committed watermark \
                         after recovery (seed {})",
                        info.extent, self.seed
                    );
                    for &peer in &members[1..] {
                        let pm = by_id(peer)
                            .extent_manifest(pid)
                            .expect("replica hosts the partition");
                        let Some(pe) = pm.iter().find(|e| e.extent == info.extent) else {
                            // Replicas materialize an extent on its first
                            // replicated append, so an extent nothing was
                            // committed to may exist on the primary alone.
                            assert_eq!(
                                info.committed, 0,
                                "invariant (c): {pid}/{:?} has committed bytes but is \
                                 missing on replica {peer} (seed {})",
                                info.extent, self.seed
                            );
                            continue;
                        };
                        assert_eq!(
                            pe.size, info.committed,
                            "invariant (c): {pid}/{:?} length on replica {peer} (seed {})",
                            info.extent, self.seed
                        );
                        assert_eq!(
                            pe.crc, info.crc,
                            "invariant (c): {pid}/{:?} crc on replica {peer} (seed {})",
                            info.extent, self.seed
                        );
                    }
                }
            }
        }
    }

    fn check_net_reconciliation(&self) {
        let snap = self.cluster.metrics_snapshot();
        let fabrics = self.cluster.fabrics();
        check_fabric_reconciliation(
            self.seed,
            &snap,
            "master",
            fabrics.master.call_count(),
            fabrics.master.drop_count(),
            fabrics.master.drop_causes(),
            fabrics.master.rejection_count(),
        );
        check_fabric_reconciliation(
            self.seed,
            &snap,
            "meta",
            fabrics.meta.call_count(),
            fabrics.meta.drop_count(),
            fabrics.meta.drop_causes(),
            fabrics.meta.rejection_count(),
        );
        check_fabric_reconciliation(
            self.seed,
            &snap,
            "data",
            fabrics.data.call_count(),
            fabrics.data.drop_count(),
            fabrics.data.drop_causes(),
            fabrics.data.rejection_count(),
        );

        // Hook-caused drops must be exactly the ones the schedule's hooks
        // fired: the hooks only ever ride the meta and data fabrics, and
        // each firing is one fabric-level drop (nothing else produces
        // cause=hook, and no firing goes unaccounted).
        let fired: u64 = self
            .drop_hooks
            .iter()
            .map(|h| h.fired.load(Ordering::Relaxed))
            .sum();
        let hook_drops = fabrics.meta.drop_causes().hook + fabrics.data.drop_causes().hook;
        assert_eq!(
            fired, hook_drops,
            "invariant (e): schedule hooks fired {fired} drops but the fabrics \
             counted {hook_drops} (seed {})",
            self.seed
        );
        assert_eq!(
            fabrics.master.drop_causes().hook,
            0,
            "invariant (e): master fabric counted hook drops but no hook was \
             ever installed there (seed {})",
            self.seed
        );
    }

    fn check_meta_hot_path_reconciliation(&self) {
        let snap = self.cluster.metrics_snapshot();
        // Group commit: with batching on (the default), every command a
        // replica applies is a decoded sub-entry of a batch frame, and
        // both counters tick at the same apply site — so they match
        // exactly, across crashes, snapshot catch-ups and retries.
        assert_eq!(
            snap.counter("raft.batch.entries"),
            snap.counter_sum("meta.applies{"),
            "invariant (e): raft batch sub-entries vs meta applies (seed {})",
            self.seed
        );
        // Read path: fabric drops happen strictly before the handler runs,
        // and every pre-classification server error is retryable — so a
        // meta read counts client-side as served iff exactly one leader
        // classified it as a lease read or a quorum read.
        let served_by_leaders =
            snap.counter("meta.lease_reads") + snap.counter("meta.quorum_reads");
        let served_to_client = self.client.data_path_stats().meta_reads_served;
        assert_eq!(
            served_by_leaders, served_to_client,
            "invariant (e): leader-classified meta reads (lease + quorum) vs \
             reads the client saw served (seed {})",
            self.seed
        );
    }

    /// Invariant (e), DESIGN §13: the readahead block cache obeys block
    /// conservation — `resident == inserted - evicted - invalidated` —
    /// both per client and in the shared registry (the workload's only
    /// mount, so the two views must agree exactly), and every probe was
    /// classified as exactly one hit or miss.
    fn check_readcache_reconciliation(&self) {
        let stats = self.client.data_path_stats();
        let balance = stats.readcache_inserted as i64
            - stats.readcache_evicted as i64
            - stats.readcache_invalidated as i64;
        assert_eq!(
            stats.readcache_resident, balance,
            "invariant (e): read-cache resident blocks vs inserted - evicted \
             - invalidated (seed {}): {:?}",
            self.seed, stats
        );
        assert!(
            stats.readcache_resident >= 0,
            "invariant (e): negative read-cache residency (seed {}): {:?}",
            self.seed,
            stats
        );
        // Full blocks are the only insertable unit, so residency can never
        // exceed the configured capacity.
        assert!(
            stats.readcache_resident <= 256,
            "invariant (e): read-cache residency above capacity (seed {}): {:?}",
            self.seed,
            stats
        );
        // The shared registry mirrors the single mount's pairs exactly.
        let snap = self.cluster.metrics_snapshot();
        assert_eq!(
            snap.counter("client.readcache.inserted") as i64
                - snap.counter("client.readcache.evicted") as i64
                - snap.counter("client.readcache.invalidated") as i64,
            snap.gauge("client.readcache.resident")
                .map(|g| g.value)
                .unwrap_or(0),
            "invariant (e): registry-level read-cache conservation (seed {})",
            self.seed
        );
        assert_eq!(
            snap.counter("client.readcache.hit"),
            stats.readcache_hits,
            "invariant (e): registry vs client read-cache hits (seed {})",
            self.seed
        );
        assert_eq!(
            snap.counter("client.readcache.miss"),
            stats.readcache_misses,
            "invariant (e): registry vs client read-cache misses (seed {})",
            self.seed
        );
    }

    fn check_meta_snapshot_replay(&self) {
        let metas = self.cluster.meta_nodes();
        let hub = self.cluster.hub();
        let mut pids = BTreeSet::new();
        for m in metas {
            pids.extend(m.partition_ids());
        }
        for pid in pids {
            let hosts: Vec<_> = metas
                .iter()
                .filter(|m| m.partition_ids().contains(&pid))
                .collect();
            // Every replica must finish applying the same committed log.
            let ok = hub.pump_until(
                || {
                    let idx: Vec<_> = hosts.iter().filter_map(|m| m.raft_indices(pid)).collect();
                    idx.len() == hosts.len()
                        && idx.iter().all(|&(commit, applied, _)| commit == applied)
                        && idx.windows(2).all(|w| w[0].0 == w[1].0)
                },
                30_000,
            );
            assert!(
                ok,
                "invariant (d): {pid} replicas failed to converge (seed {}): \
                 (commit, applied, last) per host = {:?}, leaders = {:?}",
                self.seed,
                hosts
                    .iter()
                    .map(|m| m.raft_indices(pid))
                    .collect::<Vec<_>>(),
                hosts
                    .iter()
                    .map(|m| (m.is_leader_for(pid), m.raft_term(pid)))
                    .collect::<Vec<_>>()
            );
            let snaps: Vec<Vec<u8>> = hosts
                .iter()
                .map(|m| {
                    m.partition_snapshot(pid)
                        .expect("snapshot of hosted partition")
                })
                .collect();
            for (i, s) in snaps.iter().enumerate().skip(1) {
                if s != &snaps[0] {
                    let a = MetaPartition::from_snapshot(pid, &snaps[0]).unwrap();
                    let b = MetaPartition::from_snapshot(pid, s).unwrap();
                    eprintln!("max_inode: {:?} vs {:?}", a.max_inode(), b.max_inode());
                    eprintln!("free: {:?} vs {:?}", a.free_list(), b.free_list());
                    eprintln!(
                        "inodes: {} vs {}",
                        a.all_inodes().len(),
                        b.all_inodes().len()
                    );
                    for (x, y) in a.all_inodes().iter().zip(b.all_inodes().iter()) {
                        if x != y {
                            eprintln!("inode diff:\n  {x:?}\n  {y:?}");
                        }
                    }
                    eprintln!(
                        "dentries: {} vs {}",
                        a.all_dentries().len(),
                        b.all_dentries().len()
                    );
                    for (x, y) in a.all_dentries().iter().zip(b.all_dentries().iter()) {
                        if x != y {
                            eprintln!("dentry diff:\n  {x:?}\n  {y:?}");
                        }
                    }
                    panic!(
                        "invariant (d): replica {i} of {pid} diverges (seed {})",
                        self.seed
                    );
                }
            }
            // Replaying the snapshot must reproduce the state exactly.
            let restored =
                MetaPartition::from_snapshot(pid, &snaps[0]).expect("snapshot must decode");
            assert_eq!(
                restored.snapshot_bytes(),
                snaps[0],
                "invariant (d): snapshot round-trip for {pid} (seed {})",
                self.seed
            );
        }
    }
}

// ----- runners -----------------------------------------------------------

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// The invariant letter a failure message names (`"invariant (c): …"` →
/// `'c'`), so the repro line says up front which property broke before
/// anyone replays the seed. `None` for harness/setup failures that name
/// no invariant.
fn failed_invariant(msg: &str) -> Option<char> {
    let rest = &msg[msg.find("invariant (")? + "invariant (".len()..];
    rest.chars().next().filter(char::is_ascii_lowercase)
}

/// The `[…]` tag spliced into every repro line: the failing invariant by
/// letter, or `harness` when the failure named none.
fn invariant_tag(msg: &str) -> String {
    match failed_invariant(msg) {
        Some(c) => format!("invariant ({c})"),
        None => "harness".into(),
    }
}

fn run_seed_inner(seed: u64, sabotage: bool) {
    let shape = ClusterShape::default();
    let plan = FaultPlan::generate(seed, shape, PLAN_LEN);
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut chaos = Chaos::new(seed, shape, sabotage);
        chaos.run(&plan);
    }));
    if let Err(payload) = result {
        // The one-line repro: re-running with this seed regenerates the
        // exact schedule (FaultPlan is a pure function of the seed).
        let msg = panic_message(payload.as_ref());
        panic!(
            "CHAOS_SEED={seed} failed [{}] — replay with \
             `CHAOS_SEED={seed} cargo test -q --test chaos chaos_replay_env_seed`: {msg}",
            invariant_tag(&msg)
        );
    }
}

fn run_seed(seed: u64) {
    run_seed_inner(seed, false)
}

/// Power-loss-dense variant of a generated schedule: a whole-cluster
/// power cycle before every quiesce, on top of whatever power losses the
/// seed already rolled. Every fault window then ends with a full reboot
/// from disk, so recovery runs against crashed nodes, cut links and
/// in-flight appends — not just settled state.
fn densify_power_loss(plan: &mut FaultPlan) {
    let mut steps = Vec::with_capacity(plan.steps.len() + 8);
    for step in plan.steps.drain(..) {
        if step == ChaosStep::Quiesce && steps.last() != Some(&ChaosStep::PowerLoss) {
            steps.push(ChaosStep::PowerLoss);
        }
        steps.push(step);
    }
    plan.steps = steps;
}

/// Split-dense variant of a generated schedule: an Algorithm 1 split at
/// every fault-window boundary — before each whole-cluster power cycle
/// and each bare quiesce — alternating between full task delivery and a
/// master that "crashes" before delivering anything (`deliver: false`,
/// reconciliation must finish the handoff). Combined with
/// [`densify_power_loss`], every split is immediately followed by a
/// whole-cluster power cut, so recovery always runs mid-handoff.
fn densify_splits(plan: &mut FaultPlan) {
    let mut steps = Vec::with_capacity(plan.steps.len() + 16);
    let mut n = 0usize;
    let mut prev_power = false;
    for step in plan.steps.drain(..) {
        let boundary = step == ChaosStep::PowerLoss || (step == ChaosStep::Quiesce && !prev_power);
        if boundary {
            steps.push(ChaosStep::Fault(FaultStep::SplitPartition {
                deliver: n.is_multiple_of(2),
            }));
            n += 1;
        }
        prev_power = step == ChaosStep::PowerLoss;
        steps.push(step);
    }
    plan.steps = steps;
}

/// Run one split-dense seed: splits at every fault-window boundary, a
/// power cut right after each split, invariant (h) at every quiesce.
fn run_split_seed(seed: u64) {
    let shape = ClusterShape::default();
    let mut plan = FaultPlan::generate(seed, shape, PLAN_LEN);
    densify_splits(&mut plan);
    densify_power_loss(&mut plan);
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut chaos = Chaos::new(seed, shape, false);
        chaos.run(&plan);
        assert!(
            chaos.splits > 0,
            "split-dense schedule performed no split (seed {seed})"
        );
    }));
    if let Err(payload) = result {
        let msg = panic_message(payload.as_ref());
        panic!(
            "CHAOS_SEED={seed} failed (split dense) [{}] — replay with \
             `CHAOS_SEED={seed} cargo test -q --test chaos split_replay_env_seed`: {msg}",
            invariant_tag(&msg)
        );
    }
}

/// Async-dense variant: on top of a power cycle before every quiesce, a
/// burst of K creates fires *immediately before each power cut* — the
/// acks come from the intent journal and the lights go out before any
/// barrier, so every quiesce resolves acked-but-unbarriered intents the
/// hard way (group-committed, replayed, or compensated: invariant (i)).
fn densify_async_bursts(plan: &mut FaultPlan, files: usize) {
    const BURST: usize = 4;
    let mut steps = Vec::with_capacity(plan.steps.len() + 32);
    let mut n = 0usize;
    for step in plan.steps.drain(..) {
        if step == ChaosStep::PowerLoss {
            for k in 0..BURST {
                steps.push(ChaosStep::Op(WorkloadStep::Create {
                    file: (n + k) % files,
                }));
            }
            n += BURST;
        }
        steps.push(step);
    }
    plan.steps = steps;
}

/// Run one async-dense seed: unbarriered create bursts racing every
/// power cut, invariant (i) at every quiesce.
fn run_async_seed(seed: u64) {
    let shape = ClusterShape::default();
    let mut plan = FaultPlan::generate(seed, shape, PLAN_LEN);
    densify_power_loss(&mut plan);
    densify_async_bursts(&mut plan, shape.files);
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut chaos = Chaos::new(seed, shape, false);
        chaos.run(&plan);
    }));
    if let Err(payload) = result {
        let msg = panic_message(payload.as_ref());
        panic!(
            "CHAOS_SEED={seed} failed (async dense) [{}] — replay with \
             `CHAOS_SEED={seed} cargo test -q --test chaos async_replay_env_seed`: {msg}",
            invariant_tag(&msg)
        );
    }
}

/// Run one power-loss-dense seed to completion and hand back the
/// cluster's final metrics snapshot (for the kvwal engine report).
fn run_power_loss_seed(seed: u64) -> MetricsSnapshot {
    let shape = ClusterShape::default();
    let mut plan = FaultPlan::generate(seed, shape, PLAN_LEN);
    densify_power_loss(&mut plan);
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut chaos = Chaos::new(seed, shape, false);
        chaos.run(&plan);
        chaos.cluster.metrics_snapshot()
    }));
    match result {
        Ok(snap) => snap,
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            panic!(
                "CHAOS_SEED={seed} failed (power-loss dense) [{}] — replay with \
                 `CHAOS_SEED={seed} cargo test -q --test chaos power_loss_replay_env_seed`: {msg}",
                invariant_tag(&msg)
            )
        }
    }
}

/// One JSON record per power-loss seed: every `kvwal.*` counter and
/// histogram (WAL appends, flushes, compactions, records replayed, torn
/// runs discarded, recovery nanoseconds) from the run's registry.
fn kvwal_json(seed: u64, snap: &MetricsSnapshot) -> String {
    let mut kvwal = MetricsSnapshot::default();
    for (k, v) in &snap.counters {
        if k.starts_with("kvwal.") {
            kvwal.counters.insert(k.clone(), *v);
        }
    }
    for (k, v) in &snap.histograms {
        if k.starts_with("kvwal.") {
            kvwal.histograms.insert(k.clone(), v.clone());
        }
    }
    format!("{{\"seed\":{seed},\"metrics\":{}}}", kvwal.to_json())
}

/// Write the power-loss kvwal report to `POWERLOSS_JSON_PATH` (default
/// `target/powerloss_metrics.json`), mirroring the bench JSON plumbing
/// so nightly CI uploads it alongside the existing artifacts.
fn write_powerloss_json(records: &[String]) {
    let json = format!(
        "{{\"suite\":\"power_loss\",\"runs\":[{}]}}",
        records.join(",")
    );
    let json_path = std::env::var("POWERLOSS_JSON_PATH").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/target/powerloss_metrics.json").to_string()
    });
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("kvwal metrics JSON written to {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}; emitting to stdout\n{json}"),
    }
}

fn run_batch(range: std::ops::Range<u64>) {
    // When replaying one seed, skip the batches so the documented replay
    // command stays fast.
    if std::env::var("CHAOS_SEED").is_ok() {
        return;
    }
    for seed in range {
        run_seed(seed);
    }
}

#[test]
fn chaos_seeds_batch_0() {
    run_batch(0..13);
}

#[test]
fn chaos_seeds_batch_1() {
    run_batch(13..26);
}

#[test]
fn chaos_seeds_batch_2() {
    run_batch(26..39);
}

#[test]
fn chaos_seeds_batch_3() {
    run_batch(39..52);
}

/// Replays exactly one schedule: `CHAOS_SEED=17 cargo test -q --test chaos
/// chaos_replay_env_seed`. A no-op without the environment variable.
#[test]
fn chaos_replay_env_seed() {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        run_seed(s.parse().expect("CHAOS_SEED must be a u64"));
    }
}

/// Named tier-1 power-loss sweep: 8 seeds whose schedules power-cycle
/// the whole cluster before every quiesce, with the kvwal engine metrics
/// of every run written to `POWERLOSS_JSON_PATH`.
#[test]
fn power_loss_seeds() {
    if std::env::var("CHAOS_SEED").is_ok() {
        return;
    }
    let records: Vec<String> = (0..8)
        .map(|seed| kvwal_json(seed, &run_power_loss_seed(seed)))
        .collect();
    write_powerloss_json(&records);
}

/// Replays one power-loss-dense schedule: `CHAOS_SEED=17 cargo test -q
/// --test chaos power_loss_replay_env_seed`. A no-op without the
/// environment variable.
#[test]
fn power_loss_replay_env_seed() {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let seed = s.parse().expect("CHAOS_SEED must be a u64");
        run_power_loss_seed(seed);
    }
}

/// Nightly power-loss sweep: `POWERLOSS_SEEDS=N` runs N extra dense
/// seeds beyond the tier-1 eight, uploading the kvwal report for all of
/// them. A no-op without the environment variable.
#[test]
fn power_loss_extended_seeds() {
    if let Ok(n) = std::env::var("POWERLOSS_SEEDS") {
        let n: u64 = n.parse().expect("POWERLOSS_SEEDS must be a u64");
        let records: Vec<String> = (0..n)
            .map(|i| {
                let seed = 5_000 + i;
                kvwal_json(seed, &run_power_loss_seed(seed))
            })
            .collect();
        write_powerloss_json(&records);
    }
}

/// Named tier-1 split-invariant sweep: 8 seeds whose schedules perform
/// an Algorithm 1 split at every fault-window boundary (alternating task
/// delivery with a master crash before delivery) with a whole-cluster
/// power cut striking immediately after each split — invariant (h) must
/// hold at every quiesce of every seed.
#[test]
fn split_seeds() {
    if std::env::var("CHAOS_SEED").is_ok() {
        return;
    }
    for seed in 0..8 {
        run_split_seed(seed);
    }
}

/// Replays one split-dense schedule: `CHAOS_SEED=17 cargo test -q
/// --test chaos split_replay_env_seed`. A no-op without the environment
/// variable.
#[test]
fn split_replay_env_seed() {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        run_split_seed(s.parse().expect("CHAOS_SEED must be a u64"));
    }
}

/// Nightly split sweep: `SPLIT_SEEDS=N` runs N extra split-dense seeds
/// beyond the tier-1 eight. A no-op without the environment variable.
#[test]
fn split_extended_seeds() {
    if let Ok(n) = std::env::var("SPLIT_SEEDS") {
        let n: u64 = n.parse().expect("SPLIT_SEEDS must be a u64");
        for i in 0..n {
            run_split_seed(7_000 + i);
        }
    }
}

/// Named tier-1 async-invariant sweep: 8 seeds whose schedules fire a
/// burst of journal-acked creates immediately before every whole-cluster
/// power cut — invariant (i) must hold at every quiesce of every seed.
#[test]
fn async_seeds() {
    if std::env::var("CHAOS_SEED").is_ok() {
        return;
    }
    for seed in 0..8 {
        run_async_seed(9_000 + seed);
    }
}

/// Replays one async-dense schedule: `CHAOS_SEED=17 cargo test -q
/// --test chaos async_replay_env_seed`. A no-op without the environment
/// variable.
#[test]
fn async_replay_env_seed() {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        run_async_seed(s.parse().expect("CHAOS_SEED must be a u64"));
    }
}

/// Nightly async sweep: `ASYNC_SEEDS=N` runs N extra async-dense seeds
/// beyond the tier-1 eight. A no-op without the environment variable.
#[test]
fn async_extended_seeds() {
    if let Ok(n) = std::env::var("ASYNC_SEEDS") {
        let n: u64 = n.parse().expect("ASYNC_SEEDS must be a u64");
        for i in 0..n {
            run_async_seed(9_100 + i);
        }
    }
}

/// The repro line names the failing invariant by letter, so a triager
/// knows what property broke before replaying the seed (satellite of
/// DESIGN §12).
#[test]
fn repro_line_names_the_failing_invariant() {
    assert_eq!(
        failed_invariant("invariant (a) violated (quiesce)"),
        Some('a')
    );
    assert_eq!(
        failed_invariant("prefix: invariant (i): journaled intents survived"),
        Some('i')
    );
    assert_eq!(failed_invariant("sabotage: injected failure"), None);
    assert_eq!(failed_invariant("invariant ()"), None);
    assert_eq!(
        invariant_tag("invariant (h): dentry listed twice"),
        "invariant (h)"
    );
    assert_eq!(invariant_tag("cluster build exploded"), "harness");
}

/// Wider sweep for nightly CI: `CHAOS_SEEDS=N` runs N extra seeds beyond
/// the tier-1 batches. A no-op without the environment variable.
#[test]
fn chaos_extended_seeds() {
    if let Ok(n) = std::env::var("CHAOS_SEEDS") {
        let n: u64 = n.parse().expect("CHAOS_SEEDS must be a u64");
        for seed in 0..n {
            run_seed(1_000 + seed);
        }
    }
}

/// Invariant (e)'s checker must reject books that don't balance: a drop
/// that reached the always-on counters but not the registry (or vice
/// versa) is exactly the kind of silent skew it exists to catch.
#[test]
fn net_reconciliation_detects_unaccounted_drops() {
    // Registry saw 5 routed calls but the fabric counted 6: one call
    // escaped per-route accounting.
    let registry = cfs::Registry::new();
    registry
        .counter("net.calls{fabric=data,route=data.append}")
        .add(5);
    let snap = registry.snapshot();
    let err = panic::catch_unwind(|| {
        check_fabric_reconciliation(0, &snap, "data", 6, 0, DropCauses::default(), 0)
    })
    .expect_err("per-route undercount must fail reconciliation");
    assert!(
        panic_message(err.as_ref()).contains("invariant (e)"),
        "unexpected panic message"
    );

    // A drop whose cause was never classified: total 3, causes sum to 2.
    let registry = cfs::Registry::new();
    registry.counter("net.drops{fabric=meta,cause=hook}").add(2);
    let snap = registry.snapshot();
    let causes = DropCauses {
        hook: 2,
        ..DropCauses::default()
    };
    let err =
        panic::catch_unwind(|| check_fabric_reconciliation(0, &snap, "meta", 0, 3, causes, 0))
            .expect_err("unclassified drop must fail reconciliation");
    assert!(
        panic_message(err.as_ref()).contains("partition the drop total"),
        "unexpected panic message"
    );

    // Completion-model skew: the legacy books balance, but one submit
    // never completed — a token leaked in the delivery queue.
    let registry = cfs::Registry::new();
    registry
        .counter("net.calls{fabric=data,route=data.read}")
        .add(6);
    registry.counter("fabric.submits{fabric=data}").add(6);
    registry.counter("fabric.completions{fabric=data}").add(5);
    let snap = registry.snapshot();
    let err = panic::catch_unwind(|| {
        check_fabric_reconciliation(0, &snap, "data", 6, 0, DropCauses::default(), 0)
    })
    .expect_err("leaked completion token must fail reconciliation");
    assert!(
        panic_message(err.as_ref()).contains("drain the submits"),
        "unexpected panic message"
    );

    // An RPC still in flight at quiesce must trip the gauge identity.
    let registry = cfs::Registry::new();
    registry
        .counter("net.calls{fabric=data,route=data.read}")
        .add(6);
    registry.counter("fabric.submits{fabric=data}").add(6);
    registry.counter("fabric.completions{fabric=data}").add(6);
    registry.gauge("fabric.inflight{fabric=data}").add(1);
    let snap = registry.snapshot();
    let err = panic::catch_unwind(|| {
        check_fabric_reconciliation(0, &snap, "data", 6, 0, DropCauses::default(), 0)
    })
    .expect_err("an in-flight RPC at quiesce must fail reconciliation");
    assert!(
        panic_message(err.as_ref()).contains("still has RPCs in flight"),
        "unexpected panic message"
    );
}

/// A forced failure must print the `CHAOS_SEED=…` repro line, and the
/// printed seed must regenerate the exact schedule that failed.
#[test]
fn failing_seed_prints_replayable_repro() {
    const SEED: u64 = 7;
    let err = panic::catch_unwind(|| run_seed_inner(SEED, true)).expect_err("sabotaged run fails");
    let msg = panic_message(err.as_ref());
    assert!(
        msg.contains(&format!("CHAOS_SEED={SEED}")),
        "repro line missing from: {msg}"
    );
    let parsed: u64 = msg
        .split("CHAOS_SEED=")
        .nth(1)
        .unwrap()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap();
    assert_eq!(
        FaultPlan::generate(parsed, ClusterShape::default(), PLAN_LEN),
        FaultPlan::generate(SEED, ClusterShape::default(), PLAN_LEN),
        "printed seed must regenerate the exact failing schedule"
    );
}

// ----- targeted self-healing tests ---------------------------------------
//
// Scripted kill scenarios for the §2.3.3 pipeline: permanently kill one
// node mid-workload, drive heartbeat rounds until the master detects it as
// dead and re-replicates its partitions, then prove full replication
// factor, replica alignment and read-your-committed-writes — with zero
// manual recovery calls from the test.

/// Chaos-style cluster for scripted kill tests: small packets so a few KB
/// exercises multi-packet appends and real (non-small-file) extents.
fn kill_test_cluster(seed: u64, meta_nodes: usize, repair_enabled: bool) -> (Cluster, Client) {
    let config = ClusterConfig {
        small_file_threshold: 1024,
        packet_size: 1024,
        pipeline_depth: 2,
        meta_sync_every: 1,
        repair_enabled,
        ..Default::default()
    };
    let cluster = ClusterBuilder::new()
        .meta_nodes(meta_nodes)
        .data_nodes(4)
        .master_replicas(3)
        .config(config)
        .seed(seed)
        .build()
        .expect("cluster build");
    cluster.create_volume("kill", 2, 4).expect("create volume");
    let client = cluster
        .mount_with_options(
            "kill",
            ClientOptions {
                seed: seed ^ 0x51DE_CA4E,
                ..Default::default()
            },
        )
        .expect("mount");
    (cluster, client)
}

/// One tracked file: handle, acknowledged bytes, frozen in-flight append.
struct KillFile {
    handle: FileHandle,
    base: Vec<u8>,
    pending: Vec<u8>,
}

fn write_kill_files(client: &Client, count: usize) -> Vec<KillFile> {
    let root = client.root();
    (0..count)
        .map(|i| {
            let nm = format!("kill-f{i}");
            client.create(root, &nm).expect("create");
            let mut handle = client.open(root, &nm).expect("open");
            let data = pattern_bytes(i, 0, 4_000 + i * 777, 0x40 + i as u8);
            client.write(&mut handle, &data).expect("write");
            client.fsync(&mut handle).expect("fsync");
            KillFile {
                handle,
                base: data,
                pending: Vec::new(),
            }
        })
        .collect()
}

/// Mid-kill workload: appends may fail while the dead node still sits in
/// partition chains — a failure freezes the slot (§2.2.5 uncertainty)
/// until the post-repair read resolves how much landed.
fn append_mid_kill(client: &Client, files: &mut [KillFile]) {
    for (i, f) in files.iter_mut().enumerate() {
        let data = pattern_bytes(i, f.base.len(), 1_500 + i * 333, 0x90 + i as u8);
        f.handle.seek(f.handle.size());
        match client.write(&mut f.handle, &data) {
            Ok(_) => f.base.extend_from_slice(&data),
            Err(_) => f.pending = data,
        }
    }
}

/// Heartbeat rounds up to the dead threshold: failure detection only —
/// whether repair replans afterwards depends on `repair_enabled`.
fn drive_detection(cluster: &Cluster) {
    for _ in 0..cluster.config().dead_after_missed {
        cluster.heartbeat().expect("heartbeat");
        cluster.settle(200);
    }
}

/// Detection plus budgeted repair sweeps, until the replication audit
/// reports every partition back at full factor.
fn drive_repair(cluster: &Cluster, client: &Client) {
    drive_detection(cluster);
    for _ in 0..8 {
        let clean = client
            .fsck(false)
            .map(|r| r.under_replicated.is_empty())
            .unwrap_or(false);
        if clean {
            cluster.settle(200);
            return;
        }
        cluster.heartbeat().expect("heartbeat");
        cluster.settle(300);
    }
    panic!("repair failed to restore the replication factor");
}

/// Post-repair checks shared by the kill tests: every file reads back its
/// committed bytes (plus at most a prefix of a frozen append), and new
/// writes land — the volume is fully read-write again.
fn verify_files_after_repair(seed: u64, client: &Client, files: &mut [KillFile]) {
    client.refresh_partition_table().expect("refresh");
    for (i, f) in files.iter_mut().enumerate() {
        client.fsync(&mut f.handle).expect("post-repair fsync");
        let r = client
            .read_at(&f.handle, 0, f.handle.size() as usize)
            .expect("post-repair read");
        check_read(seed, i, "after repair", &r, &f.base, &f.pending);
        f.base = r;
        f.pending.clear();

        let extra = pattern_bytes(i, f.base.len(), 900, 0xC0 + i as u8);
        f.handle.seek(f.handle.size());
        client
            .write(&mut f.handle, &extra)
            .expect("post-repair write must succeed");
        f.base.extend_from_slice(&extra);
        client.fsync(&mut f.handle).expect("fsync");
        let r = client
            .read_at(&f.handle, 0, f.handle.size() as usize)
            .expect("read");
        assert_eq!(r, f.base, "post-repair content (file {i}, seed {seed})");
    }
}

/// Replica alignment across the live members of every data partition
/// (the targeted tests run no manual recovery — the join protocol itself
/// must leave replicas aligned).
fn assert_live_replicas_aligned(cluster: &Cluster) {
    let faults = cluster.faults();
    let datas: Vec<_> = cluster
        .data_nodes()
        .iter()
        .filter(|d| !faults.is_down(d.id()))
        .collect();
    let by_id = |id: NodeId| {
        datas
            .iter()
            .find(|d| d.id() == id)
            .unwrap_or_else(|| panic!("no live data node {id}"))
    };
    let mut seen = BTreeSet::new();
    for node in &datas {
        for (pid, members) in node.hosted_partitions() {
            if !seen.insert(pid) {
                continue;
            }
            let manifest = by_id(members[0])
                .extent_manifest(pid)
                .expect("head manifest");
            for info in &manifest {
                assert_eq!(
                    info.size, info.committed,
                    "head of {pid}/{:?} not truncated to its committed watermark",
                    info.extent
                );
                for &peer in &members[1..] {
                    let pm = by_id(peer).extent_manifest(pid).expect("replica manifest");
                    let Some(pe) = pm.iter().find(|e| e.extent == info.extent) else {
                        assert_eq!(
                            info.committed, 0,
                            "{pid}/{:?} has committed bytes but is missing on {peer}",
                            info.extent
                        );
                        continue;
                    };
                    assert_eq!(
                        pe.size, info.committed,
                        "{pid}/{:?} length on replica {peer}",
                        info.extent
                    );
                    assert_eq!(
                        pe.crc, info.crc,
                        "{pid}/{:?} crc on replica {peer}",
                        info.extent
                    );
                }
            }
        }
    }
}

/// The `master.repair.*` counters must reconcile exactly with the kill:
/// one decommission + one replacement + one confirmed join per partition
/// the dead node hosted.
fn assert_repair_counters(cluster: &Cluster, expected_partitions: usize) {
    let snap = cluster.metrics_snapshot();
    let n = expected_partitions as u64;
    assert!(
        snap.counter("master.repair.ticks") >= 1,
        "no repair sweep ran"
    );
    assert_eq!(
        snap.counter("master.repair.decommissions"),
        n,
        "decommissions vs partitions the dead node hosted"
    );
    assert_eq!(
        snap.counter("master.repair.replacements"),
        n,
        "replacements vs partitions the dead node hosted"
    );
    assert_eq!(
        snap.counter("master.repair.confirms"),
        n,
        "confirmed joins vs partitions the dead node hosted"
    );
}

/// Kill the PB chain head (members[0], §2.7.1) of a partition the
/// workload wrote to; self-healing must promote a survivor and
/// re-replicate onto the spare node.
#[test]
fn self_healing_survives_chain_head_kill() {
    const SEED: u64 = 0xD1E;
    let (mut cluster, client) = kill_test_cluster(SEED, 3, true);
    let mut files = write_kill_files(&client, 4);

    let pid = files[0].handle.extents()[0].partition_id;
    let members = client.data_partition_members(pid).expect("members");
    let victim = members[0];
    let victim_idx = cluster
        .data_nodes()
        .iter()
        .position(|d| d.id() == victim)
        .expect("victim index");
    let victim_partitions = cluster.data_nodes()[victim_idx].hosted_partitions().len();
    assert!(victim_partitions > 0, "victim must host partitions");

    cluster.crash_data_node(victim_idx).expect("kill data node");
    append_mid_kill(&client, &mut files);

    drive_repair(&cluster, &client);
    verify_files_after_repair(SEED, &client, &mut files);
    assert_live_replicas_aligned(&cluster);
    assert_repair_counters(&cluster, victim_partitions);
    let report = client.fsck(false).expect("fsck");
    assert!(
        report.under_replicated.is_empty(),
        "{:?}",
        report.under_replicated
    );
}

/// Kill a raft follower (not the chain head, not the partition's current
/// raft leader): the surviving chain keeps serving, and repair restores
/// the third replica.
#[test]
fn self_healing_survives_raft_follower_kill() {
    const SEED: u64 = 0xF0110;
    let (mut cluster, client) = kill_test_cluster(SEED, 3, true);
    let mut files = write_kill_files(&client, 4);

    let pid = files[0].handle.extents()[0].partition_id;
    let members = client.data_partition_members(pid).expect("members");
    cluster.hub().pump_until(
        || {
            cluster
                .data_nodes()
                .iter()
                .any(|d| d.is_raft_leader_for(pid))
        },
        20_000,
    );
    let raft_leader = cluster
        .data_nodes()
        .iter()
        .find(|d| d.is_raft_leader_for(pid))
        .map(|d| d.id());
    let victim = members[1..]
        .iter()
        .copied()
        .find(|&m| Some(m) != raft_leader)
        .expect("a follower that is neither head nor raft leader");
    let victim_idx = cluster
        .data_nodes()
        .iter()
        .position(|d| d.id() == victim)
        .expect("victim index");
    let victim_partitions = cluster.data_nodes()[victim_idx].hosted_partitions().len();

    cluster.crash_data_node(victim_idx).expect("kill data node");
    append_mid_kill(&client, &mut files);

    drive_repair(&cluster, &client);
    verify_files_after_repair(SEED, &client, &mut files);
    assert_live_replicas_aligned(&cluster);
    assert_repair_counters(&cluster, victim_partitions);
}

/// Kill a meta replica host (4 meta nodes, so a spare exists): repair
/// re-replicates the meta partitions via snapshot install + log replay,
/// and the namespace stays fully available.
#[test]
fn self_healing_survives_meta_host_kill() {
    const SEED: u64 = 0x3E7A;
    let (mut cluster, client) = kill_test_cluster(SEED, 4, true);
    let mut files = write_kill_files(&client, 4);

    let victim_idx = cluster
        .meta_nodes()
        .iter()
        .position(|m| !m.partition_ids().is_empty())
        .expect("a meta node hosting partitions");
    let victim_partitions = cluster.meta_nodes()[victim_idx].partition_ids().len();

    cluster.crash_meta_node(victim_idx).expect("kill meta node");
    append_mid_kill(&client, &mut files);

    drive_repair(&cluster, &client);
    verify_files_after_repair(SEED, &client, &mut files);
    assert_repair_counters(&cluster, victim_partitions);

    // The namespace is fully writable again: a fresh create + lookup.
    let root = client.root();
    client
        .create(root, "post-repair")
        .expect("create after meta repair");
    assert!(client.lookup(root, "post-repair").is_ok());
}

/// The forced-failure twin: with repair disabled the same kill must leave
/// the replication audit dirty — proving invariant (f) actually fires and
/// the clean results above are the repair pipeline's doing.
#[test]
fn replication_audit_fires_when_repair_disabled() {
    const SEED: u64 = 0xDEAD;
    let (mut cluster, client) = kill_test_cluster(SEED, 3, false);
    let _files = write_kill_files(&client, 2);

    let victim_idx = cluster
        .data_nodes()
        .iter()
        .position(|d| !d.hosted_partitions().is_empty())
        .expect("a data node hosting partitions");
    let victim = cluster.data_nodes()[victim_idx].id();

    cluster.crash_data_node(victim_idx).expect("kill data node");
    drive_detection(&cluster);

    let report = client.fsck(false).expect("fsck");
    assert!(
        !report.under_replicated.is_empty(),
        "audit must flag partitions hosted by the dead node"
    );
    assert!(
        report
            .under_replicated
            .iter()
            .any(|u| u.missing.contains(&victim)),
        "audit must name the dead member: {:?}",
        report.under_replicated
    );
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.counter("master.repair.ticks"), 0, "repair is disabled");
    assert_eq!(snap.counter("master.repair.replacements"), 0);
}
