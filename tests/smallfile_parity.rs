//! Client-level coalescing parity (DESIGN §13): for every tier-1 chaos
//! seed, one seeded small-file workload — creates, mixed-size writes,
//! appends, mid-stream fsyncs and read-backs, truncates, unlinks — is
//! driven twice, through a coalescing mount and a default per-record
//! mount, and must end in byte-identical file system state.
//!
//! The script is generated once per seed and replayed verbatim against
//! both clusters, so any divergence is the fast path's fault: a record
//! lost in the buffer, a flush that adopted the wrong location, a
//! read-your-writes gap while a write sits unflushed, or a settle that
//! raced a truncate.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cfs::{Client, ClientOptions, Cluster, ClusterBuilder, ClusterConfig};
use cfs_client::FileHandle;

const SEEDS: u64 = 52;
const FILES: usize = 8;
const THRESHOLD: u64 = 4096;

/// One step of the replayed workload script.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// First write into file `file` (small or multi-packet).
    Write { file: usize, len: usize, fill: u8 },
    /// Append to an already-written file (forces the coalescer to settle
    /// the buffered record before routing the second write).
    Append { file: usize, len: usize, fill: u8 },
    /// Strong barrier on one file mid-stream.
    Fsync { file: usize },
    /// Read the whole file back mid-stream (read-your-writes while the
    /// coalesced record may still sit in the client buffer).
    ReadBack { file: usize },
    /// Post-close mutation: shrink to half the written size.
    Truncate { file: usize },
    /// Post-close mutation: drop the file.
    Unlink { file: usize },
}

/// Pure function of the seed: the op script and the expected final
/// bytes (`None` = unlinked).
fn generate(seed: u64) -> (Vec<Op>, Vec<Option<Vec<u8>>>) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5F11_EC0A_1E5C_E001);
    let mut script = Vec::new();
    let mut model: Vec<Option<Vec<u8>>> = vec![Some(Vec::new()); FILES];
    for file in 0..FILES {
        // Mostly small first-writes (the fast path) with some spilling
        // past the threshold onto the packet path.
        let len = if rng.gen_bool(0.75) {
            rng.gen_range(1..THRESHOLD as usize + 1)
        } else {
            rng.gen_range(THRESHOLD as usize + 1..3 * THRESHOLD as usize)
        };
        let fill = rng.gen_range(1..255u8);
        script.push(Op::Write { file, len, fill });
        model[file] = Some(vec![fill; len]);
        if file > 0 && rng.gen_bool(0.4) {
            let victim = rng.gen_range(0..file);
            script.push(Op::ReadBack { file: victim });
        }
        if rng.gen_bool(0.3) {
            script.push(Op::Fsync {
                file: rng.gen_range(0..file + 1),
            });
        }
        if file > 0 && rng.gen_bool(0.35) {
            let victim = rng.gen_range(0..file);
            let len = rng.gen_range(1..2049usize);
            let fill = rng.gen_range(1..255u8);
            script.push(Op::Append {
                file: victim,
                len,
                fill,
            });
            model[victim]
                .as_mut()
                .expect("append target exists")
                .extend(std::iter::repeat(fill).take(len));
        }
    }
    // Post-close mutations over the settled files.
    for file in 0..FILES {
        if rng.gen_bool(0.25) {
            script.push(Op::Truncate { file });
            let bytes = model[file].as_mut().expect("truncate target exists");
            bytes.truncate(bytes.len() / 2);
        } else if rng.gen_bool(0.2) {
            script.push(Op::Unlink { file });
            model[file] = None;
        }
    }
    (script, model)
}

fn build_cluster(seed: u64, coalesce: bool) -> (Cluster, Client) {
    let config = ClusterConfig {
        packet_size: THRESHOLD,
        small_file_threshold: THRESHOLD,
        ..ClusterConfig::default()
    };
    let cluster = ClusterBuilder::new()
        .config(config)
        .seed(seed)
        .build()
        .unwrap();
    cluster.create_volume("parity", 1, 4).unwrap();
    let client = cluster
        .mount_with_options(
            "parity",
            ClientOptions {
                coalesce_small_writes: coalesce,
                ..ClientOptions::default()
            },
        )
        .unwrap();
    (cluster, client)
}

/// Replay the script and return each file's final bytes (`None` =
/// unlinked), checking read-your-writes at every `ReadBack`.
fn run_script(
    seed: u64,
    client: &Client,
    script: &[Op],
    model: &[Option<Vec<u8>>],
) -> Vec<Option<Vec<u8>>> {
    let root = client.root();
    let mut handles: Vec<Option<FileHandle>> = Vec::new();
    let mut written: Vec<Vec<u8>> = vec![Vec::new(); FILES];
    for i in 0..FILES {
        let name = format!("f{i}");
        client.create(root, &name).unwrap();
        handles.push(Some(client.open(root, &name).unwrap()));
    }
    let mut mutations = false;
    for op in script {
        match *op {
            Op::Write { file, len, fill } | Op::Append { file, len, fill } => {
                let h = handles[file].as_mut().expect("handle open");
                client.write(h, &vec![fill; len]).unwrap();
                written[file].extend(std::iter::repeat(fill).take(len));
            }
            Op::Fsync { file } => {
                let h = handles[file].as_mut().expect("handle open");
                client.fsync(h).unwrap();
            }
            Op::ReadBack { file } => {
                let h = handles[file].as_ref().expect("handle open");
                let got = client.read_at(h, 0, written[file].len().max(1)).unwrap();
                assert_eq!(
                    got, written[file],
                    "read-your-writes divergence (seed {seed}, file {file})"
                );
            }
            Op::Truncate { .. } | Op::Unlink { .. } => {
                // First post-close mutation: settle everything.
                if !mutations {
                    for h in handles.iter_mut() {
                        client.close(h.as_mut().expect("handle open")).unwrap();
                        *h = None;
                    }
                    mutations = true;
                }
                match *op {
                    Op::Truncate { file } => {
                        let mut h = client.open(root, &format!("f{file}")).unwrap();
                        let to = written[file].len() as u64 / 2;
                        client.truncate_file(&mut h, to).unwrap();
                        client.close(&mut h).unwrap();
                    }
                    Op::Unlink { file } => {
                        client.unlink(root, &format!("f{file}")).unwrap();
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
    if !mutations {
        for h in handles.iter_mut() {
            client.close(h.as_mut().expect("handle open")).unwrap();
        }
    }

    // Harvest the final state.
    let mut out = Vec::with_capacity(FILES);
    for (i, expect) in model.iter().enumerate() {
        let name = format!("f{i}");
        match client.lookup(root, &name) {
            Err(_) => {
                assert!(
                    expect.is_none(),
                    "file {name} missing but expected present (seed {seed})"
                );
                out.push(None);
            }
            Ok(_) => {
                let h = client.open(root, &name).unwrap();
                let size = client.stat(h.ino()).unwrap().size;
                assert_eq!(
                    size,
                    h.size(),
                    "stat/handle size skew (seed {seed}, {name})"
                );
                let bytes = client.read_at(&h, 0, size.max(1) as usize).unwrap();
                out.push(Some(bytes));
            }
        }
    }
    out
}

#[test]
fn coalesced_workload_matches_sequential_across_all_seeds() {
    for seed in 0..SEEDS {
        let (script, model) = generate(seed);
        let (_c1, coalesced) = build_cluster(seed, true);
        let (_c2, sequential) = build_cluster(seed, false);
        let got_c = run_script(seed, &coalesced, &script, &model);
        let got_s = run_script(seed, &sequential, &script, &model);
        for file in 0..FILES {
            assert_eq!(
                got_c[file], model[file],
                "coalesced mount diverged from the model (seed {seed}, file {file})"
            );
            assert_eq!(
                got_c[file], got_s[file],
                "coalesced and sequential mounts diverged (seed {seed}, file {file})"
            );
        }
        // The fast path actually engaged: every run must have coalesced
        // at least one record (the generator always emits small writes).
        let stats = coalesced.data_path_stats();
        assert!(
            stats.smallfile_coalesced > 0,
            "no write took the fast path (seed {seed})"
        );
        assert_eq!(
            sequential.data_path_stats().smallfile_coalesced,
            0,
            "default mount must not coalesce (seed {seed})"
        );
    }
}
