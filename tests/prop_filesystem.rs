//! Property-based test of the whole stack: arbitrary op sequences against
//! an in-memory model filesystem. The real cluster must agree with the
//! model on every observable (lookup results, directory listings, file
//! contents).

use std::collections::BTreeMap;

use proptest::prelude::*;

use cfs::{CfsError, ClusterBuilder, ClusterConfig, FileType};

#[derive(Debug, Clone)]
enum FsOp {
    Create(u8),
    Mkdir(u8),
    Unlink(u8),
    Rename(u8, u8),
    Write(u8, u16),
    Append(u8, u16),
    ReadCheck(u8),
    List,
}

fn op_strategy() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        3 => any::<u8>().prop_map(FsOp::Create),
        1 => any::<u8>().prop_map(FsOp::Mkdir),
        2 => any::<u8>().prop_map(FsOp::Unlink),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| FsOp::Rename(a, b)),
        2 => (any::<u8>(), 1u16..2048).prop_map(|(f, n)| FsOp::Write(f, n)),
        2 => (any::<u8>(), 1u16..2048).prop_map(|(f, n)| FsOp::Append(f, n)),
        2 => any::<u8>().prop_map(FsOp::ReadCheck),
        1 => Just(FsOp::List),
    ]
}

#[derive(Debug, Default, Clone)]
enum ModelNode {
    #[default]
    Missing,
    File(Vec<u8>),
    Dir,
}

/// Ops for the punch-hole interleaving property: small files pack into
/// shared extents, so deleting one queues a punch over its range while its
/// neighbors stay live.
#[derive(Debug, Clone)]
enum PunchOp {
    Create(u8, u16),
    Append(u8, u16),
    Unlink(u8),
    /// Drain orphan eviction + queued punches/deletes, then audit every
    /// live file.
    Punch,
}

fn punch_op_strategy() -> impl Strategy<Value = PunchOp> {
    prop_oneof![
        // Lengths straddle the small-file threshold (1024): most bodies
        // pack into shared extents, some take the dedicated-extent path.
        3 => (any::<u8>(), 1u16..1400).prop_map(|(k, n)| PunchOp::Create(k, n)),
        2 => (any::<u8>(), 1u16..700).prop_map(|(k, n)| PunchOp::Append(k, n)),
        3 => any::<u8>().prop_map(PunchOp::Unlink),
        2 => Just(PunchOp::Punch),
    ]
}

proptest! {
    // The cluster bring-up dominates runtime; keep the case count modest
    // but the sequences long.
    #![proptest_config(ProptestConfig { cases: 8 })]

    #[test]
    fn cluster_matches_model_filesystem(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let cluster = ClusterBuilder::new().build().unwrap();
        cluster.create_volume("prop", 1, 4).unwrap();
        let client = cluster.mount("prop").unwrap();
        let root = client.root();

        let mut model: BTreeMap<String, ModelNode> = BTreeMap::new();
        let name_of = |k: u8| format!("n{:02x}", k % 32); // collide on purpose

        for op in &ops {
            match op {
                FsOp::Create(k) => {
                    let name = name_of(*k);
                    let expect_exists = !matches!(
                        model.get(&name).unwrap_or(&ModelNode::Missing),
                        ModelNode::Missing
                    );
                    let got = client.create(root, &name);
                    if expect_exists {
                        prop_assert!(matches!(got, Err(CfsError::Exists(_))), "{name}: {got:?}");
                    } else {
                        prop_assert!(got.is_ok(), "{name}: {got:?}");
                        model.insert(name, ModelNode::File(Vec::new()));
                    }
                }
                FsOp::Mkdir(k) => {
                    let name = name_of(*k);
                    let expect_exists = !matches!(
                        model.get(&name).unwrap_or(&ModelNode::Missing),
                        ModelNode::Missing
                    );
                    let got = client.mkdir(root, &name);
                    if expect_exists {
                        prop_assert!(matches!(got, Err(CfsError::Exists(_))));
                    } else {
                        prop_assert!(got.is_ok());
                        model.insert(name, ModelNode::Dir);
                    }
                }
                FsOp::Unlink(k) => {
                    let name = name_of(*k);
                    match model.get(&name).unwrap_or(&ModelNode::Missing) {
                        ModelNode::File(_) => {
                            prop_assert!(client.unlink(root, &name).is_ok());
                            model.insert(name, ModelNode::Missing);
                        }
                        ModelNode::Dir => {
                            prop_assert!(client.rmdir(root, &name).is_ok());
                            model.insert(name, ModelNode::Missing);
                        }
                        ModelNode::Missing => {
                            prop_assert!(client.unlink(root, &name).is_err());
                        }
                    }
                }
                FsOp::Rename(a, b) => {
                    let from = name_of(*a);
                    let to = name_of(*b);
                    if from == to {
                        continue;
                    }
                    let src = model.get(&from).cloned().unwrap_or_default();
                    let dst_taken = !matches!(
                        model.get(&to).unwrap_or(&ModelNode::Missing),
                        ModelNode::Missing
                    );
                    let got = client.rename(root, &from, root, &to);
                    match (src, dst_taken) {
                        (ModelNode::Missing, _) => prop_assert!(got.is_err()),
                        (_, true) => prop_assert!(got.is_err(), "dest taken"),
                        (node, false) => {
                            prop_assert!(got.is_ok(), "{got:?}");
                            model.insert(to, node);
                            model.insert(from, ModelNode::Missing);
                        }
                    }
                }
                FsOp::Write(k, n) => {
                    let name = name_of(*k);
                    if let ModelNode::File(content) =
                        model.get(&name).cloned().unwrap_or_default()
                    {
                        let mut fh = client.open(root, &name).unwrap();
                        let data = vec![(*k ^ (*n as u8)) | 1; *n as usize];
                        // Positioned write at 0 (overwrite + extend).
                        client.write_at(&mut fh, 0, &data).unwrap();
                        let mut new = data.clone();
                        if content.len() > new.len() {
                            new.extend_from_slice(&content[new.len()..]);
                        }
                        model.insert(name, ModelNode::File(new));
                    }
                }
                FsOp::Append(k, n) => {
                    let name = name_of(*k);
                    if let ModelNode::File(mut content) =
                        model.get(&name).cloned().unwrap_or_default()
                    {
                        let mut fh = client.open(root, &name).unwrap();
                        fh.seek(fh.size());
                        let data = vec![(*k).wrapping_add(*n as u8) | 1; *n as usize];
                        client.write(&mut fh, &data).unwrap();
                        content.extend_from_slice(&data);
                        model.insert(name, ModelNode::File(content));
                    }
                }
                FsOp::ReadCheck(k) => {
                    let name = name_of(*k);
                    match model.get(&name).unwrap_or(&ModelNode::Missing) {
                        ModelNode::File(content) => {
                            let mut fh = client.open(root, &name).unwrap();
                            let got = client.read(&mut fh, content.len() + 64).unwrap();
                            prop_assert_eq!(&got, content, "{}", name);
                        }
                        ModelNode::Dir => {
                            prop_assert!(client.open(root, &name).is_err());
                        }
                        ModelNode::Missing => {
                            prop_assert!(client.lookup(root, &name).is_err());
                        }
                    }
                }
                FsOp::List => {
                    let listed: Vec<String> = client
                        .readdir(root)
                        .unwrap()
                        .into_iter()
                        .map(|d| d.name)
                        .collect();
                    let expect: Vec<String> = model
                        .iter()
                        .filter(|(_, v)| !matches!(v, ModelNode::Missing))
                        .map(|(k, _)| k.clone())
                        .collect();
                    prop_assert_eq!(listed, expect);
                }
            }
        }

        // Final full audit: listing + contents + types all match.
        for (name, node) in &model {
            match node {
                ModelNode::Missing => prop_assert!(client.lookup(root, name).is_err()),
                ModelNode::Dir => {
                    let d = client.lookup(root, name).unwrap();
                    prop_assert_eq!(d.file_type, FileType::Dir);
                }
                ModelNode::File(content) => {
                    let mut fh = client.open(root, name).unwrap();
                    let got = client.read(&mut fh, content.len() + 1).unwrap();
                    prop_assert_eq!(&got, content);
                }
            }
        }
    }

    /// Punch-hole cleanup vs. live neighbors: unlinking a packed small
    /// file frees its range inside a shared extent (§2.3.2). Interleaving
    /// those deletions with appends must never corrupt a surviving file —
    /// every read serves exactly the bytes written, and no freed (zeroed
    /// or reused) range ever leaks into live content.
    #[test]
    fn punch_hole_deletes_never_leak_into_live_files(
        ops in proptest::collection::vec(punch_op_strategy(), 1..50)
    ) {
        let config = ClusterConfig {
            small_file_threshold: 1024,
            packet_size: 1024,
            ..Default::default()
        };
        let cluster = ClusterBuilder::new().config(config).build().unwrap();
        cluster.create_volume("punch", 1, 2).unwrap();
        let client = cluster.mount("punch").unwrap();
        let root = client.root();

        // Live files only; unlinked ones leave queued punches behind.
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        let name_of = |k: u8| format!("s{:02x}", k % 24); // collide on purpose

        for op in &ops {
            match op {
                PunchOp::Create(k, n) => {
                    let name = name_of(*k);
                    if model.contains_key(&name) {
                        continue;
                    }
                    client.create(root, &name).unwrap();
                    let mut fh = client.open(root, &name).unwrap();
                    let data: Vec<u8> =
                        (0..*n).map(|i| (*k).wrapping_add(i as u8) | 1).collect();
                    client.write(&mut fh, &data).unwrap();
                    client.fsync(&mut fh).unwrap();
                    model.insert(name, data);
                }
                PunchOp::Append(k, n) => {
                    let name = name_of(*k);
                    let Some(content) = model.get_mut(&name) else { continue };
                    let mut fh = client.open(root, &name).unwrap();
                    fh.seek(fh.size());
                    let data: Vec<u8> = (0..*n).map(|i| (*k ^ i as u8) | 1).collect();
                    client.write(&mut fh, &data).unwrap();
                    content.extend_from_slice(&data);
                }
                PunchOp::Unlink(k) => {
                    let name = name_of(*k);
                    if model.remove(&name).is_some() {
                        client.unlink(root, &name).unwrap();
                    }
                }
                PunchOp::Punch => {
                    client.process_deletions();
                    for (name, content) in &model {
                        let fh = client.open(root, name).unwrap();
                        let got = client.read_at(&fh, 0, content.len() + 64).unwrap();
                        prop_assert_eq!(&got, content, "{} corrupted by punch", name);
                    }
                }
            }
        }

        // Final audit after draining every queued punch/delete.
        client.process_deletions();
        for (name, content) in &model {
            let fh = client.open(root, name).unwrap();
            let got = client.read_at(&fh, 0, content.len() + 64).unwrap();
            prop_assert_eq!(&got, content, "{} corrupted after final drain", name);
        }
    }
}
